"""Concurrent access to one fitted classifier: threaded == serial.

The serving layer's contract is that any number of reader threads can
query one fitted model and observe exactly the results a serial caller
would get.  These tests drive the public surfaces (``predict``/``embed``
and the service query path) from many threads and compare bit-for-bit
against single-threaded references.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serve import PredictionService


def run_threads(worker, count):
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            worker(i)
        except BaseException as exc:  # surfaced by the assertion below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestThreadedClassifierAccess:
    def test_threaded_predict_matches_serial(self, served_classifier):
        serial = served_classifier.predict()
        results = {}

        def worker(i):
            results[i] = served_classifier.predict()

        run_threads(worker, 8)
        for predictions in results.values():
            np.testing.assert_array_equal(predictions, serial)

    def test_threaded_embed_matches_serial(self, served_classifier):
        serial = served_classifier.embed()
        results = {}

        def worker(i):
            results[i] = served_classifier.embed()

        run_threads(worker, 8)
        for embeddings in results.values():
            np.testing.assert_array_equal(embeddings, serial)

    def test_threaded_embed_hits_cache(self, served_classifier):
        served_classifier.embed()  # warm
        cache = served_classifier.inference_engine.cache
        hits_before = cache.stats()["hits"]

        run_threads(lambda i: served_classifier.embed(), 8)
        stats = cache.stats()
        assert stats["hits"] >= hits_before + 8
        # The warm pass was the only forward.
        assert served_classifier.inference_engine.forward_count == 1


class TestThreadedServiceAccess:
    def test_threaded_queries_match_serial(self, served_classifier):
        service = PredictionService(served_classifier)
        nodes = list(range(25))
        results = {}

        def worker(i):
            results[i] = service.query(nodes)

        # Cold start: all 8 threads race to build the first snapshot, but
        # the writer lock admits exactly one build.
        run_threads(worker, 8)
        assert service.snapshot_builds == 1
        serial = service.query(nodes)
        assert all(results[i] == serial for i in results)

    def test_coalesced_micro_batch_matches_singles(self, served_classifier):
        """A batched query is bit-for-bit N independent single queries."""
        service = PredictionService(served_classifier)
        nodes = [0, 7, 13, 7, 2]
        batch = service.query(nodes)
        singles = [service.query([n])[0] for n in nodes]
        assert batch == singles
