"""PredictionService: snapshot lifecycle, parity, and cache accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import OpenWorldClassifier
from repro.serve import PredictionService


class TestSnapshotLifecycle:
    def test_snapshot_built_once_and_reused(self, served_classifier):
        service = PredictionService(served_classifier)
        first = service.snapshot()
        assert service.snapshot() is first
        service.query([0, 1, 2])
        assert service.snapshot_builds == 1
        assert service.classifier.inference_engine.forward_count == 1

    def test_repeated_queries_hit_embedding_cache(self, served_classifier):
        service = PredictionService(served_classifier)
        service.warm()
        cache = served_classifier.inference_engine.cache
        hits_before = cache.stats()["hits"]
        for _ in range(5):
            service.query_one(0)
        assert cache.stats()["hits"] >= hits_before + 5

    def test_parameter_bump_rebuilds_snapshot(self, served_classifier):
        service = PredictionService(served_classifier)
        first = service.snapshot()
        encoder = served_classifier.trainer_.encoder
        encoder.load_state_dict(encoder.state_dict())  # bumps the version
        second = service.snapshot()
        assert second is not first
        assert service.snapshot_builds == 2
        assert second.param_counter > first.param_counter

    def test_graph_mutation_rebuilds_snapshot(self, served_classifier):
        service = PredictionService(served_classifier)
        first = service.snapshot()
        served_classifier.trainer_.dataset.graph.invalidate_caches()
        second = service.snapshot()
        assert second is not first
        assert second.graph_version > first.graph_version

    def test_cache_invalidation_forces_rebuild(self, served_classifier):
        service = PredictionService(served_classifier)
        first = service.snapshot()
        served_classifier.inference_engine.invalidate()
        second = service.snapshot()
        assert second is not first
        # Parameters never changed, so the rebuild is value-identical.
        np.testing.assert_array_equal(second.predictions, first.predictions)

    def test_as_service_bridge(self, served_classifier):
        service = served_classifier.as_service()
        assert isinstance(service, PredictionService)
        assert service.classifier is served_classifier


class TestQueryParity:
    def test_single_query_matches_fresh_load_predict(self, served_checkpoint,
                                                     served_classifier):
        reference = OpenWorldClassifier.load(served_checkpoint).predict()
        service = PredictionService(served_classifier)
        for node in (0, 1, 17, len(reference) - 1):
            assert service.query_one(node)["prediction"] == int(reference[node])

    def test_batch_matches_singles_bitwise(self, served_classifier):
        service = PredictionService(served_classifier)
        nodes = [3, 0, 41, 7, 3]  # order preserved, duplicates allowed
        batch = service.query(nodes)
        singles = [service.query_one(n) for n in nodes]
        assert batch == singles

    def test_payload_contents(self, served_classifier):
        service = PredictionService(served_classifier)
        snapshot = service.snapshot()
        payload = service.query_one(2)
        assert payload["node"] == 2
        assert len(payload["known_logits"]) == len(snapshot.seen_classes)
        assert payload["cluster"] == int(snapshot.cluster_labels[2])
        if payload["is_novel"]:
            assert payload["prediction"] >= snapshot.novel_offset
            assert payload["novel_cluster"] == payload["cluster"]
        else:
            assert payload["prediction"] in set(int(c) for c in snapshot.seen_classes)
            assert payload["novel_cluster"] is None

    def test_novel_and_seen_both_served(self, served_classifier):
        service = PredictionService(served_classifier)
        num_nodes = service.snapshot().num_nodes
        flags = {service.query_one(n)["is_novel"] for n in range(num_nodes)}
        assert flags == {True, False}

    def test_out_of_range_node_rejected(self, served_classifier):
        service = PredictionService(served_classifier)
        num_nodes = service.snapshot().num_nodes
        with pytest.raises(IndexError):
            service.query_one(num_nodes)
        with pytest.raises(IndexError):
            service.query_one(-1)


class TestDiagnostics:
    def test_stats_and_info(self, served_classifier):
        service = PredictionService(served_classifier)
        service.query([0, 1])
        stats = service.stats()
        assert stats["snapshot_builds"] == 1
        assert stats["encoder_forwards"] == 1
        assert stats["embedding_cache"]["misses"] >= 1
        info = service.info()
        assert info["method"] == "openima"
        assert info["num_nodes"] == service.snapshot().num_nodes
