"""ModelServer over real sockets: round-trips, parity, graceful shutdown."""

from __future__ import annotations

import threading

import pytest

from repro.api import OpenWorldClassifier
from repro.serve import (
    ModelServer,
    PredictionService,
    ServeClient,
    ServeClientError,
    ServeConfig,
)


@pytest.fixture()
def running_server(served_classifier):
    server = ModelServer(
        PredictionService(served_classifier),
        ServeConfig(port=0, batch_window_ms=1.0),
    )
    server.serve_in_background()
    client = ServeClient(port=server.port)
    client.wait_until_ready(timeout=10)
    yield server, client
    client.close()
    server.shutdown()


class TestHTTPEndpoints:
    def test_health(self, running_server):
        _, client = running_server
        health = client.health()
        assert health["status"] == "ok"
        assert health["method"] == "openima"
        assert health["num_nodes"] > 0

    def test_single_node_predict(self, running_server, served_checkpoint):
        _, client = running_server
        reference = OpenWorldClassifier.load(served_checkpoint).predict()
        for node in (0, 5, 60):
            payload = client.predict(node)
            assert payload["node"] == node
            assert payload["prediction"] == int(reference[node])

    def test_batch_matches_singles_bitwise(self, running_server):
        _, client = running_server
        nodes = [9, 0, 33, 9]
        assert client.predict_batch(nodes) == [client.predict(n) for n in nodes]

    def test_stats_counters_move(self, running_server):
        _, client = running_server
        client.predict_batch([0, 1, 2])
        client.predict(3)
        stats = client.stats()
        assert stats["latency"]["requests"] >= 2
        assert stats["latency"]["p50_ms"] is not None
        assert stats["latency"]["p99_ms"] is not None
        assert stats["coalescer"]["requests"] >= 2
        assert stats["service"]["snapshot_builds"] == 1

    def test_bad_requests_rejected(self, running_server):
        server, client = running_server
        num_nodes = server.service.snapshot().num_nodes
        with pytest.raises(ServeClientError) as exc:
            client.predict(num_nodes + 5)
        assert exc.value.status == 400
        with pytest.raises(ServeClientError):
            client.predict_batch([])
        with pytest.raises(ServeClientError):
            client._request("POST", "/predict", {"wrong": 1})
        with pytest.raises(ServeClientError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_concurrent_clients_get_identical_answers(self, running_server):
        server, client = running_server
        nodes = list(range(20))
        expected = client.predict_batch(nodes)
        results = {}

        def worker(i):
            with ServeClient(port=server.port) as local:
                results[i] = local.predict_batch(nodes)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results[i] == expected for i in results)


class TestLifecycle:
    def test_graceful_shutdown_releases_port(self, served_classifier):
        server = ModelServer(PredictionService(served_classifier),
                             ServeConfig(port=0, batch_window_ms=0.0))
        thread = server.serve_in_background()
        port = server.port
        client = ServeClient(port=port)
        client.wait_until_ready(timeout=10)
        server.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        # The port is released: a second server can bind the same one.
        relisten = ModelServer(
            PredictionService(served_classifier),
            ServeConfig(port=port, batch_window_ms=0.0, warm=False),
        )
        relisten.start()
        relisten_thread = relisten.serve_in_background()
        fresh = ServeClient(port=port)
        assert fresh.wait_until_ready(timeout=10)["status"] == "ok"
        fresh.close()
        relisten.shutdown()
        relisten_thread.join(timeout=10)

    def test_shutdown_is_idempotent(self, served_classifier):
        server = ModelServer(PredictionService(served_classifier),
                             ServeConfig(port=0))
        thread = server.serve_in_background()
        server.shutdown()
        server.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_warm_start_builds_snapshot_before_traffic(self, served_classifier):
        service = PredictionService(served_classifier)
        server = ModelServer(service, ServeConfig(port=0, warm=True))
        server.start()
        try:
            assert service.snapshot_builds == 1
        finally:
            thread = server.serve_in_background()
            server.shutdown()
            thread.join(timeout=10)
