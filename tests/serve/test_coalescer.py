"""RequestCoalescer: batching semantics, ordering, errors, shutdown."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import RequestCoalescer


def echo_batch(nodes):
    """A deterministic stand-in for the prediction service."""
    return [{"node": n, "value": n * 10} for n in nodes]


@pytest.fixture()
def coalescer():
    # A generous window so a burst reliably coalesces even on a loaded CI box.
    c = RequestCoalescer(echo_batch, batch_window_ms=50.0).start()
    yield c
    c.stop()


class TestBatching:
    def test_single_request_round_trip(self, coalescer):
        assert coalescer.predict([4, 2]) == echo_batch([4, 2])

    def test_concurrent_requests_share_a_batch(self, coalescer):
        start = threading.Barrier(8)
        results = {}

        def worker(i):
            start.wait()
            results[i] = coalescer.predict([i])

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {i: echo_batch([i]) for i in range(8)}
        stats = coalescer.stats()
        assert stats["requests"] == 8
        # The 10ms window must have merged at least some of the burst.
        assert stats["batches"] < 8
        assert stats["coalesced_requests"] > 0

    def test_results_split_back_per_request(self, coalescer):
        futures = [coalescer.submit([i, i + 100]) for i in range(5)]
        for i, future in enumerate(futures):
            assert future.result(timeout=5) == echo_batch([i, i + 100])

    def test_max_batch_respected(self):
        sizes = []

        def recording_batch(nodes):
            sizes.append(len(nodes))
            return echo_batch(nodes)

        c = RequestCoalescer(recording_batch, batch_window_ms=20.0, max_batch=3)
        try:
            futures = [c.submit([i]) for i in range(7)]
            c.start()
            for f in futures:
                f.result(timeout=5)
            assert all(size <= 3 for size in sizes)
        finally:
            c.stop()

    def test_oversized_request_still_served(self):
        c = RequestCoalescer(echo_batch, batch_window_ms=0.0, max_batch=2).start()
        try:
            assert c.predict([1, 2, 3, 4, 5]) == echo_batch([1, 2, 3, 4, 5])
        finally:
            c.stop()


class TestFailureAndShutdown:
    def test_batch_error_propagates_to_each_request(self):
        def failing_batch(nodes):
            raise IndexError("node out of range")

        c = RequestCoalescer(failing_batch, batch_window_ms=5.0).start()
        try:
            futures = [c.submit([i]) for i in range(3)]
            for future in futures:
                with pytest.raises(IndexError):
                    future.result(timeout=5)
        finally:
            c.stop()

    def test_error_does_not_kill_worker(self):
        calls = {"n": 0}

        def flaky_batch(nodes):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first batch fails")
            return echo_batch(nodes)

        c = RequestCoalescer(flaky_batch, batch_window_ms=0.0).start()
        try:
            with pytest.raises(RuntimeError):
                c.predict([1])
            assert c.predict([2]) == echo_batch([2])
        finally:
            c.stop()

    def test_stop_drains_pending_requests(self):
        release = threading.Event()

        def slow_batch(nodes):
            release.wait(timeout=5)
            return echo_batch(nodes)

        c = RequestCoalescer(slow_batch, batch_window_ms=0.0).start()
        first = c.submit([1])
        time.sleep(0.05)  # let the worker pick up the first batch
        second = c.submit([2])
        release.set()
        c.stop()
        assert first.result(timeout=5) == echo_batch([1])
        assert second.result(timeout=5) == echo_batch([2])

    def test_submit_after_stop_rejected(self):
        c = RequestCoalescer(echo_batch).start()
        c.stop()
        with pytest.raises(RuntimeError):
            c.submit([1])

    def test_result_length_mismatch_is_an_error(self):
        c = RequestCoalescer(lambda nodes: [], batch_window_ms=0.0).start()
        try:
            with pytest.raises(RuntimeError):
                c.predict([1, 2])
        finally:
            c.stop()
