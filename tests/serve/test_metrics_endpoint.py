"""GET /metrics, obs-backed /stats, request event log, and stats immutability.

The Prometheus exposition served over real HTTP must survive the strict
parser from ``tests/obs/test_prometheus_format.py`` — the same bar an actual
scraper sets.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.serve import (
    ModelServer,
    PredictionService,
    ServeClient,
    ServeClientError,
    ServeConfig,
)
from repro.serve.server import PROMETHEUS_CONTENT_TYPE
from tests.obs.test_prometheus_format import (
    check_histogram_invariants,
    parse_prometheus,
)


@pytest.fixture()
def running_server(served_classifier):
    server = ModelServer(
        PredictionService(served_classifier),
        ServeConfig(port=0, batch_window_ms=1.0),
    )
    server.serve_in_background()
    client = ServeClient(port=server.port)
    client.wait_until_ready(timeout=10)
    yield server, client
    client.close()
    server.shutdown()


class TestMetricsEndpoint:
    def test_exposition_passes_strict_parser(self, running_server):
        _, client = running_server
        client.predict(0)
        client.predict_batch([1, 2, 3])
        families = parse_prometheus(client.metrics())
        assert families["repro_serve_requests_total"]["type"] == "counter"
        assert families["repro_serve_request_seconds"]["type"] == "histogram"
        check_histogram_invariants(
            families["repro_serve_request_seconds"],
            "repro_serve_request_seconds")

    def test_per_endpoint_counters_move(self, running_server):
        _, client = running_server
        client.predict(0)
        client.health()
        samples = parse_prometheus(
            client.metrics())["repro_serve_requests_total"]["samples"]

        def count(endpoint, status):
            key = ("repro_serve_requests_total",
                   (("endpoint", endpoint), ("status", status)))
            return samples.get(key, 0.0)

        assert count("/predict", "200") >= 1
        assert count("/health", "200") >= 1

    def test_error_statuses_labelled(self, running_server):
        _, client = running_server
        with pytest.raises(ServeClientError):
            client._request("GET", "/nope")
        with pytest.raises(ServeClientError):
            client._request("POST", "/predict", {"wrong": 1})
        samples = parse_prometheus(
            client.metrics())["repro_serve_requests_total"]["samples"]
        statuses = {dict(labels)["status"]
                    for (_name, labels) in samples}
        assert "404" in statuses
        assert "400" in statuses

    def test_unknown_paths_fold_into_other_endpoint(self, running_server):
        # Label cardinality stays bounded no matter what paths clients probe.
        _, client = running_server
        for path in ("/nope", "/admin", "/x" * 50):
            with pytest.raises(ServeClientError):
                client._request("GET", path)
        samples = parse_prometheus(
            client.metrics())["repro_serve_requests_total"]["samples"]
        endpoints = {dict(labels)["endpoint"] for (_name, labels) in samples}
        assert "other" in endpoints
        assert not any(endpoint.startswith("/x") for endpoint in endpoints)

    def test_content_type_is_prometheus_text(self, running_server):
        server, _ = running_server
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == PROMETHEUS_CONTENT_TYPE
            response.read()
        finally:
            conn.close()

    def test_inflight_gauge_present(self, running_server):
        _, client = running_server
        client.health()
        families = parse_prometheus(client.metrics())
        gauge = families["repro_serve_inflight_requests"]
        assert gauge["type"] == "gauge"
        # The /metrics request itself is in flight while rendering.
        value = gauge["samples"][("repro_serve_inflight_requests", ())]
        assert value >= 1.0


class TestStatsObsSection:
    def test_stats_embeds_obs_summary(self, running_server):
        _, client = running_server
        client.predict(0)
        stats = client.stats()
        assert set(stats["obs"]) == {"metrics", "events", "tracing"}
        assert any(name.startswith("repro_serve_")
                   for name in stats["obs"]["metrics"])

    def test_metrics_and_stats_consistent_under_concurrency(self, running_server):
        server, client = running_server
        failures = []

        def worker(i):
            try:
                with ServeClient(port=server.port) as local:
                    for _ in range(10):
                        local.predict(i)
                        parse_prometheus(local.metrics())
                        stats = local.stats()
                        assert stats["obs"]["metrics"], "obs section empty"
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        # Counters only ever grow: a final scrape sees at least the 40
        # /predict requests the workers issued.
        samples = parse_prometheus(
            client.metrics())["repro_serve_requests_total"]["samples"]
        predict_ok = samples[("repro_serve_requests_total",
                              (("endpoint", "/predict"), ("status", "200")))]
        assert predict_ok >= 40


class TestRequestEventLog:
    def test_requests_logged_at_debug(self, running_server):
        _, client = running_server
        client.health()
        with pytest.raises(ServeClientError):
            client._request("GET", "/nope")
        events = obs.EVENTS.snapshot(level="debug")
        serve_events = [event for event in events
                        if event["source"] == "serve.http"]
        assert any("/health" in event["message"] for event in serve_events)
        # 4xx responses are diagnosable from the event log.
        assert any("404" in event["message"] for event in serve_events)


class TestStatsImmutability:
    def test_mutating_returned_stats_does_not_corrupt_service(
            self, served_classifier):
        service = PredictionService(served_classifier)
        service.query([0, 1])
        stats = service.stats()
        # Regression: stats() used to hand out live references.
        stats["snapshot_builds"] = 999
        if isinstance(stats["embedding_cache"], dict):
            stats["embedding_cache"]["hits"] = -5
        fresh = service.stats()
        assert fresh["snapshot_builds"] != 999
        if isinstance(fresh["embedding_cache"], dict):
            assert fresh["embedding_cache"]["hits"] >= 0
        assert fresh is not stats
