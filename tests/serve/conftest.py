"""Fixtures for the serving-layer tests: one tiny trained checkpoint.

Training is the expensive part, so the fitted classifier and its checkpoint
are session-scoped; tests that need isolation load fresh classifiers from
the shared checkpoint (cheap) instead of retraining.
"""

from __future__ import annotations

import pytest

from repro.api import OpenWorldClassifier
from repro.core.config import fast_config

TINY = {"scale": 0.15, "seed": 0}


@pytest.fixture(scope="session")
def served_checkpoint(tmp_path_factory):
    """Directory with a 2-epoch OpenIMA checkpoint on tiny citeseer."""
    clf = OpenWorldClassifier("openima", config=fast_config(max_epochs=2, seed=0))
    clf.fit("citeseer", **TINY)
    path = tmp_path_factory.mktemp("serve") / "ckpt"
    clf.save(path)
    return path


@pytest.fixture()
def served_classifier(served_checkpoint):
    """A fresh classifier loaded from the shared checkpoint."""
    return OpenWorldClassifier.load(served_checkpoint)
