"""The ``repro serve`` subcommand: parsing and a real subprocess round-trip."""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import repro
from repro.experiments.cli import build_parser
from repro.serve import ServeClient

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class TestParsing:
    def test_defaults(self, tmp_path):
        args = build_parser().parse_args(["serve", str(tmp_path)])
        assert args.checkpoint == str(tmp_path)
        assert args.host == "127.0.0.1"
        assert args.port == 8741
        assert args.batch_window_ms == 2.0
        assert args.max_batch == 1024
        assert not args.no_warm
        assert args.overrides == []

    def test_all_options(self, tmp_path):
        args = build_parser().parse_args([
            "serve", str(tmp_path), "--host", "0.0.0.0", "--port", "0",
            "--batch-window-ms", "5", "--max-batch", "64", "--no-warm",
            "--set", "inference.mode=layerwise",
            "--set", "clustering.strategy=minibatch",
        ])
        assert args.port == 0
        assert args.batch_window_ms == 5.0
        assert args.max_batch == 64
        assert args.no_warm
        assert len(args.overrides) == 2


class TestSubprocessRoundTrip:
    def test_serve_query_sigterm(self, served_checkpoint):
        """Start the real CLI server, query it, and shut it down with SIGTERM."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [SRC_DIR, env.get("PYTHONPATH")]))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.cli", "serve",
             str(served_checkpoint), "--port", "0", "--batch-window-ms", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address in startup banner: {banner!r}"
            client = ServeClient(host=match.group(1), port=int(match.group(2)))
            client.wait_until_ready(timeout=30)
            single = client.predict(0)
            assert single["node"] == 0
            batch = client.predict_batch([0, 1, 2])
            assert batch[0] == single
            assert client.stats()["latency"]["requests"] >= 2
            client.close()
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "server stopped" in output
