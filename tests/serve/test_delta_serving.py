"""Streaming delta ingestion through the serving layer.

A live server must absorb graph growth without a cold rebuild: the service
mutates its graph through a persistent DynamicGraph, patches the embedding
cache over the affected receptive field, and atomically swaps the snapshot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import GraphDelta
from repro.serve import (
    ModelServer,
    PredictionService,
    ServeClient,
    ServeClientError,
    ServeConfig,
)


def arrival_delta(graph, num_new=1, seed=0):
    """A small delta anchoring each new node to an existing one."""
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    return GraphDelta.undirected(
        add_features=rng.normal(size=(num_new, graph.features.shape[1])),
        add_edges=np.vstack([np.arange(n, n + num_new),
                             rng.integers(n, size=num_new)]),
    )


class TestServiceApplyDelta:
    def test_snapshot_swapped_and_new_node_queryable(self, served_classifier):
        service = PredictionService(served_classifier)
        before = service.warm()
        graph = served_classifier.trainer_.dataset.graph
        new_node = graph.num_nodes

        summary = service.apply_delta(arrival_delta(graph))
        assert summary["deltas_applied"] == 1
        assert summary["model_version"]["graph_version"] == before.graph_version + 1

        after = service.snapshot()
        assert after is not before
        assert after.num_nodes == before.num_nodes + 1
        payload = service.query_one(new_node)
        assert payload["node"] == new_node
        assert isinstance(payload["prediction"], int)

    def test_small_delta_is_served_by_partial_refresh(self, served_classifier):
        service = PredictionService(served_classifier)
        service.warm()
        engine = served_classifier.trainer_.inference_engine
        forwards_before = engine.forward_count
        graph = served_classifier.trainer_.dataset.graph

        service.apply_delta(arrival_delta(graph))
        stats = service.stats()
        assert stats["deltas_applied"] == 1
        assert stats["partial_refreshes"] == 1
        # The refresh patched the cache: no monolithic pass was added.
        assert engine.forward_count == forwards_before

    def test_consecutive_deltas_keep_dynamic_state(self, served_classifier):
        service = PredictionService(served_classifier)
        service.warm()
        graph = served_classifier.trainer_.dataset.graph
        start = graph.num_nodes
        for seed in range(3):
            service.apply_delta(arrival_delta(graph, seed=seed))
        assert graph.num_nodes == start + 3
        assert service.stats()["deltas_applied"] == 3
        # Every added node answers queries from the republished snapshot.
        payloads = service.query(list(range(start, start + 3)))
        assert [p["node"] for p in payloads] == list(range(start, start + 3))

    def test_reader_holding_old_snapshot_stays_consistent(self, served_classifier):
        service = PredictionService(served_classifier)
        old = service.warm()
        graph = served_classifier.trainer_.dataset.graph
        service.apply_delta(arrival_delta(graph))
        # The pre-delta snapshot still answers within its own node range.
        payload = old.query([0])[0]
        assert payload["node"] == 0
        with pytest.raises(IndexError):
            old.query([old.num_nodes])


@pytest.fixture()
def running_server(served_classifier):
    server = ModelServer(
        PredictionService(served_classifier),
        ServeConfig(port=0, batch_window_ms=1.0),
    )
    server.serve_in_background()
    client = ServeClient(port=server.port)
    client.wait_until_ready(timeout=10)
    yield served_classifier, server, client
    client.close()
    server.shutdown()


class TestHTTPDelta:
    def test_round_trip_grows_the_served_graph(self, running_server):
        classifier, _, client = running_server
        graph = classifier.trainer_.dataset.graph
        new_node = graph.num_nodes
        features = np.random.default_rng(1).normal(
            size=graph.features.shape[1]).tolist()

        summary = client.apply_delta(features=[features],
                                     edges=[[new_node], [0]])
        assert summary["new_num_nodes"] == summary["old_num_nodes"] + 1
        assert summary["deltas_applied"] == 1

        payload = client.predict(new_node)
        assert payload["node"] == new_node
        health = client.health()
        assert health["num_nodes"] == new_node + 1

    def test_stats_expose_streaming_counters(self, running_server):
        classifier, _, client = running_server
        graph = classifier.trainer_.dataset.graph
        features = [0.0] * graph.features.shape[1]
        client.apply_delta(features=[features],
                           edges=[[graph.num_nodes], [1]])
        service_stats = client.stats()["service"]
        assert service_stats["deltas_applied"] == 1
        assert service_stats["partial_refreshes"] >= 1
        assert "full_refreshes" in service_stats

    def test_unknown_field_rejected(self, running_server):
        _, _, client = running_server
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/delta", {"nodes": [[1.0]]})
        assert excinfo.value.status == 400
        assert "unknown delta fields" in str(excinfo.value)

    def test_wrong_feature_width_rejected(self, running_server):
        _, _, client = running_server
        with pytest.raises(ServeClientError) as excinfo:
            client.apply_delta(features=[[1.0, 2.0]])
        assert excinfo.value.status == 400

    def test_out_of_range_edge_rejected(self, running_server):
        classifier, _, client = running_server
        graph = classifier.trainer_.dataset.graph
        with pytest.raises(ServeClientError) as excinfo:
            client.apply_delta(edges=[[graph.num_nodes + 5], [0]])
        assert excinfo.value.status == 400
