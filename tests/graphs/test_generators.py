"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    SBMConfig,
    erdos_renyi_graph,
    featureless_identity_features,
    generate_sbm_graph,
    generate_two_gaussian_samples,
)
from repro.graphs.utils import edge_homophily


class TestSBMGenerator:
    def test_basic_shape(self):
        config = SBMConfig(num_nodes=200, num_classes=4, avg_degree=6.0, feature_dim=16)
        graph = generate_sbm_graph(config, seed=0)
        assert graph.num_nodes == 200
        assert graph.num_features == 16
        assert graph.num_classes == 4
        assert graph.num_edges > 0
        # Edges stored as directed pairs in both directions.
        pairs = set(map(tuple, graph.edge_index.T))
        assert all((dst, src) in pairs for src, dst in pairs)

    def test_determinism(self):
        config = SBMConfig(num_nodes=150, num_classes=3)
        graph_a = generate_sbm_graph(config, seed=5)
        graph_b = generate_sbm_graph(config, seed=5)
        np.testing.assert_array_equal(graph_a.labels, graph_b.labels)
        np.testing.assert_array_equal(graph_a.edge_index, graph_b.edge_index)
        np.testing.assert_allclose(graph_a.features, graph_b.features)

    def test_different_seeds_differ(self):
        config = SBMConfig(num_nodes=150, num_classes=3)
        graph_a = generate_sbm_graph(config, seed=1)
        graph_b = generate_sbm_graph(config, seed=2)
        assert not np.array_equal(graph_a.edge_index, graph_b.edge_index)

    def test_homophily_is_controlled(self):
        high = generate_sbm_graph(
            SBMConfig(num_nodes=400, num_classes=4, avg_degree=12, homophily=0.9), seed=0
        )
        low = generate_sbm_graph(
            SBMConfig(num_nodes=400, num_classes=4, avg_degree=12, homophily=0.3), seed=0
        )
        assert edge_homophily(high) > edge_homophily(low)
        assert edge_homophily(high) > 0.7

    def test_class_imbalance(self):
        balanced = generate_sbm_graph(
            SBMConfig(num_nodes=300, num_classes=3, class_imbalance=0.0), seed=0
        )
        skewed = generate_sbm_graph(
            SBMConfig(num_nodes=300, num_classes=3, class_imbalance=2.0), seed=0
        )
        balanced_counts = np.bincount(balanced.labels)
        skewed_counts = np.bincount(skewed.labels)
        assert balanced_counts.max() - balanced_counts.min() <= 1
        assert skewed_counts.max() > 2 * skewed_counts.min()

    def test_all_nodes_covered_by_classes(self):
        graph = generate_sbm_graph(SBMConfig(num_nodes=97, num_classes=5), seed=3)
        assert graph.labels.shape[0] == 97
        assert set(np.unique(graph.labels)) == set(range(5))

    def test_feature_sparsity(self):
        dense = generate_sbm_graph(
            SBMConfig(num_nodes=200, num_classes=4, feature_sparsity=0.0), seed=0
        )
        sparse = generate_sbm_graph(
            SBMConfig(num_nodes=200, num_classes=4, feature_sparsity=0.9), seed=0
        )
        assert (sparse.features == 0).mean() > (dense.features == 0).mean()
        assert (sparse.features == 0).mean() > 0.8

    def test_features_carry_class_signal(self):
        graph = generate_sbm_graph(
            SBMConfig(num_nodes=300, num_classes=3, feature_noise=0.2,
                      feature_sparsity=0.0, feature_dim=32),
            seed=0,
        )
        # Class centroids should be far apart relative to intra-class spread.
        centroids = np.stack([graph.features[graph.labels == c].mean(axis=0) for c in range(3)])
        spread = np.mean([
            np.linalg.norm(graph.features[graph.labels == c] - centroids[c], axis=1).mean()
            for c in range(3)
        ])
        distance = np.linalg.norm(centroids[0] - centroids[1])
        assert distance > spread

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            generate_sbm_graph(SBMConfig(num_nodes=10, num_classes=1), seed=0)
        with pytest.raises(ValueError):
            generate_sbm_graph(SBMConfig(num_nodes=2, num_classes=5), seed=0)

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=60, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_property_no_self_loops_and_valid_indices(self, num_classes, num_nodes):
        graph = generate_sbm_graph(
            SBMConfig(num_nodes=num_nodes, num_classes=num_classes), seed=num_nodes
        )
        src, dst = graph.edge_index
        assert (src != dst).all()
        assert src.max() < num_nodes and dst.max() < num_nodes


class TestTwoGaussianSamples:
    def test_shapes_and_labels(self):
        samples, labels = generate_two_gaussian_samples(5.0, 1.0, 2.0, num_samples=200, dim=3)
        assert samples.shape == (200, 3)
        assert set(np.unique(labels)) == {0, 1}

    def test_mean_distance_respected(self):
        samples, labels = generate_two_gaussian_samples(10.0, 0.5, 0.5, num_samples=2000, seed=1)
        mean0 = samples[labels == 0].mean(axis=0)
        mean1 = samples[labels == 1].mean(axis=0)
        assert np.linalg.norm(mean1 - mean0) == pytest.approx(10.0, rel=0.1)

    def test_std_ordering(self):
        samples, labels = generate_two_gaussian_samples(20.0, 0.5, 3.0, num_samples=4000, seed=2)
        std0 = samples[labels == 0].std()
        std1 = samples[labels == 1].std()
        assert std1 > std0


class TestOtherGenerators:
    def test_erdos_renyi(self):
        graph = erdos_renyi_graph(30, 0.2, seed=0, labels=[0] * 15 + [1] * 15)
        assert graph.num_nodes == 30
        assert graph.num_classes == 2
        src, dst = graph.edge_index
        assert (src != dst).all()

    def test_erdos_renyi_no_labels(self):
        graph = erdos_renyi_graph(10, 0.3, seed=1)
        assert graph.labels is None

    def test_identity_features(self):
        features = featureless_identity_features(5)
        np.testing.assert_array_equal(features, np.eye(5))


class TestSignatureCorrelation:
    def test_correlated_siblings_are_closer_in_feature_space(self):
        base = SBMConfig(num_nodes=400, num_classes=4, feature_dim=48,
                         feature_sparsity=0.0, feature_noise=0.2)
        correlated = SBMConfig(num_nodes=400, num_classes=4, feature_dim=48,
                               feature_sparsity=0.0, feature_noise=0.2,
                               signature_correlation=0.9)

        def sibling_vs_cross_distance(graph):
            centroids = np.stack([
                graph.features[graph.labels == c].mean(axis=0) for c in range(4)
            ])
            sibling = np.linalg.norm(centroids[0] - centroids[1])
            cross = np.linalg.norm(centroids[0] - centroids[2])
            return sibling, cross

        sib_plain, cross_plain = sibling_vs_cross_distance(generate_sbm_graph(base, seed=0))
        sib_corr, cross_corr = sibling_vs_cross_distance(generate_sbm_graph(correlated, seed=0))
        # With correlated signatures, sibling classes (0, 1) are much closer
        # to each other than to non-sibling classes.
        assert sib_corr / cross_corr < sib_plain / cross_plain
        assert sib_corr < cross_corr

    def test_zero_correlation_matches_default_behaviour(self):
        config_a = SBMConfig(num_nodes=100, num_classes=3, signature_correlation=0.0)
        config_b = SBMConfig(num_nodes=100, num_classes=3)
        graph_a = generate_sbm_graph(config_a, seed=1)
        graph_b = generate_sbm_graph(config_b, seed=1)
        np.testing.assert_allclose(graph_a.features, graph_b.features)
