"""Tests for the Graph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.graph import Graph


def make_triangle_graph():
    features = np.eye(3)
    edge_index = np.array([[0, 1, 1, 2, 2, 0], [1, 0, 2, 1, 0, 2]])
    labels = np.array([0, 0, 1])
    return Graph(features=features, edge_index=edge_index, labels=labels, name="triangle")


class TestConstruction:
    def test_basic_properties(self):
        graph = make_triangle_graph()
        assert graph.num_nodes == 3
        assert graph.num_edges == 6
        assert graph.num_features == 3
        assert graph.num_classes == 2
        assert "triangle" in repr(graph)

    def test_invalid_edge_index_shape(self):
        with pytest.raises(ValueError):
            Graph(features=np.eye(3), edge_index=np.array([[0, 1, 2]]))

    def test_edge_referencing_missing_node(self):
        with pytest.raises(ValueError):
            Graph(features=np.eye(2), edge_index=np.array([[0, 5], [1, 0]]))

    def test_negative_node_id_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Graph(features=np.eye(2), edge_index=np.array([[-1], [0]]))
        with pytest.raises(ValueError, match="negative"):
            Graph(features=np.eye(2), edge_index=np.array([[0], [-3]]))

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            Graph(features=np.eye(3), edge_index=np.zeros((2, 0), dtype=int),
                  labels=np.array([0, 1]))

    def test_unlabeled_graph(self):
        graph = Graph(features=np.eye(3), edge_index=np.zeros((2, 0), dtype=int))
        assert graph.num_classes == 0
        assert graph.labels is None


class TestDerivedStructures:
    def test_adjacency_matches_edges(self):
        graph = make_triangle_graph()
        adjacency = graph.adjacency().toarray()
        assert adjacency.sum() == graph.num_edges
        assert adjacency[0, 1] == 1 and adjacency[1, 0] == 1

    def test_adjacency_cached(self):
        graph = make_triangle_graph()
        assert graph.adjacency() is graph.adjacency()

    def test_degrees(self):
        graph = make_triangle_graph()
        np.testing.assert_array_equal(graph.degrees(), [2, 2, 2])

    def test_neighbors(self):
        graph = make_triangle_graph()
        assert set(graph.neighbors(1)) == {0, 2}

    def test_neighbors_preserves_multiplicity_and_order(self):
        # Duplicate directed edge 0->2 plus 0->1, listed out of source order.
        graph = Graph(
            features=np.eye(3),
            edge_index=np.array([[1, 0, 0, 0], [0, 2, 1, 2]]),
        )
        np.testing.assert_array_equal(graph.neighbors(0), [2, 1, 2])
        np.testing.assert_array_equal(graph.neighbors(1), [0])
        assert graph.neighbors(2).size == 0

    def test_neighbors_matches_edge_scan(self):
        rng = np.random.default_rng(0)
        edge_index = rng.integers(12, size=(2, 60))
        graph = Graph(features=np.eye(12), edge_index=edge_index)
        for node in range(12):
            expected = edge_index[1][edge_index[0] == node]
            np.testing.assert_array_equal(graph.neighbors(node), expected)

    def test_copy_is_independent(self):
        graph = make_triangle_graph()
        clone = graph.copy()
        clone.features[0, 0] = 99.0
        assert graph.features[0, 0] == 1.0
        clone.labels[0] = 5
        assert graph.labels[0] == 0


class TestCacheInvalidation:
    def test_stale_caches_cleared_by_invalidate(self):
        graph = make_triangle_graph()
        stale_adjacency = graph.adjacency()
        stale_propagation = graph.propagation()
        graph.neighbors(0)  # builds the CSR cache

        graph.edge_index = np.array([[0, 1], [1, 0]])  # mutation: 0-1 edge only
        # Without invalidation the caches still describe the triangle.
        assert graph.adjacency() is stale_adjacency

        graph.invalidate_caches()
        assert graph.adjacency().nnz == 2
        assert graph.propagation() is not stale_propagation
        assert graph.neighbors(2).size == 0
        np.testing.assert_array_equal(graph.neighbors(0), [1])

    def test_dataclasses_replace_does_not_inherit_stale_caches(self):
        import dataclasses

        graph = make_triangle_graph()
        graph.adjacency()
        replaced = dataclasses.replace(graph, edge_index=np.array([[0], [1]]))
        assert replaced.adjacency().nnz == 1


class TestSubgraph:
    def test_subgraph_relabels_nodes(self):
        graph = make_triangle_graph()
        sub = graph.subgraph(np.array([0, 2]))
        assert sub.num_nodes == 2
        # Only the 0-2 edge survives (both directions).
        assert sub.num_edges == 2
        assert sub.edge_index.max() <= 1
        np.testing.assert_array_equal(sub.labels, [0, 1])

    def test_subgraph_of_all_nodes_is_whole_graph(self):
        graph = make_triangle_graph()
        sub = graph.subgraph(np.arange(3))
        assert sub.num_nodes == graph.num_nodes
        assert sub.num_edges == graph.num_edges

    def test_subgraph_empty_edges(self):
        graph = make_triangle_graph()
        sub = graph.subgraph(np.array([0]))
        assert sub.num_nodes == 1
        assert sub.num_edges == 0
