"""Graph partitioning: balance, determinism, shard exactness, batches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.gcn import GCNEncoder
from repro.graphs import (
    GraphPartition,
    compute_shard_embeddings,
    extract_shard,
    partition_batches,
    partition_graph,
    sharded_embeddings,
)


class TestPartitionGraph:
    def test_every_node_owned_exactly_once(self, small_graph):
        partition = partition_graph(small_graph, 4)
        assert partition.sizes().sum() == small_graph.num_nodes
        covered = np.concatenate([partition.owned(p) for p in range(4)])
        assert np.array_equal(np.sort(covered),
                              np.arange(small_graph.num_nodes))

    def test_balance_respects_slack(self, small_graph):
        partition = partition_graph(small_graph, 4, slack=1.05)
        capacity = 1.05 * -(-small_graph.num_nodes // 4)
        assert (partition.sizes() <= capacity).all()
        assert (partition.sizes() > 0).all()

    def test_deterministic(self, small_graph):
        first = partition_graph(small_graph, 3)
        second = partition_graph(small_graph, 3)
        assert np.array_equal(first.assignment, second.assignment)

    def test_greedy_cut_beats_random_assignment(self, small_graph):
        greedy = partition_graph(small_graph, 4)
        rng = np.random.default_rng(0)
        random_cut = GraphPartition(
            num_parts=4,
            assignment=rng.integers(0, 4, small_graph.num_nodes),
        ).edge_cut(small_graph)
        assert greedy.edge_cut(small_graph) < random_cut

    def test_single_part_owns_everything(self, small_graph):
        partition = partition_graph(small_graph, 1)
        assert partition.edge_cut(small_graph) == 0.0
        assert partition.sizes().tolist() == [small_graph.num_nodes]

    def test_invalid_arguments_rejected(self, small_graph):
        with pytest.raises(ValueError, match="num_parts"):
            partition_graph(small_graph, 0)
        with pytest.raises(ValueError, match="slack"):
            partition_graph(small_graph, 2, slack=0.5)

    def test_partition_validation(self):
        with pytest.raises(ValueError, match="part ids"):
            GraphPartition(num_parts=2, assignment=np.array([0, 1, 2]))
        with pytest.raises(IndexError):
            GraphPartition(num_parts=2,
                           assignment=np.array([0, 1])).owned(2)


class TestShardExactness:
    @pytest.fixture(scope="class")
    def encoder(self, small_graph):
        return GCNEncoder(small_graph.num_features, hidden_dim=16, out_dim=8,
                          rng=np.random.default_rng(9))

    def test_shard_seeds_are_owned_nodes(self, small_graph):
        partition = partition_graph(small_graph, 3)
        shard = extract_shard(small_graph, partition, 1)
        owned = partition.owned(1)
        assert np.array_equal(shard.node_ids[shard.seed_local], owned)
        halo = shard.node_ids[owned.shape[0]:]
        assert not np.intersect1d(halo, owned).size

    def test_owned_rows_match_full_embedding(self, small_graph, encoder):
        full = encoder.embed(small_graph)
        partition = partition_graph(small_graph, 3)
        for part in range(3):
            owned, rows = compute_shard_embeddings(
                encoder, small_graph, partition, part, chunk_size=32)
            np.testing.assert_allclose(rows, full[owned], atol=1e-8)

    def test_sharded_embeddings_cover_all_nodes(self, small_graph, encoder):
        partition = partition_graph(small_graph, 4)
        assembled = sharded_embeddings(encoder, small_graph, partition,
                                       chunk_size=32)
        np.testing.assert_allclose(assembled, encoder.embed(small_graph),
                                   atol=1e-8)

    def test_partition_count_does_not_change_result(self, small_graph,
                                                    encoder):
        one = sharded_embeddings(encoder, small_graph,
                                 partition_graph(small_graph, 1))
        four = sharded_embeddings(encoder, small_graph,
                                  partition_graph(small_graph, 4))
        np.testing.assert_allclose(one, four, atol=1e-8)

    def test_empty_shard_rejected(self, small_graph):
        assignment = np.zeros(small_graph.num_nodes, dtype=np.int64)
        partition = GraphPartition(num_parts=2, assignment=assignment)
        with pytest.raises(ValueError, match="owns no nodes"):
            extract_shard(small_graph, partition, 1)


class TestPartitionBatches:
    def test_batches_stay_within_their_shard(self, small_graph):
        partition = partition_graph(small_graph, 3)
        nodes = np.arange(0, small_graph.num_nodes, 2)
        seen = []
        for part, batch in partition_batches(partition, nodes, 16,
                                             np.random.default_rng(0)):
            assert batch.shape[0] <= 16
            assert (partition.assignment[batch] == part).all()
            seen.append(batch)
        assert np.array_equal(np.sort(np.concatenate(seen)), nodes)

    def test_same_rng_seed_is_deterministic(self, small_graph):
        partition = partition_graph(small_graph, 3)
        nodes = np.arange(small_graph.num_nodes)
        first = [batch for _, batch in partition_batches(
            partition, nodes, 8, np.random.default_rng(5))]
        second = [batch for _, batch in partition_batches(
            partition, nodes, 8, np.random.default_rng(5))]
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_invalid_batch_size_rejected(self, small_graph):
        partition = partition_graph(small_graph, 2)
        with pytest.raises(ValueError, match="batch_size"):
            list(partition_batches(partition, np.arange(4), 0,
                                   np.random.default_rng(0)))
