"""Neighborhood sampling: CSR lookup, k-hop extraction, fanout caps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.gat import GATEncoder
from repro.gnn.gcn import GCNEncoder
from repro.graphs.graph import Graph
from repro.graphs.sampling import (
    NeighborSampler,
    build_edge_csr,
    khop_subgraph,
)
from repro.graphs.utils import symmetrize_edges


def random_graph(num_nodes=200, avg_degree=6, num_features=12, seed=0) -> Graph:
    rng = np.random.default_rng(seed)
    num_edges = num_nodes * avg_degree // 2
    src = rng.integers(num_nodes, size=num_edges)
    dst = rng.integers(num_nodes, size=num_edges)
    edge_index = symmetrize_edges(np.vstack([src, dst]))
    return Graph(
        features=rng.normal(size=(num_nodes, num_features)),
        edge_index=edge_index,
        labels=rng.integers(4, size=num_nodes),
        name="random",
    )


def brute_force_khop(graph: Graph, seeds: np.ndarray, num_hops: int) -> set:
    """Reference BFS over the symmetrized edge list."""
    src, dst = symmetrize_edges(graph.edge_index)
    field = set(int(s) for s in seeds)
    frontier = set(field)
    for _ in range(num_hops):
        next_frontier = set()
        for s, d in zip(src, dst, strict=True):
            if int(s) in frontier and int(d) not in field:
                next_frontier.add(int(d))
        field |= next_frontier
        frontier = next_frontier
    return field


class TestBuildEdgeCsr:
    def test_groups_targets_by_source_preserving_order(self):
        edge_index = np.array([[2, 0, 2, 0, 1], [1, 2, 0, 1, 0]])
        indptr, indices = build_edge_csr(edge_index, 3)
        np.testing.assert_array_equal(indptr, [0, 2, 3, 5])
        np.testing.assert_array_equal(indices[0:2], [2, 1])  # node 0, edge order
        np.testing.assert_array_equal(indices[2:3], [0])
        np.testing.assert_array_equal(indices[3:5], [1, 0])

    def test_keeps_duplicate_edges(self):
        edge_index = np.array([[0, 0, 0], [1, 1, 2]])
        indptr, indices = build_edge_csr(edge_index, 3)
        np.testing.assert_array_equal(indices[indptr[0]:indptr[1]], [1, 1, 2])

    def test_empty_graph(self):
        indptr, indices = build_edge_csr(np.zeros((2, 0), dtype=int), 4)
        np.testing.assert_array_equal(indptr, [0, 0, 0, 0, 0])
        assert indices.size == 0


class TestKhopSubgraph:
    def test_matches_brute_force_bfs(self):
        graph = random_graph()
        seeds = np.array([3, 17, 99])
        for num_hops in (1, 2, 3):
            batch = khop_subgraph(graph, seeds, num_hops)
            assert set(batch.node_ids.tolist()) == brute_force_khop(graph, seeds, num_hops)

    def test_seeds_come_first_in_given_order(self):
        graph = random_graph()
        seeds = np.array([42, 7, 120])
        batch = khop_subgraph(graph, seeds, 2)
        np.testing.assert_array_equal(batch.node_ids[batch.seed_local], seeds)
        np.testing.assert_array_equal(batch.seed_local, [0, 1, 2])

    def test_node_id_mapping_round_trips(self):
        graph = random_graph()
        batch = khop_subgraph(graph, np.array([0, 5, 9]), 2)
        local = np.arange(batch.num_nodes)
        np.testing.assert_array_equal(batch.to_local(batch.to_global(local)), local)
        np.testing.assert_array_equal(batch.to_global(batch.to_local(batch.node_ids)),
                                      batch.node_ids)

    def test_to_local_rejects_absent_nodes(self):
        graph = random_graph()
        batch = khop_subgraph(graph, np.array([0]), 1)
        outside = np.setdiff1d(np.arange(graph.num_nodes), batch.node_ids)
        with pytest.raises(KeyError):
            batch.to_local(outside[:1])

    def test_features_and_labels_follow_mapping(self):
        graph = random_graph()
        batch = khop_subgraph(graph, np.array([1, 2]), 2)
        np.testing.assert_array_equal(batch.graph.features,
                                      graph.features[batch.node_ids])
        np.testing.assert_array_equal(batch.graph.labels,
                                      graph.labels[batch.node_ids])

    def test_induced_edges_match_graph_subgraph(self):
        graph = random_graph()
        batch = khop_subgraph(graph, np.array([0, 60]), 2)
        expected = graph.subgraph(batch.node_ids)
        got = set(map(tuple, batch.graph.edge_index.T.tolist()))
        want = set(map(tuple, expected.edge_index.T.tolist()))
        assert got == want
        assert batch.graph.num_edges == expected.num_edges

    def test_propagation_is_sliced_from_full_graph(self):
        graph = random_graph()
        batch = khop_subgraph(graph, np.array([4, 8]), 2)
        ids = batch.node_ids
        full = graph.propagation().toarray()
        np.testing.assert_allclose(batch.graph.propagation().toarray(),
                                   full[np.ix_(ids, ids)], atol=0, rtol=0)


class TestEncoderExactness:
    """A 2-layer encoder on the 2-hop subgraph equals the full graph at seeds."""

    @pytest.mark.parametrize("backend", ["sparse", "dense"])
    def test_gcn_outputs_match(self, backend):
        graph = random_graph()
        seeds = np.random.default_rng(1).choice(graph.num_nodes, size=24, replace=False)
        encoder = GCNEncoder(graph.num_features, hidden_dim=8, out_dim=4,
                             dropout=0.0, backend=backend,
                             rng=np.random.default_rng(2))
        full = encoder.embed(graph)
        batch = khop_subgraph(graph, seeds, 2)
        sub = encoder.embed(batch.graph)
        np.testing.assert_allclose(sub[batch.seed_local], full[seeds], atol=1e-8)

    @pytest.mark.parametrize("backend", ["sparse", "dense"])
    def test_gat_outputs_match(self, backend):
        graph = random_graph()
        seeds = np.random.default_rng(1).choice(graph.num_nodes, size=24, replace=False)
        encoder = GATEncoder(graph.num_features, hidden_dim=8, out_dim=4,
                             num_heads=2, dropout=0.0, backend=backend,
                             rng=np.random.default_rng(2))
        full = encoder.embed(graph)
        batch = khop_subgraph(graph, seeds, 2)
        sub = encoder.embed(batch.graph)
        np.testing.assert_allclose(sub[batch.seed_local], full[seeds], atol=1e-8)


class TestNeighborSampler:
    def test_fanout_determinism_under_fixed_seed(self):
        graph = random_graph()
        seeds = np.arange(10)
        batches = [
            NeighborSampler(graph, num_hops=2, fanouts=[3, 3],
                            rng=np.random.default_rng(11)).sample(seeds)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(batches[0].node_ids, batches[1].node_ids)
        np.testing.assert_array_equal(batches[0].graph.edge_index,
                                      batches[1].graph.edge_index)

    def test_fanout_caps_expansion(self):
        graph = random_graph(avg_degree=10)
        seeds = np.arange(8)
        batch = NeighborSampler(graph, num_hops=1, fanouts=[2],
                                rng=np.random.default_rng(0)).sample(seeds)
        # At most 2 fresh neighbors per seed.
        assert batch.num_nodes <= seeds.shape[0] * (1 + 2)

    def test_sampled_nodes_are_true_neighbors(self):
        graph = random_graph()
        seeds = np.array([5])
        batch = NeighborSampler(graph, num_hops=1, fanouts=[3],
                                rng=np.random.default_rng(0)).sample(seeds)
        src, dst = symmetrize_edges(graph.edge_index)
        true_neighbors = set(dst[src == 5].tolist()) | {5}
        assert set(batch.node_ids.tolist()) <= true_neighbors

    def test_uncapped_sampler_equals_khop(self):
        graph = random_graph()
        seeds = np.array([0, 33, 66])
        a = NeighborSampler(graph, num_hops=2).sample(seeds)
        b = khop_subgraph(graph, seeds, 2)
        np.testing.assert_array_equal(a.node_ids, b.node_ids)

    def test_duplicate_seeds_rejected(self):
        # A duplicated seed would enter the subgraph twice and double-count
        # its propagation column, silently breaking the exactness guarantee.
        graph = random_graph()
        with pytest.raises(ValueError, match="duplicate"):
            NeighborSampler(graph, num_hops=2).sample(np.array([5, 5]))
        with pytest.raises(ValueError, match="duplicate"):
            khop_subgraph(graph, np.array([1, 2, 1]), 1)

    def test_fanout_validation(self):
        graph = random_graph()
        with pytest.raises(ValueError, match="one cap per hop"):
            NeighborSampler(graph, num_hops=2, fanouts=[3])
        with pytest.raises(ValueError, match=">= 1"):
            NeighborSampler(graph, num_hops=1, fanouts=[0])
        with pytest.raises(ValueError, match="num_hops"):
            NeighborSampler(graph, num_hops=0)

    def test_isolated_seed_yields_singleton_subgraph(self):
        features = np.eye(4)
        edge_index = np.array([[0, 1], [1, 0]])
        graph = Graph(features=features, edge_index=edge_index)
        batch = khop_subgraph(graph, np.array([3]), 2)
        assert batch.num_nodes == 1
        assert batch.graph.num_edges == 0
        # The isolated node keeps its full-graph self-loop weight of 1.
        np.testing.assert_allclose(batch.graph.propagation().toarray(), [[1.0]])
