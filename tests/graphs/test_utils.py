"""Tests for graph utility functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.utils import (
    add_self_loops,
    connected_components,
    edge_homophily,
    largest_connected_component,
    normalized_adjacency,
    remove_self_loops,
    symmetrize_edges,
    unique_edges,
)


class TestEdgeManipulation:
    def test_symmetrize_adds_reverse_edges(self):
        edges = np.array([[0, 1], [1, 2]])
        symmetric = symmetrize_edges(edges)
        pairs = set(map(tuple, symmetric.T))
        assert (1, 0) in pairs and (2, 1) in pairs
        assert symmetric.shape[1] == 4

    def test_symmetrize_is_idempotent(self):
        edges = np.array([[0, 1, 1, 0], [1, 0, 2, 2]])
        once = symmetrize_edges(edges)
        twice = symmetrize_edges(once)
        assert once.shape == twice.shape

    def test_unique_edges_removes_duplicates(self):
        edges = np.array([[0, 0, 1], [1, 1, 2]])
        assert unique_edges(edges).shape[1] == 2

    def test_unique_edges_empty(self):
        assert unique_edges(np.zeros((2, 0), dtype=int)).shape == (2, 0)

    def test_remove_self_loops(self):
        edges = np.array([[0, 1, 2], [0, 2, 2]])
        cleaned = remove_self_loops(edges)
        assert cleaned.shape[1] == 1
        assert (cleaned[0] != cleaned[1]).all()

    def test_add_self_loops(self):
        edges = np.array([[0, 1], [1, 0]])
        with_loops = add_self_loops(edges, num_nodes=3)
        pairs = set(map(tuple, with_loops.T))
        assert {(0, 0), (1, 1), (2, 2)}.issubset(pairs)
        assert with_loops.shape[1] == 5


class TestNormalizedAdjacency:
    def test_rows_of_regular_graph(self):
        # A 3-cycle with self loops: every node has degree 3 after loops.
        edges = np.array([[0, 1, 1, 2, 2, 0], [1, 0, 2, 1, 0, 2]])
        graph = Graph(features=np.eye(3), edge_index=edges)
        matrix = normalized_adjacency(graph).toarray()
        np.testing.assert_allclose(matrix.sum(axis=1), np.ones(3), atol=1e-12)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)

    def test_isolated_node_handled(self):
        graph = Graph(features=np.eye(3), edge_index=np.array([[0, 1], [1, 0]]))
        matrix = normalized_adjacency(graph, add_loops=False).toarray()
        assert np.isfinite(matrix).all()
        assert matrix[2].sum() == 0.0


class TestHomophilyAndComponents:
    def test_edge_homophily_perfect(self):
        edges = np.array([[0, 1], [1, 0]])
        graph = Graph(features=np.eye(2), edge_index=edges, labels=np.array([1, 1]))
        assert edge_homophily(graph) == 1.0

    def test_edge_homophily_mixed(self):
        edges = np.array([[0, 1, 0, 2], [1, 0, 2, 0]])
        graph = Graph(features=np.eye(3), edge_index=edges, labels=np.array([0, 0, 1]))
        assert edge_homophily(graph) == pytest.approx(0.5)

    def test_edge_homophily_unlabeled_nan(self):
        graph = Graph(features=np.eye(2), edge_index=np.array([[0, 1], [1, 0]]))
        assert np.isnan(edge_homophily(graph))

    def test_connected_components(self):
        edges = np.array([[0, 1, 2, 3], [1, 0, 3, 2]])
        graph = Graph(features=np.eye(5), edge_index=edges)
        components = connected_components(graph)
        assert components[0] == components[1]
        assert components[2] == components[3]
        assert components[0] != components[2]
        assert len(np.unique(components)) == 3

    def test_largest_connected_component(self):
        edges = np.array([[0, 1, 1, 2, 3, 4], [1, 0, 2, 1, 4, 3]])
        graph = Graph(features=np.eye(6), edge_index=edges, labels=np.arange(6))
        largest = largest_connected_component(graph)
        assert largest.num_nodes == 3
        np.testing.assert_array_equal(np.sort(largest.labels), [0, 1, 2])
