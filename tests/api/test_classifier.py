"""OpenWorldClassifier facade: fit/predict/evaluate/embed, save/load, resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    NotFittedError,
    OpenWorldClassifier,
)
from repro.core.config import OpenIMAConfig, fast_config

TINY = {"scale": 0.15, "seed": 0}


def make_classifier(method="openima", max_epochs=2, **kwargs):
    return OpenWorldClassifier(
        method, config=fast_config(max_epochs=max_epochs, seed=0), **kwargs
    )


class TestEstimatorSurface:
    def test_fit_predict_evaluate_embed(self):
        clf = make_classifier().fit("citeseer", **TINY)
        num_nodes = clf.dataset_.graph.num_nodes
        predictions = clf.predict()
        assert predictions.shape == (num_nodes,)
        accuracy = clf.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0
        embeddings = clf.embed()
        assert embeddings.shape[0] == num_nodes
        assert clf.epochs_trained == 2
        assert len(clf.history.losses) == 2

    def test_unfitted_raises(self):
        clf = make_classifier()
        for attr in ("predict", "evaluate", "embed"):
            with pytest.raises(NotFittedError):
                getattr(clf, attr)()
        with pytest.raises(NotFittedError):
            clf.save("/tmp/nowhere")

    def test_dict_config_and_openima_wrapping(self):
        clf = OpenWorldClassifier(
            "openima",
            config={"trainer": fast_config(max_epochs=1).to_dict(), "eta": 2.0},
        )
        assert isinstance(clf.config, OpenIMAConfig)
        assert clf.config.eta == 2.0

    def test_dataset_object_accepted(self, small_dataset):
        clf = make_classifier(max_epochs=1).fit(small_dataset)
        assert clf.dataset_ is small_dataset

    def test_refit_with_new_dataset_rejected(self, small_dataset):
        clf = make_classifier(max_epochs=1).fit(small_dataset)
        with pytest.raises(ValueError, match="continues"):
            clf.fit(small_dataset)

    def test_method_params_forwarded(self):
        clf = OpenWorldClassifier("orca", config=fast_config(max_epochs=1),
                                  method_params={"margin_scale": 0.25})
        clf.fit("citeseer", **TINY)
        assert clf.trainer_.margin_scale == 0.25


class TestSaveLoadRoundTrip:
    def test_predictions_bitwise_identical(self, tmp_path):
        clf = make_classifier().fit("citeseer", **TINY)
        clf.save(tmp_path / "ckpt")
        restored = OpenWorldClassifier.load(tmp_path / "ckpt")
        assert np.array_equal(restored.predict(), clf.predict())
        assert np.array_equal(restored.embed(), clf.embed())
        assert restored.epochs_trained == clf.epochs_trained
        assert restored.history.losses == clf.history.losses
        assert restored.config == clf.config

    def test_manifest_contents(self, tmp_path):
        clf = make_classifier().fit("citeseer", **TINY)
        clf.save(tmp_path / "ckpt")
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert manifest["method"] == "openima"
        assert manifest["config_class"] == "OpenIMAConfig"
        assert manifest["dataset"]["loader_args"]["name"] == "citeseer"
        assert manifest["epochs_trained"] == 2
        assert "rng_state" in manifest

    def test_future_format_version_rejected(self, tmp_path):
        clf = make_classifier(max_epochs=1).fit("citeseer", **TINY)
        clf.save(tmp_path / "ckpt")
        manifest_path = tmp_path / "ckpt" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="format version"):
            OpenWorldClassifier.load(tmp_path / "ckpt")

    def test_missing_checkpoint_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="manifest"):
            OpenWorldClassifier.load(tmp_path / "nothing-here")

    def test_external_dataset_requires_explicit_dataset(self, tmp_path, small_dataset):
        clf = make_classifier(max_epochs=1).fit(small_dataset)
        clf.save(tmp_path / "ckpt")
        with pytest.raises(CheckpointError, match="external dataset"):
            OpenWorldClassifier.load(tmp_path / "ckpt")
        restored = OpenWorldClassifier.load(tmp_path / "ckpt", dataset=small_dataset)
        assert np.array_equal(restored.predict(), clf.predict())

    @pytest.mark.parametrize("method", ["orca", "opencon", "infonce"])
    def test_baseline_round_trip(self, method, tmp_path):
        clf = make_classifier(method).fit("citeseer", **TINY)
        clf.save(tmp_path / method)
        restored = OpenWorldClassifier.load(tmp_path / method)
        assert np.array_equal(restored.predict(), clf.predict())


class TestResumeParity:
    """A run interrupted by save/load must match an uninterrupted run exactly."""

    @pytest.mark.parametrize("method", ["openima", "opencon"])
    def test_resume_matches_uninterrupted(self, method, tmp_path):
        uninterrupted = make_classifier(method, max_epochs=4).fit("citeseer", **TINY)

        interrupted = make_classifier(method, max_epochs=4)
        interrupted.fit("citeseer", max_epochs=2, **TINY)
        interrupted.save(tmp_path / "mid")
        resumed = OpenWorldClassifier.load(tmp_path / "mid")
        assert resumed.epochs_trained == 2
        resumed.fit()

        assert resumed.epochs_trained == 4
        assert resumed.history.losses == uninterrupted.history.losses
        assert np.array_equal(resumed.predict(), uninterrupted.predict())
        state_a = uninterrupted.trainer_.encoder.state_dict()
        state_b = resumed.trainer_.encoder.state_dict()
        assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)

    def test_resume_metrics_match(self, tmp_path):
        uninterrupted = make_classifier(max_epochs=3).fit("citeseer", **TINY)

        interrupted = make_classifier(max_epochs=3)
        interrupted.fit("citeseer", max_epochs=1, **TINY)
        interrupted.save(tmp_path / "mid")
        resumed = OpenWorldClassifier.load(tmp_path / "mid")
        resumed.fit()

        assert resumed.evaluate().as_dict() == uninterrupted.evaluate().as_dict()
