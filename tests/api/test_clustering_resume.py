"""Checkpoint/resume parity for the clustering engine's carried state.

With ``warm_start=True`` (or the ``online`` strategy) the pseudo-label
refresh depends on centroids, running counts, and the engine RNG carried
across epochs — all of which must survive a save/load cycle for a resumed
run to match an uninterrupted one bit for bit.  Legacy manifests written
before the engine existed must still load (fresh engine, exact strategy).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import OpenWorldClassifier
from repro.api.checkpoint import MANIFEST_FILE, WEIGHTS_FILE
from repro.core.config import ClusteringConfig, OpenIMAConfig, fast_config

TINY = {"scale": 0.15, "seed": 0}


def warm_classifier(clustering: ClusteringConfig, max_epochs=4) -> OpenWorldClassifier:
    trainer = fast_config(max_epochs=max_epochs, seed=0, clustering=clustering)
    config = OpenIMAConfig(trainer=trainer, pseudo_label_warmup=0,
                           pseudo_label_refresh=1)
    return OpenWorldClassifier("openima", config=config)


CLUSTERING_VARIANTS = {
    "exact-warm": ClusteringConfig(warm_start=True),
    "minibatch-warm": ClusteringConfig(strategy="minibatch", sample_size=128,
                                       warm_start=True),
    "online": ClusteringConfig(strategy="online", sample_size=128),
    "warm-tolerance": ClusteringConfig(warm_start=True, refresh_tolerance=10**9),
}


class TestWarmStartResumeParity:
    @pytest.mark.parametrize("variant", sorted(CLUSTERING_VARIANTS))
    def test_resume_matches_uninterrupted(self, variant, tmp_path):
        clustering = CLUSTERING_VARIANTS[variant]
        uninterrupted = warm_classifier(clustering).fit("citeseer", **TINY)

        interrupted = warm_classifier(clustering)
        interrupted.fit("citeseer", max_epochs=2, **TINY)
        interrupted.save(tmp_path / "mid")
        resumed = OpenWorldClassifier.load(tmp_path / "mid")
        resumed.fit()

        assert resumed.epochs_trained == 4
        assert resumed.history.losses == uninterrupted.history.losses
        assert np.array_equal(resumed.predict(), uninterrupted.predict())
        assert np.array_equal(resumed.trainer_._pseudo_lookup,
                              uninterrupted.trainer_._pseudo_lookup)

    def test_tolerance_short_circuit_survives_resume(self, tmp_path):
        # The resumed engine must keep treating the mid-training fit as its
        # reference point: with an effectively infinite tolerance it never
        # re-fits after the first epoch, before or after the resume.
        clustering = CLUSTERING_VARIANTS["warm-tolerance"]
        interrupted = warm_classifier(clustering)
        interrupted.fit("citeseer", max_epochs=2, **TINY)
        assert interrupted.clustering_engine.refit_count == 1
        interrupted.save(tmp_path / "mid")

        resumed = OpenWorldClassifier.load(tmp_path / "mid")
        resumed.fit()
        assert resumed.clustering_engine.refit_count == 1
        assert resumed.clustering_engine.refresh_count == 4

    def test_carried_centroids_are_persisted(self, tmp_path):
        clustering = CLUSTERING_VARIANTS["exact-warm"]
        clf = warm_classifier(clustering, max_epochs=2).fit("citeseer", **TINY)
        clf.save(tmp_path / "ckpt")

        manifest = json.loads((tmp_path / "ckpt" / MANIFEST_FILE).read_text())
        assert "clustering_state" in manifest
        assert manifest["clustering_state"]["refresh_count"] == 2
        with np.load(tmp_path / "ckpt" / WEIGHTS_FILE) as bundle:
            assert "clustering.centers" in bundle.files
            np.testing.assert_array_equal(
                bundle["clustering.centers"],
                clf.clustering_engine.centers,
            )

    def test_default_exact_checkpoint_has_no_arrays(self, tmp_path):
        clf = warm_classifier(ClusteringConfig(), max_epochs=1).fit(
            "citeseer", **TINY)
        clf.save(tmp_path / "ckpt")
        with np.load(tmp_path / "ckpt" / WEIGHTS_FILE) as bundle:
            assert not any(name.startswith("clustering.")
                           for name in bundle.files)


class TestLegacyManifests:
    def test_manifest_without_clustering_state_loads(self, tmp_path):
        clf = warm_classifier(ClusteringConfig(), max_epochs=2).fit(
            "citeseer", **TINY)
        clf.save(tmp_path / "ckpt")
        manifest_path = tmp_path / "ckpt" / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        # Strip the engine section (and the config key) the way a pre-engine
        # checkpoint would look.
        del manifest["clustering_state"]
        manifest["config"]["trainer"].pop("clustering", None)
        manifest_path.write_text(json.dumps(manifest))

        restored = OpenWorldClassifier.load(tmp_path / "ckpt")
        assert restored.trainer_.config.clustering == ClusteringConfig()
        assert np.array_equal(restored.predict(), clf.predict())
        # Resuming from the fresh engine matches, because legacy histories
        # never used warm-start state.
        restored.fit(max_epochs=3)
        assert restored.epochs_trained == 3
