"""Shared fixtures for the test suite: small graphs, datasets, and configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import OpenIMAConfig, fast_config
from repro.datasets.splits import OpenWorldDataset, make_open_world_split
from repro.graphs.generators import SBMConfig, generate_sbm_graph


@pytest.fixture(scope="session")
def small_graph():
    """A tiny but well-structured SBM graph (4 classes, strong homophily)."""
    config = SBMConfig(
        num_nodes=160,
        num_classes=4,
        avg_degree=8.0,
        homophily=0.9,
        feature_dim=16,
        feature_sparsity=0.0,
        feature_noise=0.3,
    )
    return generate_sbm_graph(config, seed=7, name="test-sbm")


@pytest.fixture(scope="session")
def small_dataset(small_graph):
    """Open-world dataset over ``small_graph`` (2 seen, 2 novel classes)."""
    split = make_open_world_split(small_graph, seen_fraction=0.5, labels_per_class=10, seed=7)
    return OpenWorldDataset(graph=small_graph, split=split, name="test-sbm")


@pytest.fixture()
def tiny_trainer_config():
    """A 2-epoch GCN configuration for fast training tests."""
    return fast_config(max_epochs=2, seed=0, encoder_kind="gcn", batch_size=128)


@pytest.fixture()
def tiny_openima_config(tiny_trainer_config):
    return OpenIMAConfig(trainer=tiny_trainer_config)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
