"""Tests for the text reporting helpers."""

from __future__ import annotations

import numpy as np

from repro.experiments.reporting import format_accuracy_table, format_table, percent
from repro.metrics.accuracy import OpenWorldAccuracy


class FakeEntry:
    def __init__(self, overall, seen, novel):
        self.accuracy = OpenWorldAccuracy(overall=overall, seen=seen, novel=novel)


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "3" in text and "4" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_columns_aligned(self):
        text = format_table(["name", "value"], [["x", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert len(set(line.index("  ") for line in lines[2:] if "  " in line)) >= 1


class TestPercent:
    def test_formats_fraction(self):
        assert percent(0.756) == "75.6"

    def test_nan(self):
        assert percent(float("nan")) == "n/a"

    def test_digits(self):
        assert percent(0.5, digits=2) == "50.00"


class TestAccuracyTable:
    def test_grid_rendering(self):
        results = {
            "OpenIMA": {"citeseer": FakeEntry(0.68, 0.72, 0.64)},
            "ORCA": {"citeseer": FakeEntry(0.58, 0.68, 0.49)},
        }
        text = format_accuracy_table(results, ["citeseer"], title="Table III")
        assert "Table III" in text
        assert "OpenIMA" in text and "ORCA" in text
        assert "68.0" in text and "49.0" in text

    def test_missing_dataset_shows_dash(self):
        results = {"OpenIMA": {}}
        text = format_accuracy_table(results, ["citeseer"])
        assert "-" in text

    def test_nan_rendered_as_na(self):
        results = {"OpenIMA": {"citeseer": FakeEntry(0.5, 0.5, np.nan)}}
        text = format_accuracy_table(results, ["citeseer"])
        assert "n/a" in text
