"""Tests for the experiment runner (integration-level, small budgets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.openima import OpenIMATrainer
from repro.baselines.orca import ORCATrainer
from repro.experiments.runner import (
    AggregatedResult,
    ExperimentConfig,
    RunResult,
    build_method,
    evaluate_trainer,
    run_method,
    run_methods,
)
from repro.datasets.synthetic import load_open_world_dataset
from repro.metrics.accuracy import OpenWorldAccuracy


TINY = ExperimentConfig(scale=0.15, max_epochs=1, batch_size=128, encoder_kind="gcn", seeds=(0,))


class TestBuildMethod:
    def test_builds_openima(self):
        dataset = load_open_world_dataset("citeseer", seed=0, scale=0.15)
        trainer = build_method("openima", dataset, TINY.trainer_config(0))
        assert isinstance(trainer, OpenIMATrainer)

    def test_builds_baseline(self):
        dataset = load_open_world_dataset("citeseer", seed=0, scale=0.15)
        trainer = build_method("orca", dataset, TINY.trainer_config(0))
        assert isinstance(trainer, ORCATrainer)

    def test_openima_overrides_applied(self):
        dataset = load_open_world_dataset("citeseer", seed=0, scale=0.15)
        trainer = build_method(
            "openima", dataset, TINY.trainer_config(0),
            openima_overrides={"eta": 20.0, "rho": 25.0},
        )
        assert trainer.openima_config.eta == 20.0
        assert trainer.openima_config.rho == 25.0

    def test_large_scale_inferred_from_dataset(self):
        dataset = load_open_world_dataset("ogbn-arxiv", seed=0, scale=0.05)
        trainer = build_method("openima", dataset, TINY.trainer_config(0))
        assert trainer.openima_config.large_scale is True

    def test_unknown_method_raises(self):
        dataset = load_open_world_dataset("citeseer", seed=0, scale=0.15)
        with pytest.raises(KeyError):
            build_method("gcd", dataset, TINY.trainer_config(0))


class TestRunMethod:
    def test_run_result_fields(self):
        result = run_method("infonce", "citeseer", TINY)
        assert isinstance(result, AggregatedResult)
        assert len(result.runs) == 1
        run = result.runs[0]
        assert isinstance(run, RunResult)
        assert 0.0 <= run.accuracy.overall <= 1.0
        assert run.imbalance_rate >= 1.0 or np.isnan(run.imbalance_rate)
        assert run.separation_rate >= 0.0 or np.isnan(run.separation_rate)
        data = run.as_dict()
        assert data["method"] == "infonce" and data["dataset"] == "citeseer"

    def test_multiple_seeds_aggregate(self):
        config = ExperimentConfig(scale=0.15, max_epochs=1, batch_size=128,
                                  encoder_kind="gcn", seeds=(0, 1))
        result = run_method("infonce", "citeseer", config)
        assert len(result.runs) == 2
        assert isinstance(result.accuracy, OpenWorldAccuracy)
        mean_overall = np.mean([r.accuracy.overall for r in result.runs])
        assert result.accuracy.overall == pytest.approx(mean_overall)

    def test_run_methods_multiple(self):
        results = run_methods(["infonce", "openima"], "citeseer", TINY)
        assert set(results) == {"infonce", "openima"}


class TestEvaluateTrainer:
    def test_metrics_from_trained_model(self):
        dataset = load_open_world_dataset("citeseer", seed=0, scale=0.15)
        trainer = build_method("openima", dataset, TINY.trainer_config(0))
        trainer.fit()
        run = evaluate_trainer(trainer, dataset, "openima", seed=0)
        assert run.method == "openima"
        assert np.isfinite(run.silhouette)
        assert 0.0 <= run.validation_accuracy <= 1.0


class TestExperimentConfig:
    def test_trainer_config_uses_seed(self):
        config = ExperimentConfig(max_epochs=3, encoder_kind="gcn")
        trainer_config = config.trainer_config(9)
        assert trainer_config.seed == 9
        assert trainer_config.max_epochs == 3
        assert trainer_config.encoder.kind == "gcn"


class TestEpochBudgets:
    def test_end_to_end_methods_get_larger_budget(self):
        config = ExperimentConfig(max_epochs=5)
        assert config.epochs_for("infonce") == 5
        assert config.epochs_for("openima") == 5
        assert config.epochs_for("orca") == 15
        assert config.epochs_for("SimGCD") == 15

    def test_explicit_end_to_end_epochs(self):
        config = ExperimentConfig(max_epochs=5, end_to_end_epochs=7)
        assert config.epochs_for("orca") == 7
        assert config.trainer_config(0, method="orca").max_epochs == 7
        assert config.trainer_config(0, method="openima").max_epochs == 5
