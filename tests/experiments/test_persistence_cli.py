"""Tests for result persistence and the CLI entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, experiment_config_from_args, main
from repro.experiments.persistence import (
    accuracy_grid,
    load_results,
    save_results,
)
from repro.experiments.runner import AggregatedResult, ExperimentConfig, RunResult
from repro.metrics.accuracy import OpenWorldAccuracy


def make_aggregated(method="openima", dataset="citeseer"):
    run = RunResult(
        method=method,
        dataset=dataset,
        seed=0,
        accuracy=OpenWorldAccuracy(overall=0.8, seen=0.85, novel=0.75),
        validation_accuracy=0.9,
        imbalance_rate=1.2,
        separation_rate=1.6,
        silhouette=0.4,
    )
    return AggregatedResult(method=method, dataset=dataset, runs=[run])


class TestPersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        results = {"openima": {"citeseer": make_aggregated()}}
        path = save_results(results, tmp_path / "out.json")
        loaded = load_results(path)
        assert loaded["openima"]["citeseer"]["accuracy"]["all"] == pytest.approx(0.8)
        assert loaded["openima"]["citeseer"]["runs"][0]["seed"] == 0

    def test_numpy_and_nan_values_serialized(self, tmp_path):
        payload = {
            "array": np.arange(3),
            "int": np.int64(7),
            "float": np.float64(0.5),
            "nan": float("nan"),
        }
        path = save_results(payload, tmp_path / "values.json")
        loaded = load_results(path)
        assert loaded["array"] == [0, 1, 2]
        assert loaded["int"] == 7
        assert loaded["nan"] is None

    def test_nan_inf_inside_arrays_and_lists_sanitized(self, tmp_path):
        import json

        payload = {
            "array": np.array([1.0, np.nan, np.inf, -np.inf]),
            "matrix": np.array([[np.nan, 2.0], [3.0, np.inf]]),
            "nested": [[float("nan")], (float("inf"), 1.0)],
        }
        path = save_results(payload, tmp_path / "nonfinite.json")
        text = path.read_text()
        assert "NaN" not in text and "Infinity" not in text
        loaded = json.loads(text)
        assert loaded["array"] == [1.0, None, None, None]
        assert loaded["matrix"] == [[None, 2.0], [3.0, None]]
        assert loaded["nested"] == [[None], [None, 1.0]]

    def test_nested_directories_created(self, tmp_path):
        path = save_results({"x": 1}, tmp_path / "a" / "b" / "c.json")
        assert path.exists()

    def test_accuracy_grid(self):
        results = {"openima": {"citeseer": make_aggregated()}}
        grid = accuracy_grid(results)
        assert grid["openima"]["citeseer"]["seen"] == pytest.approx(0.85)


class TestCLI:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "table4", "table5", "table6", "table7", "fig1b", "fig2",
        }

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.encoder == "gcn"
        assert args.seeds == [0]

    def test_experiment_config_from_args(self):
        args = build_parser().parse_args(
            ["table3", "--scale", "0.2", "--epochs", "3", "--seeds", "0", "1",
             "--end-to-end-epochs", "5"]
        )
        config = experiment_config_from_args(args)
        assert isinstance(config, ExperimentConfig)
        assert config.scale == 0.2
        assert config.max_epochs == 3
        assert config.seeds == (0, 1)
        assert config.end_to_end_epochs == 5

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_main_runs_table2_and_writes_json(self, tmp_path, capsys):
        result = main(["table2", "--output", str(tmp_path / "table2.json")])
        captured = capsys.readouterr()
        assert "Table II" in captured.out
        assert (tmp_path / "table2.json").exists()
        assert "statistics" in result
        loaded = load_results(tmp_path / "table2.json")
        assert "citeseer" in loaded["statistics"]
