"""The run/resume/list-* CLI subcommands (table/fig commands are tested in
test_persistence_cli.py)."""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest

from repro.core.registry import available_methods
from repro.datasets.registry import available_datasets
from repro.experiments.cli import build_parser, main, parse_set_overrides

TINY_RUN = ["run", "--method", "openima", "--dataset", "citeseer",
            "--epochs", "1", "--scale", "0.15"]


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(TINY_RUN)
        assert args.experiment == "run"
        assert args.backend == "sparse"
        assert args.eval_every == 0
        assert args.seed == 0

    def test_run_requires_method_and_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "openima"])

    def test_backend_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(TINY_RUN + ["--backend", "cuda"])

    def test_tables_accept_backend_and_eval_every(self):
        args = build_parser().parse_args(
            ["table3", "--backend", "dense", "--eval-every", "2"])
        assert args.backend == "dense"
        assert args.eval_every == 2


class TestSetOverrides:
    def test_dotted_keys_nest(self):
        overrides = parse_set_overrides(
            ["optimizer.learning_rate=0.01", "eta=2.0", "encoder.kind=gcn"])
        assert overrides == {
            "optimizer": {"learning_rate": 0.01},
            "eta": 2.0,
            "encoder": {"kind": "gcn"},
        }

    def test_json_and_string_values(self):
        overrides = parse_set_overrides(["a=true", "b=hello", "c=[1,2]"])
        assert overrides == {"a": True, "b": "hello", "c": [1, 2]}

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_set_overrides(["eta"])


class TestRunCommand:
    def test_run_openima_end_to_end(self, capsys):
        result = main(TINY_RUN)
        captured = capsys.readouterr()
        assert "OpenIMA" in captured.out
        assert result["method"] == "openima"
        assert result["epochs_trained"] == 1
        assert 0.0 <= result["accuracy"]["all"] <= 1.0

    def test_run_applies_set_overrides(self):
        result = main(TINY_RUN + ["--set", "eta=0.0", "--set",
                                  "trainer.temperature=0.5"])
        assert result["method"] == "openima"

    def test_run_baseline_with_method_param_override(self):
        result = main(["run", "--method", "orca", "--dataset", "citeseer",
                       "--epochs", "1", "--scale", "0.15",
                       "--set", "margin_scale=0.5"])
        assert result["method"] == "orca"

    def test_run_eval_every_records_evaluations(self):
        result = main(TINY_RUN + ["--eval-every", "1"])
        assert len(result["evaluations"]) == 1

    def test_run_dense_backend(self):
        result = main(TINY_RUN + ["--backend", "dense"])
        assert result["epochs_trained"] == 1

    def test_run_khop_sampling_flag(self):
        result = main(TINY_RUN + ["--sampling-mode", "khop"])
        assert result["epochs_trained"] == 1
        assert np.isfinite(result["accuracy"]["all"])

    def test_run_sampling_via_set_override(self):
        result = main(["run", "--method", "infonce", "--dataset", "citeseer",
                       "--epochs", "1", "--scale", "0.15",
                       "--set", "sampling.mode=sampled",
                       "--set", "sampling.fanouts=[4,4]"])
        assert result["epochs_trained"] == 1

    def test_sampling_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(TINY_RUN + ["--sampling-mode", "everything"])
        args = build_parser().parse_args(["table3", "--sampling-mode", "khop"])
        assert args.sampling_mode == "khop"

    def test_unknown_set_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown OpenIMAConfig keys"):
            main(TINY_RUN + ["--set", "etaa=1.0"])

    @pytest.mark.parametrize("method", sorted(available_methods()))
    def test_every_registered_method_runnable(self, method):
        result = main(["run", "--method", method, "--dataset", "citeseer",
                       "--epochs", "1", "--scale", "0.15"])
        assert result["method"] == method
        assert result["epochs_trained"] >= 1
        assert np.isfinite(result["accuracy"]["all"])


class TestResumeCommand:
    def test_save_then_resume(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        first = main(TINY_RUN + ["--save", str(checkpoint)])
        assert (checkpoint / "manifest.json").exists()
        resumed = main(["resume", str(checkpoint), "--epochs", "2",
                        "--save", str(tmp_path / "ckpt2")])
        assert resumed["epochs_trained"] == 2
        assert resumed["losses"][0] == pytest.approx(first["losses"][0])
        assert (tmp_path / "ckpt2" / "manifest.json").exists()

    def test_resume_overwrites_source_by_default(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        main(TINY_RUN + ["--save", str(checkpoint)])
        resumed = main(["resume", str(checkpoint), "--epochs", "2"])
        assert resumed["epochs_trained"] == 2
        again = main(["resume", str(checkpoint)])
        # Already at the target: no further epochs are trained.
        assert again["epochs_trained"] == 2


class TestEmbedPredictCommands:
    @pytest.fixture()
    def checkpoint(self, tmp_path):
        path = tmp_path / "ckpt"
        main(TINY_RUN + ["--save", str(path)])
        return path

    def test_embed_writes_npz(self, checkpoint, tmp_path):
        target = tmp_path / "emb.npz"
        result = main(["embed", str(checkpoint), str(target)])
        embeddings = np.load(target)["embeddings"]
        assert list(embeddings.shape) == result["shape"]
        assert embeddings.shape[1] > 0
        assert result["inference_mode"] == "full"  # tiny graph, auto mode

    def test_embed_layerwise_matches_full(self, checkpoint, tmp_path):
        full_path = tmp_path / "full.npz"
        layerwise_path = tmp_path / "layerwise.npz"
        main(["embed", str(checkpoint), str(full_path)])
        result = main(["embed", str(checkpoint), str(layerwise_path),
                       "--set", "inference.mode=layerwise",
                       "--set", "inference.chunk_size=33"])
        assert result["inference_mode"] == "layerwise"
        np.testing.assert_allclose(np.load(layerwise_path)["embeddings"],
                                   np.load(full_path)["embeddings"],
                                   rtol=0.0, atol=1e-8)

    def test_predict_writes_predictions_and_accuracy(self, checkpoint, tmp_path):
        target = tmp_path / "pred.npz"
        result = main(["predict", str(checkpoint),
                       "--predictions-npz", str(target),
                       "--output", str(tmp_path / "pred.json"),
                       "--set", "inference.mode=layerwise"])
        predictions = np.load(target)["predictions"]
        assert predictions.tolist() == result["predictions"]
        assert 0.0 <= result["accuracy"]["all"] <= 1.0
        assert result["inference_mode"] == "layerwise"
        assert (tmp_path / "pred.json").exists()

    def test_predict_without_json_output_skips_boxed_list(self, checkpoint):
        result = main(["predict", str(checkpoint)])
        assert "predictions" not in result
        assert 0.0 <= result["accuracy"]["all"] <= 1.0

    def test_non_inference_override_rejected(self, checkpoint, tmp_path):
        with pytest.raises(ValueError, match="inference"):
            main(["embed", str(checkpoint), str(tmp_path / "emb.npz"),
                  "--set", "eta=2.0"])

    def test_bare_inference_override_rejected(self, checkpoint, tmp_path):
        # `inference=layerwise` (missing the dotted key) must fail with the
        # same clean error, not an AttributeError inside the merge.
        with pytest.raises(ValueError, match="inference.mode=layerwise"):
            main(["embed", str(checkpoint), str(tmp_path / "emb.npz"),
                  "--set", "inference=layerwise"])

    def test_bad_inference_mode_fails_loudly(self, checkpoint, tmp_path):
        with pytest.raises(ValueError, match="inference mode"):
            main(["embed", str(checkpoint), str(tmp_path / "emb.npz"),
                  "--set", "inference.mode=warp"])


class TestListCommands:
    def test_list_methods(self, capsys):
        result = main(["list-methods"])
        captured = capsys.readouterr()
        assert set(row["name"] for row in result["methods"]) == set(available_methods())
        assert "openima" in captured.out
        assert "end-to-end" in captured.out and "two-stage" in captured.out

    def test_list_datasets(self, capsys):
        result = main(["list-datasets"])
        captured = capsys.readouterr()
        assert set(row["name"] for row in result["datasets"]) == set(available_datasets())
        assert "ogbn-products" in captured.out

    def test_output_flag_writes_json(self, tmp_path):
        from repro.experiments.persistence import load_results

        main(["list-methods", "--output", str(tmp_path / "methods.json")])
        loaded = load_results(tmp_path / "methods.json")
        assert any(row["name"] == "openima" for row in loaded["methods"])


class TestClusteringOverrides:
    @pytest.fixture()
    def checkpoint(self, tmp_path):
        path = tmp_path / "ckpt"
        main(TINY_RUN + ["--save", str(path)])
        return path

    def test_run_clustering_strategy_via_set(self, tmp_path):
        path = tmp_path / "mb-ckpt"
        result = main(TINY_RUN + ["--set", "trainer.clustering.strategy=minibatch",
                                  "--set", "trainer.clustering.sample_size=64",
                                  "--save", str(path)])
        assert result["epochs_trained"] == 1
        resumed = main(["resume", str(path), "--epochs", "2"])
        assert resumed["epochs_trained"] == 2

    def test_run_unknown_clustering_key_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown ClusteringConfig keys"):
            main(TINY_RUN + ["--set", "trainer.clustering.stratgy=online"])

    def test_run_unknown_clustering_strategy_fails_loudly(self):
        with pytest.raises(ValueError, match="clustering strategy"):
            main(TINY_RUN + ["--set", "trainer.clustering.strategy=spectral"])

    def test_predict_accepts_clustering_override(self, checkpoint):
        result = main(["predict", str(checkpoint),
                       "--set", "clustering.strategy=minibatch",
                       "--set", "clustering.sample_size=64"])
        assert 0.0 <= result["accuracy"]["all"] <= 1.0

    def test_predict_rejects_unknown_clustering_key(self, checkpoint):
        with pytest.raises(ValueError, match="unknown ClusteringConfig keys"):
            main(["predict", str(checkpoint),
                  "--set", "clustering.stratgy=minibatch"])

    def test_embed_rejects_clustering_override(self, checkpoint, tmp_path):
        # embed never clusters; only inference.* is meaningful there.
        with pytest.raises(ValueError, match="inference"):
            main(["embed", str(checkpoint), str(tmp_path / "emb.npz"),
                  "--set", "clustering.strategy=minibatch"])

    def test_bare_clustering_override_rejected(self, checkpoint):
        with pytest.raises(ValueError, match="clustering.strategy=minibatch"):
            main(["predict", str(checkpoint), "--set", "clustering=minibatch"])


class TestStreamCommand:
    TINY_STREAM: ClassVar[list] = ["stream", "--dataset", "citeseer", "--scale", "0.15",
                   "--epochs", "1", "--steps", "3"]

    def test_stream_end_to_end(self, capsys):
        result = main(self.TINY_STREAM)
        captured = capsys.readouterr()
        assert "prequential" in captured.out
        assert "step" in captured.out and "refresh" in captured.out
        assert result["method"] == "openima"
        assert result["scenario"]["num_steps"] == 3
        assert len(result["steps"]) == 3
        summary = result["summary"]
        assert 0.0 <= summary["prequential"]["overall"] <= 1.0
        assert summary["partial_refresh_steps"] + summary["full_refresh_steps"] == 3
        # Every arrival outside the base graph was scored exactly once.
        assert summary["prequential"]["num_scored"] == (
            result["scenario"]["total_nodes"] - result["scenario"]["base_nodes"])

    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(self.TINY_STREAM)
        assert args.experiment == "stream"
        assert args.steps == 3
        assert args.birth_threshold == pytest.approx(0.2)
        assert args.max_clusters is None

    def test_stream_output_flag_writes_json(self, tmp_path):
        from repro.experiments.persistence import load_results

        path = tmp_path / "stream.json"
        main(self.TINY_STREAM + ["--output", str(path)])
        loaded = load_results(path)
        assert loaded["scenario"]["num_steps"] == 3

    def test_stream_birth_disabled_via_flag(self):
        result = main(self.TINY_STREAM + ["--birth-threshold", "-1"])
        summary = result["summary"]
        assert summary["first_birth_step"] is None
        assert summary["num_clusters_end"] == summary["num_clusters_start"]
