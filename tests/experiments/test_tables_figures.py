"""Smoke tests for the table/figure builders (tiny budgets).

The full reproductions live in benchmarks/; these tests only check that each
builder runs end-to-end, produces the expected structure, and renders a
report string.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import build_figure1b, build_figure2
from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import (
    TABLE3_DATASETS,
    TABLE3_METHODS,
    TABLE5_VARIANTS,
    build_accuracy_table,
    build_table2,
    build_table5,
    build_table6,
    build_table7,
)

TINY = ExperimentConfig(scale=0.12, max_epochs=1, batch_size=96, encoder_kind="gcn", seeds=(0,))


class TestTable2:
    def test_contains_all_seven_datasets(self):
        result = build_table2(scale=0.2)
        assert len(result["statistics"]) == 7
        assert "Citeseer" in result["report"]
        assert "ogbn-Products" in result["report"]

    def test_paper_statistics_present(self):
        result = build_table2(scale=0.2)
        citeseer = result["statistics"]["citeseer"]
        assert citeseer["paper_nodes"] == 3_327
        assert citeseer["synthetic_classes"] == 6


class TestAccuracyTableBuilder:
    def test_small_grid(self):
        result = build_accuracy_table(
            methods=("infonce", "openima"),
            datasets=("citeseer",),
            experiment=TINY,
            title="tiny table",
        )
        assert "tiny table" in result["report"]
        assert set(result["results"]) == {"infonce", "openima"}
        entry = result["results"]["openima"]["citeseer"]
        assert 0.0 <= entry.accuracy.overall <= 1.0

    def test_constants_cover_paper_rows(self):
        assert len(TABLE3_METHODS) == 12
        assert len(TABLE3_DATASETS) == 5
        assert len(TABLE5_VARIANTS) == 8


class TestTable5:
    def test_two_variants_on_one_dataset(self):
        result = build_table5(
            experiment=TINY,
            datasets=("citeseer",),
            variants=(
                ("Full OpenIMA", True, True, True, True),
                ("Ours w/o PL", True, True, True, False),
            ),
        )
        assert set(result["results"]) == {"Full OpenIMA", "Ours w/o PL"}
        assert "Table V" in result["report"]


class TestTable6:
    def test_estimates_and_results(self):
        result = build_table6(
            experiment=TINY, methods=("openima",), datasets=("citeseer",), max_novel=3
        )
        assert "citeseer" in result["estimates"]
        assert 1 <= result["estimates"]["citeseer"] <= 3
        assert "Table VI" in result["report"]


class TestTable7:
    def test_selection_outcomes(self):
        result = build_table7(
            experiment=TINY,
            dataset_name="citeseer",
            methods=("infonce",),
            learning_rates=(1e-3, 1e-2),
        )
        outcomes = result["results"]["infonce"]
        assert set(outcomes) == {"sc", "acc", "sc&acc"}
        for outcome in outcomes.values():
            assert 0.0 <= outcome.overall <= 1.0
            assert outcome.gap >= 0.0
        assert "Table VII" in result["report"]


class TestFigures:
    def test_figure1b_structure(self):
        result = build_figure1b(experiment=TINY, dataset_name="citeseer",
                                methods=("infonce", "openima"))
        assert set(result["results"]) == {"infonce", "openima"}
        for entry in result["results"].values():
            assert entry["imbalance_rate"] >= 1.0
            assert entry["separation_rate"] >= 0.0
        assert "Figure 1b" in result["report"]

    def test_figure2_series(self):
        result = build_figure2(
            experiment=TINY, datasets=("citeseer",), etas=(1.0, 10.0), rhos=(50.0,)
        )
        assert len(result["eta_series"]["citeseer"]) == 2
        assert len(result["rho_series"]["citeseer"]) == 1
        assert "Figure 2" in result["report"]
