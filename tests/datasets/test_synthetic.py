"""Tests for synthetic dataset construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import get_profile
from repro.datasets.synthetic import (
    dataset_profile_summary,
    dataset_statistics,
    load_graph,
    load_open_world_dataset,
    stratified_node_sample,
)


class TestLoadGraph:
    def test_full_scale_matches_profile(self):
        graph = load_graph("citeseer", seed=0)
        profile = get_profile("citeseer")
        assert graph.num_nodes == profile.sbm.num_nodes
        assert graph.num_classes == profile.paper_classes

    def test_scaling_down(self):
        graph = load_graph("citeseer", seed=0, scale=0.5)
        profile = get_profile("citeseer")
        assert graph.num_nodes < profile.sbm.num_nodes
        assert graph.num_classes == profile.paper_classes

    def test_determinism(self):
        graph_a = load_graph("amazon-photos", seed=2, scale=0.3)
        graph_b = load_graph("amazon-photos", seed=2, scale=0.3)
        np.testing.assert_array_equal(graph_a.labels, graph_b.labels)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_graph("not-a-dataset")


class TestLoadOpenWorldDataset:
    def test_split_attached(self):
        dataset = load_open_world_dataset("citeseer", seed=0, scale=0.3)
        assert dataset.name == "citeseer"
        assert dataset.split.num_seen >= 1
        assert dataset.split.num_novel >= 1
        assert dataset.metadata["profile"].name == "citeseer"

    def test_scale_shrinks_label_budget(self):
        small = load_open_world_dataset("coauthor-cs", seed=0, scale=0.2)
        budget = small.metadata["labels_per_class"]
        assert budget < get_profile("coauthor-cs").labels_per_class
        assert budget >= 5

    def test_labels_per_class_override(self):
        dataset = load_open_world_dataset("citeseer", seed=0, scale=0.5, labels_per_class=7)
        train_labels = dataset.labels[dataset.split.train_nodes]
        for cls in dataset.split.seen_classes:
            assert (train_labels == cls).sum() <= 7

    def test_large_scale_metadata(self):
        dataset = load_open_world_dataset("ogbn-arxiv", seed=0, scale=0.1)
        assert dataset.metadata["large_scale"] is True


class TestStatisticsAndHelpers:
    def test_dataset_statistics_contains_both_sides(self):
        stats = dataset_statistics("coauthor-physics", seed=0, scale=0.3)
        assert stats["paper_nodes"] == 34_493
        assert stats["synthetic_nodes"] > 0
        assert stats["synthetic_classes"] == 5

    def test_profile_summary(self):
        summary = dataset_profile_summary(get_profile("citeseer"))
        assert "Citeseer" in summary

    def test_stratified_node_sample(self):
        labels = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2])
        sample = stratified_node_sample(labels, per_class=2, seed=0)
        sampled_labels = labels[sample]
        for cls in range(3):
            assert (sampled_labels == cls).sum() == 2
