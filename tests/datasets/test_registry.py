"""Tests for the dataset registry."""

from __future__ import annotations

import pytest

from repro.datasets.registry import (
    DatasetProfile,
    available_datasets,
    get_profile,
    register_profile,
)
from repro.graphs.generators import SBMConfig


EXPECTED_DATASETS = {
    "citeseer",
    "amazon-photos",
    "amazon-computers",
    "coauthor-cs",
    "coauthor-physics",
    "ogbn-arxiv",
    "ogbn-products",
}


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        assert EXPECTED_DATASETS.issubset(set(available_datasets()))

    def test_get_profile_fields(self):
        profile = get_profile("coauthor-cs")
        assert profile.paper_name == "Coauthor CS"
        assert profile.paper_classes == 15
        assert profile.sbm.num_classes == 15
        assert not profile.large_scale

    def test_table2_statistics_match_paper(self):
        paper_stats = {
            "citeseer": (3_327, 4_676, 3_703, 6),
            "amazon-photos": (7_650, 119_082, 745, 8),
            "amazon-computers": (13_752, 245_861, 767, 10),
            "coauthor-cs": (18_333, 81_894, 6_805, 15),
            "coauthor-physics": (34_493, 247_962, 8_415, 5),
            "ogbn-arxiv": (169_343, 1_166_243, 128, 40),
            "ogbn-products": (2_449_029, 61_859_140, 100, 47),
        }
        for name, (nodes, edges, features, classes) in paper_stats.items():
            profile = get_profile(name)
            assert profile.paper_nodes == nodes
            assert profile.paper_edges == edges
            assert profile.paper_features == features
            assert profile.paper_classes == classes

    def test_synthetic_class_counts_match_paper(self):
        for name in EXPECTED_DATASETS:
            profile = get_profile(name)
            assert profile.sbm.num_classes == profile.paper_classes

    def test_large_scale_flags(self):
        assert get_profile("ogbn-arxiv").large_scale
        assert get_profile("ogbn-products").large_scale
        assert not get_profile("citeseer").large_scale

    def test_unknown_dataset_raises_with_hint(self):
        with pytest.raises(KeyError, match="available"):
            get_profile("cora")

    def test_register_custom_profile(self):
        profile = DatasetProfile(
            name="custom-test-profile",
            paper_name="Custom",
            paper_nodes=10,
            paper_edges=10,
            paper_features=4,
            paper_classes=2,
            sbm=SBMConfig(num_nodes=50, num_classes=2),
            labels_per_class=5,
        )
        register_profile(profile)
        assert get_profile("custom-test-profile").paper_name == "Custom"
        with pytest.raises(ValueError):
            register_profile(profile)
        register_profile(profile, overwrite=True)
