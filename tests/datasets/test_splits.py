"""Tests for the open-world split protocol."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.splits import OpenWorldDataset, make_open_world_split
from repro.graphs.generators import SBMConfig, generate_sbm_graph


def make_labeled_graph(num_nodes=200, num_classes=6, seed=0):
    return generate_sbm_graph(
        SBMConfig(num_nodes=num_nodes, num_classes=num_classes, feature_dim=8), seed=seed
    )


class TestSplitInvariants:
    def test_node_partition_is_disjoint_and_complete(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=0)
        train, val, test = set(split.train_nodes), set(split.val_nodes), set(split.test_nodes)
        assert train.isdisjoint(val)
        assert train.isdisjoint(test)
        assert val.isdisjoint(test)
        assert len(train | val | test) == graph.num_nodes

    def test_class_partition(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=0)
        assert set(split.seen_classes).isdisjoint(set(split.novel_classes))
        all_classes = set(np.unique(graph.labels))
        assert set(split.seen_classes) | set(split.novel_classes) == all_classes
        assert split.num_seen == 3 and split.num_novel == 3

    def test_train_val_nodes_are_seen_classes_only(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=0)
        assert np.isin(graph.labels[split.train_nodes], split.seen_classes).all()
        assert np.isin(graph.labels[split.val_nodes], split.seen_classes).all()

    def test_test_set_contains_novel_nodes(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=0)
        test_labels = graph.labels[split.test_nodes]
        assert np.isin(test_labels, split.novel_classes).any()
        assert np.isin(test_labels, split.seen_classes).any()

    def test_label_budget_respected(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=5, seed=0)
        train_labels = graph.labels[split.train_nodes]
        for cls in split.seen_classes:
            assert (train_labels == cls).sum() <= 5

    def test_determinism_and_seed_variation(self):
        graph = make_labeled_graph()
        split_a = make_open_world_split(graph, labels_per_class=10, seed=3)
        split_b = make_open_world_split(graph, labels_per_class=10, seed=3)
        split_c = make_open_world_split(graph, labels_per_class=10, seed=4)
        np.testing.assert_array_equal(split_a.train_nodes, split_b.train_nodes)
        np.testing.assert_array_equal(split_a.seen_classes, split_b.seen_classes)
        assert (
            not np.array_equal(split_a.seen_classes, split_c.seen_classes)
            or not np.array_equal(split_a.train_nodes, split_c.train_nodes)
        )

    def test_fixed_seen_classes(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=0,
                                      seen_classes=np.array([0, 1]))
        np.testing.assert_array_equal(split.seen_classes, [0, 1])
        np.testing.assert_array_equal(split.novel_classes, [2, 3, 4, 5])

    def test_seen_fraction(self):
        graph = make_labeled_graph(num_classes=8)
        split = make_open_world_split(graph, seen_fraction=0.25, labels_per_class=5, seed=0)
        assert split.num_seen == 2
        assert split.num_novel == 6

    def test_describe(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=1)
        info = split.describe()
        assert info["num_seen_classes"] == split.num_seen
        assert info["num_train"] == split.train_nodes.shape[0]


class TestErrors:
    def test_unlabeled_graph_raises(self):
        graph = make_labeled_graph()
        graph = type(graph)(features=graph.features, edge_index=graph.edge_index, labels=None)
        with pytest.raises(ValueError):
            make_open_world_split(graph)

    def test_all_classes_seen_raises(self):
        graph = make_labeled_graph(num_classes=3)
        with pytest.raises(ValueError):
            make_open_world_split(graph, seen_classes=np.array([0, 1, 2]))


class TestOpenWorldDataset:
    def test_accessors(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=0)
        dataset = OpenWorldDataset(graph=graph, split=split, name="toy")
        np.testing.assert_array_equal(dataset.train_labels(), graph.labels[split.train_nodes])
        seen_mask = dataset.seen_mask()
        assert seen_mask.shape[0] == split.test_nodes.shape[0]
        info = dataset.describe()
        assert info["name"] == "toy"
        assert info["num_nodes"] == graph.num_nodes

    def test_unlabeled_alias(self):
        graph = make_labeled_graph()
        split = make_open_world_split(graph, labels_per_class=10, seed=0)
        np.testing.assert_array_equal(split.unlabeled_nodes(), split.test_nodes)


class TestPropertyBased:
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=120, max_value=300),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_split_partition_property(self, num_classes, num_nodes, seed):
        graph = make_labeled_graph(num_nodes=num_nodes, num_classes=num_classes, seed=seed)
        split = make_open_world_split(graph, labels_per_class=8, seed=seed)
        union = np.concatenate([split.train_nodes, split.val_nodes, split.test_nodes])
        assert np.unique(union).shape[0] == graph.num_nodes
        assert split.num_novel >= 1
        assert split.num_seen >= 1
