"""Tests for the internal label space mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import LabelSpace


class TestLabelSpace:
    def test_counts(self):
        space = LabelSpace(seen_classes=np.array([3, 7, 1]), num_novel=2)
        assert space.num_seen == 3
        assert space.num_novel == 2
        assert space.num_total == 5
        np.testing.assert_array_equal(space.seen_classes, [1, 3, 7])

    def test_to_internal(self):
        space = LabelSpace(seen_classes=np.array([5, 2]), num_novel=1)
        internal = space.to_internal(np.array([2, 5, 2]))
        np.testing.assert_array_equal(internal, [0, 1, 0])

    def test_to_internal_unknown_class_raises(self):
        space = LabelSpace(seen_classes=np.array([0, 1]), num_novel=1)
        with pytest.raises(KeyError):
            space.to_internal(np.array([0, 9]))

    def test_to_original_roundtrip_for_seen(self):
        space = LabelSpace(seen_classes=np.array([4, 8, 2]), num_novel=3)
        original = np.array([2, 4, 8, 8, 2])
        recovered = space.to_original(space.to_internal(original))
        np.testing.assert_array_equal(recovered, original)

    def test_to_original_novel_ids_are_distinct_from_seen(self):
        space = LabelSpace(seen_classes=np.array([0, 3]), num_novel=2)
        internal = np.array([0, 1, 2, 3])
        original = space.to_original(internal)
        assert original[0] == 0 and original[1] == 3
        assert original[2] not in (0, 3) and original[3] not in (0, 3)
        assert original[2] != original[3]

    def test_to_original_custom_offset(self):
        space = LabelSpace(seen_classes=np.array([0, 1]), num_novel=2)
        original = space.to_original(np.array([2, 3]), novel_offset=100)
        np.testing.assert_array_equal(original, [100, 101])

    def test_is_seen_internal(self):
        space = LabelSpace(seen_classes=np.array([0, 1, 2]), num_novel=2)
        mask = space.is_seen_internal(np.array([0, 2, 3, 4]))
        np.testing.assert_array_equal(mask, [True, True, False, False])

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, num_seen, num_novel, seed):
        rng = np.random.default_rng(seed)
        seen = rng.choice(np.arange(20), size=num_seen, replace=False)
        space = LabelSpace(seen_classes=seen, num_novel=num_novel)
        labels = rng.choice(seen, size=12)
        np.testing.assert_array_equal(space.to_original(space.to_internal(labels)), labels)
