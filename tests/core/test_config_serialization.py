"""Config dict/JSON round-tripping and strict unknown-key validation.

The matrix below must list every ``@dataclass`` named ``*Config`` in the
package (linter rule R5 plus :class:`TestMatrixCompleteness` enforce this):
a config outside the matrix silently loses round-trip coverage.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import pkgutil

import pytest

from repro.core.config import (
    ClusteringConfig,
    EncoderConfig,
    InferenceConfig,
    OpenIMAConfig,
    OptimizerConfig,
    ParallelConfig,
    SamplingConfig,
    SerializableConfig,
    TrainerConfig,
    fast_config,
)
from repro.experiments.runner import ExperimentConfig
from repro.graphs.generators import SBMConfig
from repro.serve.server import ServeConfig

ALL_CONFIGS = [
    EncoderConfig(kind="gcn", hidden_dim=48, backend="dense"),
    OptimizerConfig(learning_rate=3e-3, weight_decay=0.0),
    SamplingConfig(mode="sampled", num_hops=3, fanouts=[5, 5, 5], seed=2),
    ClusteringConfig(strategy="online", sample_size=512, warm_start=True,
                     refresh_tolerance=8, seed=5),
    fast_config(max_epochs=5, seed=3, encoder_kind="gat"),
    fast_config(sampling=SamplingConfig(mode="khop")),
    fast_config(clustering=ClusteringConfig(strategy="minibatch")),
    OpenIMAConfig(eta=2.5, rho=50.0, large_scale=True, num_novel_classes=4),
    InferenceConfig(mode="layerwise", chunk_size=256, cache=False),
    ParallelConfig(backend="threads", n_jobs=4, chunk_size=256),
    SBMConfig(num_nodes=120, num_classes=4, homophily=0.7, feature_dim=16),
    ServeConfig(port=0, batch_window_ms=1.5, max_batch=64, warm=False),
    ExperimentConfig(scale=0.25, max_epochs=4, seeds=[1, 2], eval_every=2),
]


class TestRoundTrip:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: type(c).__name__)
    def test_dict_round_trip(self, config):
        restored = type(config).from_dict(config.to_dict())
        assert restored == config

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: type(c).__name__)
    def test_json_round_trip(self, config):
        text = config.to_json()
        json.loads(text)  # valid JSON
        assert type(config).from_json(text) == config

    def test_nested_configs_become_nested_dicts(self):
        data = OpenIMAConfig().to_dict()
        assert isinstance(data["trainer"], dict)
        assert isinstance(data["trainer"]["encoder"], dict)
        assert data["trainer"]["encoder"]["kind"] == "gat"

    def test_partial_dict_uses_defaults(self):
        config = TrainerConfig.from_dict({"max_epochs": 3, "encoder": {"kind": "gcn"}})
        assert config.max_epochs == 3
        assert config.encoder.kind == "gcn"
        assert config.encoder.hidden_dim == EncoderConfig().hidden_dim
        assert config.batch_size == TrainerConfig().batch_size

    def test_nested_field_accepts_config_object(self):
        encoder = EncoderConfig(kind="gcn")
        config = TrainerConfig.from_dict({"encoder": encoder})
        assert config.encoder == encoder


class TestSamplingConfig:
    def test_trainer_config_nests_sampling_dict(self):
        config = TrainerConfig.from_dict(
            {"sampling": {"mode": "khop", "num_hops": 3}})
        assert config.sampling == SamplingConfig(mode="khop", num_hops=3)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sampling mode"):
            SamplingConfig(mode="turbo")

    def test_bad_num_hops_rejected(self):
        with pytest.raises(ValueError, match="num_hops"):
            SamplingConfig(num_hops=0)

    def test_fanout_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one cap per hop"):
            SamplingConfig(mode="sampled", num_hops=2, fanouts=[4])

    def test_sampled_mode_fills_default_fanouts(self):
        config = SamplingConfig(mode="sampled", num_hops=3)
        assert config.fanouts == [10, 10, 10]
        # The filled-in value round-trips.
        assert SamplingConfig.from_dict(config.to_dict()) == config

    def test_full_mode_keeps_fanouts_none(self):
        assert SamplingConfig().fanouts is None


class TestClusteringConfig:
    def test_trainer_config_nests_clustering_dict(self):
        config = TrainerConfig.from_dict(
            {"clustering": {"strategy": "minibatch", "sample_size": 256}})
        assert config.clustering == ClusteringConfig(strategy="minibatch",
                                                     sample_size=256)

    def test_openima_config_nests_clustering_dict(self):
        config = OpenIMAConfig.from_dict(
            {"trainer": {"clustering": {"strategy": "online"}}})
        assert config.trainer.clustering.strategy == "online"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown clustering strategy"):
            ClusteringConfig(strategy="turbo")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown ClusteringConfig keys"):
            TrainerConfig.from_dict({"clustering": {"warmstart": True}})


class TestValidation:
    def test_unknown_top_level_key_raises(self):
        with pytest.raises(ValueError, match="unknown TrainerConfig keys.*'bogus'"):
            TrainerConfig.from_dict({"bogus": 1})

    def test_unknown_nested_key_raises(self):
        with pytest.raises(ValueError, match="unknown EncoderConfig keys"):
            TrainerConfig.from_dict({"encoder": {"hidden": 64}})

    def test_unknown_openima_key_raises(self):
        with pytest.raises(ValueError, match="unknown OpenIMAConfig keys"):
            OpenIMAConfig.from_dict({"etaa": 1.0})

    def test_error_names_valid_keys(self):
        with pytest.raises(ValueError, match="valid keys"):
            OptimizerConfig.from_dict({"lr": 0.1})

    def test_non_mapping_raises(self):
        with pytest.raises(TypeError, match="expects a mapping"):
            TrainerConfig.from_dict([("max_epochs", 3)])

    def test_with_updates_on_all_configs(self):
        assert EncoderConfig().with_updates(kind="gcn").kind == "gcn"
        assert OptimizerConfig().with_updates(learning_rate=1.0).learning_rate == 1.0
        assert TrainerConfig().with_updates(seed=9).seed == 9
        assert OpenIMAConfig().with_updates(eta=3.0).eta == 3.0


def _discover_config_classes():
    """Every ``@dataclass`` named ``*Config`` defined anywhere under repro."""
    import repro

    found = {}
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if ".violations" in info.name:
            continue  # quarantined sanitizer demos, not production code
        module = importlib.import_module(info.name)
        for name, obj in vars(module).items():
            if (isinstance(obj, type) and name.endswith("Config")
                    and name != "SerializableConfig"
                    and dataclasses.is_dataclass(obj)
                    and obj.__module__ == info.name):
                found[name] = obj
    return found


class TestMatrixCompleteness:
    """ALL_CONFIGS stays in sync with the package — no config left behind."""

    def test_every_config_dataclass_subclasses_serializable(self):
        rogue = [name for name, cls in _discover_config_classes().items()
                 if not issubclass(cls, SerializableConfig)]
        assert not rogue, (
            f"config dataclasses outside SerializableConfig: {rogue} "
            f"(linter rule R5 should have caught this)")

    def test_every_config_dataclass_is_in_matrix(self):
        covered = {type(config).__name__ for config in ALL_CONFIGS}
        missing = sorted(set(_discover_config_classes()) - covered)
        assert not missing, (
            f"config classes missing from ALL_CONFIGS round-trip matrix: "
            f"{missing}")
