"""End-to-end integration and failure-injection tests for the OpenIMA pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import OpenIMAConfig, fast_config
from repro.core.openima import OpenIMATrainer
from repro.datasets.splits import OpenWorldDataset, make_open_world_split
from repro.graphs.generators import SBMConfig, generate_sbm_graph


def build_dataset(num_nodes=140, num_classes=4, avg_degree=8.0, seed=3, labels_per_class=8):
    graph = generate_sbm_graph(
        SBMConfig(num_nodes=num_nodes, num_classes=num_classes, avg_degree=avg_degree,
                  feature_dim=16, feature_sparsity=0.0, feature_noise=0.4),
        seed=seed,
    )
    split = make_open_world_split(graph, labels_per_class=labels_per_class, seed=seed)
    return OpenWorldDataset(graph=graph, split=split, name="integration")


class TestDeterminism:
    def test_same_seed_gives_identical_predictions(self):
        dataset = build_dataset()
        config = OpenIMAConfig(trainer=fast_config(max_epochs=2, encoder_kind="gcn",
                                                   batch_size=140))
        predictions = []
        for _ in range(2):
            trainer = OpenIMATrainer(dataset, config)
            trainer.fit()
            predictions.append(trainer.predict().predictions)
        np.testing.assert_array_equal(predictions[0], predictions[1])

    def test_different_seeds_give_different_models(self):
        dataset = build_dataset()
        embeddings = []
        for seed in (0, 1):
            config = OpenIMAConfig(
                trainer=fast_config(max_epochs=2, seed=seed, encoder_kind="gcn", batch_size=140)
            )
            trainer = OpenIMATrainer(dataset, config)
            trainer.fit()
            embeddings.append(trainer.node_embeddings())
        assert not np.allclose(embeddings[0], embeddings[1])


class TestModelPersistence:
    def test_encoder_state_dict_roundtrip_preserves_embeddings(self):
        dataset = build_dataset()
        config = OpenIMAConfig(trainer=fast_config(max_epochs=2, encoder_kind="gcn",
                                                   batch_size=140))
        trained = OpenIMATrainer(dataset, config)
        trained.fit()
        reference = trained.node_embeddings()

        fresh = OpenIMATrainer(dataset, config)
        fresh.encoder.load_state_dict(trained.encoder.state_dict())
        fresh.head.load_state_dict(trained.head.state_dict())
        np.testing.assert_allclose(fresh.node_embeddings(), reference)


class TestFailureInjection:
    def test_single_novel_class(self):
        dataset = build_dataset(num_classes=4)
        # Force only one novel class by fixing three seen classes.
        split = make_open_world_split(
            dataset.graph, labels_per_class=8, seed=0, seen_classes=np.array([0, 1, 2])
        )
        dataset = OpenWorldDataset(graph=dataset.graph, split=split, name="one-novel")
        config = OpenIMAConfig(trainer=fast_config(max_epochs=1, encoder_kind="gcn",
                                                   batch_size=140))
        trainer = OpenIMATrainer(dataset, config)
        trainer.fit()
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0

    def test_extremely_sparse_graph(self):
        dataset = build_dataset(avg_degree=1.0)
        config = OpenIMAConfig(trainer=fast_config(max_epochs=1, encoder_kind="gcn",
                                                   batch_size=140))
        trainer = OpenIMATrainer(dataset, config)
        history = trainer.fit()
        assert np.isfinite(history.losses).all()

    def test_tiny_label_budget(self):
        dataset = build_dataset(labels_per_class=2)
        config = OpenIMAConfig(trainer=fast_config(max_epochs=1, encoder_kind="gcn",
                                                   batch_size=140))
        trainer = OpenIMATrainer(dataset, config)
        trainer.fit()
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0

    def test_overridden_novel_count_larger_than_truth(self):
        dataset = build_dataset()
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=1, encoder_kind="gcn", batch_size=140),
            num_novel_classes=5,
        )
        trainer = OpenIMATrainer(dataset, config)
        trainer.fit()
        result = trainer.predict()
        # The head and clustering operate over num_seen + 5 classes.
        assert trainer.label_space.num_novel == 5
        assert result.cluster_result.centers.shape[0] == trainer.label_space.num_total
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0
