"""Clustering-engine integration: refresh/predict parity with the legacy path.

The acceptance bar for the engine refactor: with the default ``exact``
strategy, every pseudo-label refresh and every two-stage prediction is
bit-identical to the direct ``cluster_embeddings`` path it replaced — across
multiple refreshes, for OpenIMA and the clustering baselines.  The
approximate strategies must stay within NMI >= 0.95 of the exact assignment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.opencon import OpenConTrainer
from repro.baselines.openwgl import OpenWGLTrainer
from repro.baselines.orca import ORCATrainer
from repro.clustering import normalized_mutual_information
from repro.clustering.kmeans import cluster_embeddings
from repro.core.callbacks import Callback
from repro.core.config import ClusteringConfig, OpenIMAConfig, fast_config
from repro.core.openima import OpenIMATrainer
from repro.core.pseudo_labels import generate_pseudo_labels


def openima_config(max_epochs=4, clustering=None, **overrides):
    trainer = fast_config(max_epochs=max_epochs, seed=0, batch_size=128,
                          clustering=clustering)
    return OpenIMAConfig(trainer=trainer, pseudo_label_warmup=0,
                         pseudo_label_refresh=1, **overrides)


class RefreshParityCallback(Callback):
    """After every refresh, recompute the legacy pseudo-label path and compare.

    ``on_epoch_start`` fires right after the trainer's own hook (where the
    refresh lives), while the encoder parameters — and therefore the cached
    embeddings — are unchanged.
    """

    def __init__(self):
        self.refreshes_checked = 0

    def on_epoch_start(self, trainer, epoch):
        embeddings = trainer.node_embeddings()
        split = trainer.dataset.split
        legacy = generate_pseudo_labels(
            embeddings,
            labeled_indices=split.train_nodes,
            labeled_internal_labels=trainer._train_internal,
            num_seen_classes=trainer.label_space.num_seen,
            num_clusters=trainer.label_space.num_total,
            rho=trainer.openima_config.rho,
            seed=trainer.config.seed,
            mini_batch=trainer.config.mini_batch_kmeans,
            kmeans_batch_size=trainer.config.kmeans_batch_size,
        )
        num_nodes = trainer.dataset.graph.num_nodes
        assert np.array_equal(trainer._pseudo_lookup,
                              legacy.label_lookup(num_nodes))
        assert np.array_equal(
            trainer.pseudo_labels.cluster_result.labels,
            legacy.cluster_result.labels,
        )
        self.refreshes_checked += 1


class TestExactRefreshParity:
    def test_openima_refresh_bit_identical_across_epochs(self, small_dataset):
        trainer = OpenIMATrainer(small_dataset, openima_config(max_epochs=4))
        spy = RefreshParityCallback()
        trainer.fit(callbacks=[spy])
        assert spy.refreshes_checked >= 3

    def test_openima_refresh_records_engine_outcome(self, small_dataset):
        trainer = OpenIMATrainer(small_dataset, openima_config(max_epochs=1))
        trainer.fit()
        outcome = trainer.pseudo_labels.clustering
        assert outcome is not None
        assert outcome.strategy == "exact"
        assert outcome.refitted

    @pytest.mark.parametrize("trainer_cls", [ORCATrainer, OpenWGLTrainer,
                                             OpenConTrainer])
    def test_predict_clustering_matches_legacy(self, small_dataset, trainer_cls):
        trainer = trainer_cls(small_dataset, fast_config(max_epochs=2, seed=0,
                                                         batch_size=128))
        trainer.fit()
        for _ in range(3):  # repeated predictions stay identical (stateless)
            result = trainer.predict()
            legacy = cluster_embeddings(
                trainer.node_embeddings(), trainer.label_space.num_total,
                seed=trainer.config.seed,
            )
            assert np.array_equal(result.cluster_result.labels, legacy.labels)
            assert np.array_equal(result.cluster_result.centers, legacy.centers)

    def test_openwgl_ood_clusters_match_legacy(self, small_dataset):
        from repro.clustering.kmeans import KMeans

        trainer = OpenWGLTrainer(small_dataset, fast_config(max_epochs=2, seed=0,
                                                            batch_size=128))
        trainer.fit()
        embeddings = trainer.node_embeddings()
        num_novel = trainer.label_space.num_novel
        # The engine-backed OOD post-clustering must reproduce the direct
        # n_init=1 K-Means it replaced for any candidate subset.
        subset = embeddings[::3]
        engine_labels = trainer.clustering_engine.cluster(
            subset, num_novel, seed=trainer.config.seed, n_init=1).labels
        legacy_labels = KMeans(num_novel, seed=trainer.config.seed,
                               n_init=1).fit_predict(subset)
        assert np.array_equal(engine_labels, legacy_labels)


class TestApproximateStrategiesEndToEnd:
    @pytest.mark.parametrize("strategy", ["minibatch", "online"])
    def test_refresh_nmi_against_exact(self, small_dataset, strategy):
        clustering = ClusteringConfig(strategy=strategy, sample_size=128,
                                      reassign_chunk_size=64)
        trainer = OpenIMATrainer(small_dataset,
                                 openima_config(max_epochs=2, clustering=clustering))
        trainer.fit()
        assert trainer.pseudo_labels.clustering.strategy == strategy
        embeddings = trainer.node_embeddings()
        exact = cluster_embeddings(embeddings, trainer.label_space.num_total,
                                   seed=trainer.config.seed)
        approx = trainer.predict().cluster_result
        assert normalized_mutual_information(approx.labels, exact.labels) >= 0.95

    def test_refresh_tolerance_skips_refit_within_epoch_budget(self, small_dataset):
        # A tolerance far above the per-epoch parameter drift downgrades
        # every refresh after the first to a reassign-only pass.
        clustering = ClusteringConfig(warm_start=True, refresh_tolerance=10**9)
        trainer = OpenIMATrainer(small_dataset,
                                 openima_config(max_epochs=4, clustering=clustering))
        trainer.fit()
        engine = trainer.clustering_engine
        assert engine.refresh_count >= 4
        assert engine.refit_count == 1
        assert trainer.pseudo_labels.clustering.refitted is False

    def test_evaluation_does_not_perturb_refresh_state(self, small_dataset):
        # predict/evaluate go through the stateless path: a run with
        # mid-training evaluation must produce the same pseudo-label
        # trajectory as one without.
        clustering = ClusteringConfig(strategy="online", sample_size=128)
        plain = OpenIMATrainer(small_dataset,
                               openima_config(max_epochs=3, clustering=clustering))
        plain.fit()

        evaluated = OpenIMATrainer(small_dataset,
                                   openima_config(max_epochs=3, clustering=clustering))

        class EvalEveryEpoch(Callback):
            def on_epoch_end(self, trainer, epoch, logs):
                trainer.evaluate()

        evaluated.fit(callbacks=[EvalEveryEpoch()])
        assert np.array_equal(plain._pseudo_lookup, evaluated._pseudo_lookup)

    def test_configure_clustering_swaps_engine_and_config(self, small_dataset):
        trainer = OpenIMATrainer(small_dataset, openima_config(max_epochs=1))
        trainer.fit()
        new = ClusteringConfig(strategy="minibatch", sample_size=64)
        trainer.configure_clustering(new)
        assert trainer.config.clustering == new
        assert trainer.openima_config.trainer.clustering == new
        assert trainer.clustering_engine.config is new
        result = trainer.predict()
        assert result.predictions.shape[0] == small_dataset.graph.num_nodes
