"""MetricsCallback: per-epoch loss/grad-norm gauges and epoch accounting."""

from __future__ import annotations

import math

from repro.baselines.two_stage import InfoNCETrainer
from repro.core.callbacks import Callback, MetricsCallback


class LogRecorder(Callback):
    def __init__(self):
        self.logs = []

    def on_epoch_end(self, trainer, epoch, logs):
        self.logs.append(dict(logs))


class TestMetricsCallback:
    def test_gauges_and_counters_after_fit(self, small_dataset,
                                           tiny_trainer_config):
        callback = MetricsCallback()
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        before = callback._EPOCHS.value(method=trainer.method_name)
        trainer.fit(callbacks=[callback])
        method = trainer.method_name
        after = callback._EPOCHS.value(method=method)
        assert after - before == tiny_trainer_config.max_epochs
        loss = callback._LOSS.value(method=method)
        assert math.isfinite(loss)
        assert loss == trainer.history.losses[-1]
        assert callback._GRAD_NORM.value(method=method) > 0.0

    def test_epoch_seconds_observed(self, small_dataset, tiny_trainer_config):
        callback = MetricsCallback()
        before = callback._EPOCH_SECONDS.count()
        InfoNCETrainer(small_dataset, tiny_trainer_config).fit(
            callbacks=[callback])
        assert (callback._EPOCH_SECONDS.count() - before
                == tiny_trainer_config.max_epochs)

    def test_grad_norm_published_into_logs(self, small_dataset,
                                           tiny_trainer_config):
        recorder = LogRecorder()
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        # Order matters: MetricsCallback runs first so the recorder sees
        # the grad_norm key it adds.
        trainer.fit(callbacks=[MetricsCallback(), recorder])
        assert all("grad_norm" in logs for logs in recorder.logs)
        assert all(logs["grad_norm"] > 0.0 for logs in recorder.logs)

    def test_grad_norm_none_when_no_grads(self, small_dataset,
                                          tiny_trainer_config):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        # Before any training step no parameter has a gradient.
        assert MetricsCallback.grad_norm(trainer) is None
