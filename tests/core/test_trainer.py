"""Tests for the shared GraphTrainer infrastructure."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines.two_stage import InfoNCETrainer
from repro.core.config import EncoderConfig, OptimizerConfig, TrainerConfig, fast_config
from repro.core.trainer import GraphTrainer, TrainingHistory


class TestTrainerConfig:
    def test_defaults_match_paper(self):
        config = TrainerConfig()
        assert config.encoder.kind == "gat"
        assert config.encoder.hidden_dim == 128
        assert config.encoder.num_heads == 8
        assert config.encoder.dropout == 0.5
        assert config.optimizer.weight_decay == 1e-4
        assert config.temperature == 0.7
        assert config.batch_size == 2048

    def test_with_updates(self):
        config = TrainerConfig().with_updates(max_epochs=3, seed=5)
        assert config.max_epochs == 3 and config.seed == 5
        assert TrainerConfig().max_epochs != 3 or TrainerConfig().seed != 5

    def test_fast_config(self):
        config = fast_config(max_epochs=4, encoder_kind="gcn")
        assert config.max_epochs == 4
        assert config.encoder.kind == "gcn"

    def test_nested_configs_immutable(self):
        config = TrainerConfig(encoder=EncoderConfig(kind="gcn"),
                               optimizer=OptimizerConfig(learning_rate=0.01))
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.max_epochs = 10


class TestTrainingHistory:
    def test_record_and_final_loss(self):
        history = TrainingHistory()
        assert history.final_loss is None
        history.record_loss(2.0)
        history.record_loss(1.5)
        assert history.final_loss == 1.5
        assert history.losses == [2.0, 1.5]


class TestGraphTrainer:
    def test_base_compute_loss_not_implemented(self, small_dataset, tiny_trainer_config):
        trainer = GraphTrainer(small_dataset, tiny_trainer_config)
        with pytest.raises(NotImplementedError):
            trainer.compute_loss(None, None, np.array([0]))

    def test_label_space_built_from_split(self, small_dataset, tiny_trainer_config):
        trainer = GraphTrainer(small_dataset, tiny_trainer_config)
        assert trainer.label_space.num_seen == small_dataset.split.num_seen
        assert trainer.label_space.num_novel == small_dataset.split.num_novel
        assert trainer.head.num_classes == trainer.label_space.num_total

    def test_num_novel_override(self, small_dataset, tiny_trainer_config):
        trainer = GraphTrainer(small_dataset, tiny_trainer_config, num_novel_classes=5)
        assert trainer.label_space.num_novel == 5

    def test_batch_manual_labels(self, small_dataset, tiny_trainer_config):
        trainer = GraphTrainer(small_dataset, tiny_trainer_config)
        train_nodes = small_dataset.split.train_nodes
        labels = trainer.batch_manual_labels(train_nodes)
        assert (labels >= 0).all()
        test_labels = trainer.batch_manual_labels(small_dataset.split.test_nodes[:5])
        assert (test_labels == -1).all()

    def test_fit_records_losses_and_predict_covers_all_nodes(
        self, small_dataset, tiny_trainer_config
    ):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        history = trainer.fit()
        assert len(history.losses) == tiny_trainer_config.max_epochs
        assert all(np.isfinite(history.losses))
        result = trainer.predict()
        assert result.predictions.shape[0] == small_dataset.graph.num_nodes

    def test_training_reduces_contrastive_loss(self, small_dataset):
        config = fast_config(max_epochs=6, encoder_kind="gcn", batch_size=160)
        trainer = InfoNCETrainer(small_dataset, config)
        history = trainer.fit()
        assert history.losses[-1] < history.losses[0]

    def test_evaluate_returns_valid_accuracy(self, small_dataset, tiny_trainer_config):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        trainer.fit()
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0
        assert 0.0 <= accuracy.seen <= 1.0
        assert 0.0 <= accuracy.novel <= 1.0

    def test_validation_accuracy_in_range(self, small_dataset, tiny_trainer_config):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        trainer.fit()
        assert 0.0 <= trainer.validation_accuracy() <= 1.0

    def test_eval_every_records_snapshots(self, small_dataset):
        config = fast_config(max_epochs=2, encoder_kind="gcn").with_updates(eval_every=1)
        trainer = InfoNCETrainer(small_dataset, config)
        history = trainer.fit()
        assert len(history.evaluations) == 2
        assert "all" in history.evaluations[0]

    def test_node_embeddings_shape(self, small_dataset, tiny_trainer_config):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        embeddings = trainer.node_embeddings()
        assert embeddings.shape == (
            small_dataset.graph.num_nodes, tiny_trainer_config.encoder.out_dim
        )

    def test_head_logits_shape(self, small_dataset, tiny_trainer_config):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        logits = trainer.head_logits()
        assert logits.shape == (
            small_dataset.graph.num_nodes, trainer.label_space.num_total
        )

    def test_trailing_remainder_folded_into_last_batch(self, small_dataset):
        # 160 nodes with batch_size 53 leaves a remainder of 1, which used to
        # be dropped silently — that node got zero gradient signal per epoch.
        config = fast_config(max_epochs=1, encoder_kind="gcn", batch_size=53)
        trainer = GraphTrainer(small_dataset, config)
        batches = list(trainer._iterate_batches())
        sizes = [batch.shape[0] for batch in batches]
        assert sizes == [53, 53, 54]
        covered = np.concatenate(batches)
        assert covered.shape[0] == small_dataset.graph.num_nodes
        np.testing.assert_array_equal(np.sort(covered),
                                      np.arange(small_dataset.graph.num_nodes))

    def test_every_batch_has_at_least_two_nodes(self, small_dataset):
        for batch_size in (2, 3, 7, 53, 159, 160, 1000):
            config = fast_config(max_epochs=1, encoder_kind="gcn",
                                 batch_size=batch_size)
            trainer = GraphTrainer(small_dataset, config)
            batches = list(trainer._iterate_batches())
            assert all(batch.shape[0] >= 2 for batch in batches)
            assert sum(batch.shape[0] for batch in batches) == 160

    def test_deterministic_training_given_seed(self, small_dataset):
        config = fast_config(max_epochs=2, encoder_kind="gcn", batch_size=64)
        trainer_a = InfoNCETrainer(small_dataset, config)
        trainer_b = InfoNCETrainer(small_dataset, config)
        history_a = trainer_a.fit()
        history_b = trainer_b.fit()
        np.testing.assert_allclose(history_a.losses, history_b.losses)
