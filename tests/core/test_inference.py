"""Tests for the two-stage inference procedure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inference import head_predict, two_stage_predict
from repro.core.labels import LabelSpace
from repro.datasets.splits import OpenWorldDataset, make_open_world_split
from repro.graphs.graph import Graph


def ideal_dataset(seed=0):
    """A dataset whose *features* are already perfectly clustered embeddings."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [12, 0], [0, 12], [12, 12]], dtype=float)
    features = np.vstack([rng.normal(c, 0.4, size=(40, 2)) for c in centers])
    labels = np.repeat(np.arange(4), 40)
    order = rng.permutation(160)
    features, labels = features[order], labels[order]
    graph = Graph(features=features, edge_index=np.zeros((2, 0), dtype=int), labels=labels,
                  name="ideal")
    split = make_open_world_split(graph, labels_per_class=10, seed=seed,
                                  seen_classes=np.array([0, 1]))
    return OpenWorldDataset(graph=graph, split=split, name="ideal")


class TestTwoStagePredict:
    def test_near_perfect_on_ideal_embeddings(self):
        dataset = ideal_dataset()
        result = two_stage_predict(dataset.graph.features, dataset, seed=0)
        test_nodes = dataset.split.test_nodes
        correct_seen = 0
        seen_total = 0
        for node in test_nodes:
            if dataset.labels[node] in dataset.split.seen_classes:
                seen_total += 1
                correct_seen += int(result.predictions[node] == dataset.labels[node])
        assert correct_seen / seen_total > 0.95

    def test_novel_predictions_use_fresh_ids(self):
        dataset = ideal_dataset()
        result = two_stage_predict(dataset.graph.features, dataset, seed=0)
        novel_nodes = dataset.split.test_nodes[
            np.isin(dataset.labels[dataset.split.test_nodes], dataset.split.novel_classes)
        ]
        novel_predictions = result.predictions[novel_nodes]
        seen = set(dataset.split.seen_classes.tolist())
        assert (np.array([p not in seen for p in novel_predictions])).mean() > 0.9

    def test_num_clusters_matches_label_space(self):
        dataset = ideal_dataset()
        result = two_stage_predict(dataset.graph.features, dataset, seed=0)
        assert result.cluster_result.centers.shape[0] == 4
        assert result.label_space.num_total == 4

    def test_override_num_novel_classes(self):
        dataset = ideal_dataset()
        result = two_stage_predict(dataset.graph.features, dataset, num_novel_classes=5, seed=0)
        assert result.cluster_result.centers.shape[0] == 7

    def test_invalid_num_novel_raises(self):
        dataset = ideal_dataset()
        with pytest.raises(ValueError):
            two_stage_predict(dataset.graph.features, dataset, num_novel_classes=0)

    def test_embedding_shape_mismatch_raises(self):
        dataset = ideal_dataset()
        with pytest.raises(ValueError):
            two_stage_predict(dataset.graph.features[:10], dataset)

    def test_test_predictions_helper(self):
        dataset = ideal_dataset()
        result = two_stage_predict(dataset.graph.features, dataset, seed=0)
        assert result.test_predictions(dataset).shape[0] == dataset.split.test_nodes.shape[0]

    def test_mini_batch_kmeans_path(self):
        dataset = ideal_dataset()
        result = two_stage_predict(dataset.graph.features, dataset, seed=0, mini_batch=True,
                                   kmeans_batch_size=32)
        assert result.predictions.shape[0] == dataset.graph.num_nodes


class TestHeadPredict:
    def test_argmax_and_label_space_translation(self):
        space = LabelSpace(seen_classes=np.array([2, 5]), num_novel=1)
        embeddings = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.6]])
        weight = np.array([[5.0, 0.0, 0.0], [0.0, 5.0, 0.0]])  # 2 features -> 3 classes
        predictions = head_predict(embeddings, weight, space)
        assert predictions[0] == 2   # internal 0 -> original 2
        assert predictions[1] == 5   # internal 1 -> original 5

    def test_bias_changes_prediction(self):
        space = LabelSpace(seen_classes=np.array([0, 1]), num_novel=0) \
            if False else LabelSpace(seen_classes=np.array([0, 1]), num_novel=1)
        embeddings = np.zeros((3, 2))
        weight = np.zeros((2, 3))
        bias = np.array([0.0, 0.0, 10.0])
        predictions = head_predict(embeddings, weight, space, head_bias=bias)
        # Internal index 2 is a novel id, mapped past the seen classes.
        assert (predictions >= 2).all()
