"""Unified method registry: completeness, metadata, and construction."""

from __future__ import annotations

import pytest

from repro.core.config import OpenIMAConfig
from repro.core.openima import OpenIMATrainer
from repro.core.registry import (
    METHODS,
    MethodSpec,
    available_methods,
    build_method,
    get_method,
)
from repro.core.trainer import GraphTrainer

#: OpenIMA plus the paper's eleven baselines.
ALL_METHODS = [
    "openima",
    "oodgat",
    "openwgl",
    "orca",
    "orca-zm",
    "simgcd",
    "openldn",
    "opencon",
    "opencon-two-stage",
    "infonce",
    "infonce+supcon",
    "infonce+supcon+ce",
]

END_TO_END = {
    "oodgat", "openwgl", "orca", "orca-zm", "simgcd", "openldn",
    "opencon", "opencon-two-stage",
}


class TestCompleteness:
    def test_all_twelve_methods_registered(self):
        assert set(available_methods()) == set(ALL_METHODS)
        assert len(available_methods()) == 12

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_every_method_constructible_by_name(self, name, small_dataset,
                                                tiny_trainer_config):
        trainer = build_method(name, small_dataset, tiny_trainer_config)
        assert isinstance(trainer, GraphTrainer)
        assert trainer._method_key == name

    def test_display_names_distinct(self):
        names = [get_method(m).display_name for m in ALL_METHODS]
        assert len(set(names)) == len(names)

    def test_case_insensitive_lookup(self):
        assert get_method("OpenIMA") is get_method("openima")
        assert "ORCA" in METHODS

    def test_unknown_method_raises_with_available(self):
        with pytest.raises(KeyError, match="available"):
            get_method("gcd")


class TestMetadata:
    def test_end_to_end_flags_match_paper(self):
        for name in ALL_METHODS:
            assert get_method(name).end_to_end == (name in END_TO_END), name

    def test_epoch_budgets(self):
        assert get_method("openima").default_epochs == 20
        assert get_method("orca").default_epochs == 50
        assert get_method("simgcd").default_epochs == 50
        assert get_method("openldn").default_epochs == 100
        assert get_method("infonce").default_epochs == 20

    def test_kind_string(self):
        assert get_method("openima").kind == "two-stage"
        assert get_method("orca").kind == "end-to-end"

    def test_openima_uses_custom_config_class(self):
        spec = get_method("openima")
        assert spec.config_cls is OpenIMAConfig
        assert spec.builder is not None

    def test_descriptions_present(self):
        for name in ALL_METHODS:
            assert get_method(name).description, name


class TestConstruction:
    def test_openima_without_special_casing(self, small_dataset, tiny_trainer_config):
        trainer = build_method("openima", small_dataset, tiny_trainer_config)
        assert isinstance(trainer, OpenIMATrainer)
        assert trainer.openima_config.trainer == tiny_trainer_config

    def test_openima_accepts_full_config(self, small_dataset, tiny_trainer_config):
        config = OpenIMAConfig(trainer=tiny_trainer_config, eta=3.0)
        trainer = build_method("openima", small_dataset, config)
        assert trainer.openima_config.eta == 3.0

    def test_openima_config_overrides(self, small_dataset, tiny_trainer_config):
        trainer = build_method("openima", small_dataset, tiny_trainer_config,
                               eta=20.0, rho=25.0)
        assert trainer.openima_config.eta == 20.0
        assert trainer.openima_config.rho == 25.0

    def test_baseline_kwargs_recorded_for_checkpointing(self, small_dataset,
                                                        tiny_trainer_config):
        trainer = build_method("orca", small_dataset, tiny_trainer_config,
                               margin_scale=0.5)
        assert trainer.margin_scale == 0.5
        assert trainer._method_kwargs == {"margin_scale": 0.5}

    def test_num_novel_override(self, small_dataset, tiny_trainer_config):
        for name in ("openima", "infonce"):
            trainer = build_method(name, small_dataset, tiny_trainer_config,
                                   num_novel_classes=7)
            assert trainer.label_space.num_novel == 7

    def test_duplicate_registration_rejected(self):
        spec = get_method("orca")
        with pytest.raises(ValueError, match="already registered"):
            METHODS.register(MethodSpec(name="orca", trainer_cls=spec.trainer_cls,
                                        display_name="dup"))

    def test_case_colliding_registration_rejected(self):
        # register() normalizes keys to lower-case, so a mixed-case duplicate
        # collides instead of creating an unreachable second spec.
        spec = get_method("orca")
        with pytest.raises(ValueError, match="already registered"):
            METHODS.register(MethodSpec(name="ORCA", trainer_cls=spec.trainer_cls,
                                        display_name="dup"))

    def test_wrong_config_type_rejected(self, small_dataset):
        with pytest.raises(TypeError, match="TrainerConfig"):
            build_method("orca", small_dataset, OpenIMAConfig())
