"""Tests for the OpenIMA trainer (losses, pseudo labels, inference, ablations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import OpenIMAConfig, fast_config
from repro.core.openima import OpenIMATrainer, train_openima


@pytest.fixture()
def quick_config():
    return OpenIMAConfig(trainer=fast_config(max_epochs=2, encoder_kind="gcn", batch_size=128))


class TestOpenIMATrainer:
    def test_fit_and_evaluate(self, small_dataset, quick_config):
        trainer = OpenIMATrainer(small_dataset, quick_config)
        history = trainer.fit()
        assert len(history.losses) == 2
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0

    def test_train_openima_helper(self, small_dataset, quick_config):
        trainer = train_openima(small_dataset, quick_config)
        assert trainer.history.final_loss is not None

    def test_pseudo_labels_refreshed(self, small_dataset, quick_config):
        trainer = OpenIMATrainer(small_dataset, quick_config)
        assert trainer.pseudo_labels is None
        trainer.fit()
        assert trainer.pseudo_labels is not None
        assert trainer.pseudo_labels.num_selected > 0

    def test_pseudo_labels_disabled(self, small_dataset):
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=1, encoder_kind="gcn", batch_size=128),
            use_pseudo_labels=False,
        )
        trainer = OpenIMATrainer(small_dataset, config)
        trainer.fit()
        assert trainer.pseudo_labels is None
        # Without pseudo labels every unlabeled node keeps group id -1.
        group_ids = trainer.batch_group_ids(small_dataset.split.test_nodes[:8])
        assert (group_ids == -1).all()

    def test_group_ids_combine_manual_and_pseudo(self, small_dataset, quick_config):
        trainer = OpenIMATrainer(small_dataset, quick_config)
        trainer.refresh_pseudo_labels()
        batch = np.concatenate([
            small_dataset.split.train_nodes[:4], small_dataset.split.test_nodes[:4]
        ])
        group_ids = trainer.batch_group_ids(batch)
        assert group_ids.shape[0] == 2 * batch.shape[0]
        # Manual labels of train nodes are seen-class internal ids.
        assert (group_ids[:4] >= 0).all()
        assert (group_ids[:4] < trainer.label_space.num_seen).all()
        # The two halves (views) share the same ids.
        np.testing.assert_array_equal(group_ids[: batch.shape[0]], group_ids[batch.shape[0]:])

    def test_all_loss_terms_disabled_raises(self, small_dataset):
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=1, encoder_kind="gcn"),
            use_embedding_bpcl=False,
            use_logit_bpcl=False,
            use_cross_entropy=False,
        )
        trainer = OpenIMATrainer(small_dataset, config)
        with pytest.raises(ValueError):
            trainer.fit()


class TestAblationVariants:
    @pytest.mark.parametrize(
        "use_emb, use_logit, use_ce",
        [
            (True, False, False),
            (False, True, False),
            (False, False, True),
            (True, True, True),
        ],
    )
    def test_each_variant_trains(self, small_dataset, use_emb, use_logit, use_ce):
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=1, encoder_kind="gcn", batch_size=128),
            use_embedding_bpcl=use_emb,
            use_logit_bpcl=use_logit,
            use_cross_entropy=use_ce,
        )
        trainer = OpenIMATrainer(small_dataset, config)
        history = trainer.fit()
        assert np.isfinite(history.losses).all()

    def test_eta_scales_ce_contribution(self, small_dataset):
        base = OpenIMAConfig(trainer=fast_config(max_epochs=1, encoder_kind="gcn"))
        small_eta = OpenIMATrainer(small_dataset, base.with_updates(eta=0.0))
        large_eta = OpenIMATrainer(small_dataset, base.with_updates(eta=10.0))
        # Compute one loss on the same batch from freshly initialized models.
        batch = np.concatenate([
            small_dataset.split.train_nodes[:8], small_dataset.split.test_nodes[:8]
        ])
        for trainer in (small_eta, large_eta):
            trainer.refresh_pseudo_labels()
            trainer.encoder.eval()  # remove dropout randomness
        view = small_eta.encoder(small_dataset.graph).gather_rows(batch)
        loss_small = small_eta.compute_loss(view, view, batch).item()
        view = large_eta.encoder(small_dataset.graph).gather_rows(batch)
        loss_large = large_eta.compute_loss(view, view, batch).item()
        assert loss_large > loss_small


class TestLargeScaleRefinements:
    def test_head_prediction_path(self, small_dataset):
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=1, encoder_kind="gcn", batch_size=128),
            large_scale=True,
        )
        trainer = OpenIMATrainer(small_dataset, config)
        trainer.fit()
        result = trainer.predict()
        assert result.predictions.shape[0] == small_dataset.graph.num_nodes
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0

    def test_pairwise_loss_included(self, small_dataset):
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=1, encoder_kind="gcn", batch_size=128),
            large_scale=True,
            pairwise_loss_weight=1.0,
        )
        trainer = OpenIMATrainer(small_dataset, config)
        history = trainer.fit()
        assert np.isfinite(history.losses).all()


class TestOpenIMAConfig:
    def test_defaults_match_paper(self):
        config = OpenIMAConfig()
        assert config.eta == 1.0
        assert config.rho == 75.0
        assert config.trainer.temperature == 0.7
        assert config.use_pseudo_labels

    def test_with_updates(self):
        config = OpenIMAConfig().with_updates(eta=20.0, rho=25.0)
        assert config.eta == 20.0 and config.rho == 25.0


class TestPseudoLabelWarmup:
    def test_no_pseudo_labels_during_warmup(self, small_dataset):
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=2, encoder_kind="gcn", batch_size=128),
            pseudo_label_warmup=5,
        )
        trainer = OpenIMATrainer(small_dataset, config)
        trainer.fit()
        assert trainer.pseudo_labels is None

    def test_refresh_starts_after_warmup(self, small_dataset):
        config = OpenIMAConfig(
            trainer=fast_config(max_epochs=3, encoder_kind="gcn", batch_size=128),
            pseudo_label_warmup=2,
        )
        trainer = OpenIMATrainer(small_dataset, config)
        trainer.fit()
        assert trainer.pseudo_labels is not None
