"""Neighborhood-sampled training: khop/full parity, determinism, resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import OpenWorldClassifier
from repro.baselines.two_stage import InfoNCETrainer
from repro.core.config import OpenIMAConfig, SamplingConfig, fast_config
from repro.core.openima import OpenIMATrainer


def sampled_config(mode, max_epochs=3, batch_size=48, dropout=0.0, seed=0,
                   encoder_kind="gcn", backend="sparse", fanouts=None,
                   sampling_seed=None):
    sampling = SamplingConfig(mode=mode, fanouts=fanouts, seed=sampling_seed)
    config = fast_config(max_epochs=max_epochs, seed=seed,
                         encoder_kind=encoder_kind, batch_size=batch_size,
                         backend=backend, sampling=sampling)
    return config.with_updates(encoder=config.encoder.with_updates(dropout=dropout))


class TestKhopFullParity:
    """With dropout disabled, khop mode is bit-compatible with full mode."""

    @pytest.mark.parametrize("encoder_kind", ["gcn", "gat"])
    def test_losses_match_to_1e8(self, small_dataset, encoder_kind):
        full = InfoNCETrainer(small_dataset, sampled_config("full", encoder_kind=encoder_kind))
        khop = InfoNCETrainer(small_dataset, sampled_config("khop", encoder_kind=encoder_kind))
        history_full = full.fit()
        history_khop = khop.fit()
        np.testing.assert_allclose(history_khop.losses, history_full.losses,
                                   atol=1e-8, rtol=0)
        np.testing.assert_allclose(khop.node_embeddings(), full.node_embeddings(),
                                   atol=1e-8, rtol=0)

    def test_losses_match_with_dense_backend(self, small_dataset):
        full = InfoNCETrainer(small_dataset, sampled_config("full", backend="dense"))
        khop = InfoNCETrainer(small_dataset, sampled_config("khop", backend="dense"))
        np.testing.assert_allclose(khop.fit().losses, full.fit().losses,
                                   atol=1e-8, rtol=0)

    def test_openima_losses_match(self, small_dataset):
        def trainer(mode):
            return OpenIMATrainer(
                small_dataset,
                OpenIMAConfig(trainer=sampled_config(mode, max_epochs=2)),
            )

        np.testing.assert_allclose(trainer("khop").fit().losses,
                                   trainer("full").fit().losses,
                                   atol=1e-8, rtol=0)

    def test_khop_rejects_num_hops_below_encoder_depth(self, small_dataset):
        config = fast_config(sampling=SamplingConfig(mode="khop", num_hops=1))
        with pytest.raises(ValueError, match="message-passing layers"):
            InfoNCETrainer(small_dataset, config)
        # "sampled" mode is approximate by contract, so a shallow expansion
        # is allowed there.
        InfoNCETrainer(small_dataset, fast_config(
            sampling=SamplingConfig(mode="sampled", num_hops=1)))

    def test_khop_with_dropout_still_trains(self, small_dataset):
        trainer = InfoNCETrainer(small_dataset, sampled_config("khop", dropout=0.3))
        history = trainer.fit()
        assert len(history.losses) == 3
        assert all(np.isfinite(history.losses))


class TestSampledMode:
    def test_deterministic_under_trainer_seed(self, small_dataset):
        runs = [
            InfoNCETrainer(small_dataset, sampled_config("sampled", fanouts=[4, 4])).fit().losses
            for _ in range(2)
        ]
        np.testing.assert_allclose(runs[0], runs[1], atol=0, rtol=0)

    def test_deterministic_under_dedicated_seed(self, small_dataset):
        runs = [
            InfoNCETrainer(
                small_dataset,
                sampled_config("sampled", fanouts=[4, 4], sampling_seed=123),
            ).fit().losses
            for _ in range(2)
        ]
        np.testing.assert_allclose(runs[0], runs[1], atol=0, rtol=0)

    def test_default_fanouts_filled_in(self):
        config = SamplingConfig(mode="sampled")
        assert config.fanouts == [10, 10]

    def test_trains_to_finite_losses(self, small_dataset):
        trainer = InfoNCETrainer(small_dataset,
                                 sampled_config("sampled", dropout=0.3, fanouts=[3, 3]))
        assert all(np.isfinite(trainer.fit().losses))


class TestRngStateFormats:
    def test_state_round_trip(self, small_dataset):
        config = sampled_config("sampled", sampling_seed=7, fanouts=[3, 3])
        trainer = InfoNCETrainer(small_dataset, config)
        trainer.fit()  # advance both generators past their seeded state
        state = trainer.rng_state()
        assert "trainer" in state and "sampling" in state
        other = InfoNCETrainer(small_dataset, config)
        assert other.rng_state() != state
        other.set_rng_state(state)
        assert other.rng_state() == state

    def test_accepts_legacy_bare_numpy_state(self, small_dataset):
        trainer = InfoNCETrainer(small_dataset, sampled_config("full"))
        legacy = np.random.default_rng(99).bit_generator.state
        trainer.set_rng_state(legacy)  # pre-sampling checkpoint layout
        assert trainer.rng.bit_generator.state["state"] == legacy["state"]


class TestCheckpointResumeParity:
    def test_khop_resume_matches_uninterrupted(self, tmp_path):
        config = sampled_config("khop", max_epochs=4, dropout=0.3, batch_size=96)
        dataset_options = {"scale": 0.15, "seed": 0}

        uninterrupted = OpenWorldClassifier("infonce", config=config)
        uninterrupted.fit("citeseer", **dataset_options)

        resumed = OpenWorldClassifier("infonce", config=config)
        resumed.fit("citeseer", max_epochs=2, **dataset_options)
        resumed.save(tmp_path / "ckpt")
        restored = OpenWorldClassifier.load(tmp_path / "ckpt")
        restored.fit(max_epochs=4)

        np.testing.assert_allclose(restored.history.losses,
                                   uninterrupted.history.losses, atol=0, rtol=0)
        np.testing.assert_array_equal(restored.predict(), uninterrupted.predict())

    def test_manifest_records_sampling_config(self, tmp_path):
        config = sampled_config("sampled", max_epochs=1, fanouts=[5, 5],
                                sampling_seed=3)
        classifier = OpenWorldClassifier("infonce", config=config)
        classifier.fit("citeseer", scale=0.15, seed=0)
        classifier.save(tmp_path / "ckpt")
        restored = OpenWorldClassifier.load(tmp_path / "ckpt")
        sampling = restored.trainer_.config.sampling
        assert sampling.mode == "sampled"
        assert sampling.fanouts == [5, 5]
        assert sampling.seed == 3
        assert restored.trainer_._sampler is not None
