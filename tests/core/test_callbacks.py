"""Callback hooks in GraphTrainer.fit: logging, early stopping, checkpoints."""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest

from repro.baselines.two_stage import InfoNCETrainer
from repro.core.callbacks import (
    Callback,
    EarlyStopping,
    EvaluationCallback,
    LossLogger,
    PeriodicCheckpoint,
)
from repro.core.openima import OpenIMATrainer


class RecordingCallback(Callback):
    def __init__(self):
        self.events = []

    def on_fit_start(self, trainer):
        self.events.append("fit_start")

    def on_epoch_start(self, trainer, epoch):
        self.events.append(("epoch_start", epoch))

    def on_epoch_end(self, trainer, epoch, logs):
        self.events.append(("epoch_end", epoch, logs["loss"]))

    def on_fit_end(self, trainer, history):
        self.events.append("fit_end")


class TestHookDispatch:
    def test_hooks_fire_in_order(self, small_dataset, tiny_trainer_config):
        recorder = RecordingCallback()
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        trainer.fit(callbacks=[recorder])
        assert recorder.events[0] == "fit_start"
        assert recorder.events[1] == ("epoch_start", 0)
        assert recorder.events[-1] == "fit_end"
        epoch_ends = [e for e in recorder.events if e[0] == "epoch_end"]
        assert len(epoch_ends) == tiny_trainer_config.max_epochs
        assert all(np.isfinite(e[2]) for e in epoch_ends)

    def test_logs_match_history(self, small_dataset, tiny_trainer_config):
        recorder = RecordingCallback()
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        trainer.fit(callbacks=[recorder])
        losses = [e[2] for e in recorder.events if e[0] == "epoch_end"]
        assert losses == trainer.history.losses

    def test_max_epochs_override(self, small_dataset, tiny_trainer_config):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        trainer.fit(max_epochs=1)
        assert trainer.epochs_trained == 1
        trainer.fit()  # continues to the config target
        assert trainer.epochs_trained == tiny_trainer_config.max_epochs


class TestLossLogger:
    def test_logs_every_epoch(self, small_dataset, tiny_trainer_config):
        lines = []
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        trainer.fit(callbacks=[LossLogger(print_fn=lines.append)])
        assert len(lines) == tiny_trainer_config.max_epochs
        assert "epoch 1" in lines[0] and "loss" in lines[0]

    def test_invalid_every_rejected(self):
        with pytest.raises(ValueError):
            LossLogger(every=0)


class TestEarlyStopping:
    def test_stops_when_no_improvement_possible(self, small_dataset, tiny_trainer_config):
        config = tiny_trainer_config.with_updates(max_epochs=6)
        trainer = InfoNCETrainer(small_dataset, config)
        stopper = EarlyStopping(monitor="loss", patience=2, min_delta=1e9)
        trainer.fit(callbacks=[stopper])
        # First epoch sets best (inf -> loss improves), then every epoch is
        # "no improvement" because of the huge min_delta.
        assert trainer.epochs_trained == 3
        assert stopper.stopped_epoch == 2

    def test_does_not_stop_when_improving(self, small_dataset, tiny_trainer_config):
        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        stopper = EarlyStopping(monitor="loss", patience=5, min_delta=0.0)
        trainer.fit(callbacks=[stopper])
        assert trainer.epochs_trained == tiny_trainer_config.max_epochs

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(mode="sideways")


class TestEvaluationCallback:
    def test_eval_every_config_installs_callback(self, small_dataset, tiny_trainer_config):
        config = tiny_trainer_config.with_updates(eval_every=1)
        trainer = InfoNCETrainer(small_dataset, config)
        trainer.fit()
        assert len(trainer.history.evaluations) == config.max_epochs
        assert {"epoch", "all", "seen", "novel"} <= set(trainer.history.evaluations[0])

    def test_auto_installed_eval_runs_before_user_callbacks(self, small_dataset,
                                                            tiny_trainer_config):
        seen = []

        class GrabAccuracy(Callback):
            def on_epoch_end(self, trainer, epoch, logs):
                seen.append(logs.get("accuracy"))

        config = tiny_trainer_config.with_updates(eval_every=1)
        trainer = InfoNCETrainer(small_dataset, config)
        trainer.fit(callbacks=[GrabAccuracy()])
        # The eval_every-installed callback is dispatched first, so user
        # callbacks (e.g. EarlyStopping(monitor="accuracy")) see the value.
        assert len(seen) == config.max_epochs
        assert all(value is not None for value in seen)

    def test_explicit_callback_records_and_extends_logs(self, small_dataset,
                                                        tiny_trainer_config):
        recorder = RecordingCallback()

        class GrabAccuracy(Callback):
            seen: ClassVar[list] = []

            def on_epoch_end(self, trainer, epoch, logs):
                if "accuracy" in logs:
                    self.seen.append(logs["accuracy"])

        trainer = InfoNCETrainer(small_dataset, tiny_trainer_config)
        trainer.fit(callbacks=[recorder, EvaluationCallback(every=2), GrabAccuracy()])
        assert len(trainer.history.evaluations) == tiny_trainer_config.max_epochs // 2
        assert len(GrabAccuracy.seen) == len(trainer.history.evaluations)


class TestPeriodicCheckpoint:
    def test_writes_resumable_checkpoints(self, tmp_path, small_dataset,
                                          tiny_trainer_config):
        from repro.api.checkpoint import load_trainer_checkpoint
        from repro.core.registry import build_method

        trainer = build_method("openima", small_dataset, tiny_trainer_config)
        checkpointer = PeriodicCheckpoint(str(tmp_path / "epoch-{epoch}"), every=1)
        trainer.fit(callbacks=[checkpointer])
        assert checkpointer.saved_paths == [
            str(tmp_path / f"epoch-{e + 1}") for e in range(tiny_trainer_config.max_epochs)
        ]
        restored, manifest = load_trainer_checkpoint(
            checkpointer.saved_paths[-1], dataset=small_dataset)
        assert isinstance(restored, OpenIMATrainer)
        assert restored.epochs_trained == tiny_trainer_config.max_epochs
        assert np.array_equal(restored.predict().predictions,
                              trainer.predict().predictions)

    def test_rolling_checkpoint_overwrites(self, tmp_path, small_dataset,
                                           tiny_trainer_config):
        from repro.core.registry import build_method

        trainer = build_method("infonce", small_dataset, tiny_trainer_config)
        checkpointer = PeriodicCheckpoint(str(tmp_path / "latest"), every=1)
        trainer.fit(callbacks=[checkpointer])
        assert (tmp_path / "latest" / "manifest.json").exists()
        assert len(set(checkpointer.saved_paths)) == 1
