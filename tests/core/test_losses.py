"""Tests for the OpenIMA training objectives and baseline auxiliary losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.losses import (
    _positive_mask,
    bpcl_loss,
    concat_views,
    confidence_pseudo_label_loss,
    cross_entropy_loss,
    entropy_regularization,
    info_nce_loss,
    margin_cross_entropy_loss,
    pairwise_similarity_loss,
    self_distillation_loss,
    supervised_contrastive_loss,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def normalized_features(array):
    return F.l2_normalize(Tensor(np.asarray(array, dtype=float)))


class TestPositiveMask:
    def test_view_pairs_always_positive(self):
        mask = _positive_mask(np.array([-1, -1, -1, -1]))
        assert mask[0, 2] and mask[2, 0]
        assert mask[1, 3] and mask[3, 1]
        assert not mask[0, 1]
        assert not mask.diagonal().any()

    def test_shared_group_ids_are_positive(self):
        # Nodes 0 and 1 share class 5; their four views are mutual positives.
        mask = _positive_mask(np.array([5, 5, -1, 5, 5, -1]))
        assert mask[0, 1] and mask[0, 3] and mask[0, 4]
        assert not mask[0, 2] and not mask[0, 5]
        assert mask[2, 5] and mask[5, 2]  # unlabeled node's own views

    def test_negative_ids_never_group(self):
        mask = _positive_mask(np.array([-1, -1, -1, -1, -1, -1]))
        # Only the view pairs are positives.
        assert mask.sum() == 6  # 3 nodes x 2 directions

    def test_odd_length_raises(self):
        with pytest.raises(ValueError):
            _positive_mask(np.array([0, 1, 2]))


class TestSupervisedContrastiveLoss:
    def test_matches_manual_infonce_for_two_nodes(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(4, 3))
        features = normalized_features(raw)
        tau = 0.7
        loss = supervised_contrastive_loss(features, np.array([-1, -1, -1, -1]), tau).item()

        z = features.data
        sims = z @ z.T / tau
        manual_terms = []
        positives = {0: 2, 1: 3, 2: 0, 3: 1}
        for i in range(4):
            denom = sum(np.exp(sims[i, k]) for k in range(4) if k != i)
            manual_terms.append(-np.log(np.exp(sims[i, positives[i]]) / denom))
        assert loss == pytest.approx(np.mean(manual_terms), abs=1e-8)

    def test_aligned_positives_give_lower_loss(self):
        rng = np.random.default_rng(1)
        # Two classes: class 0 points near +e1, class 1 near -e1.
        direction = np.array([1.0, 0.0, 0.0])
        class0 = direction + rng.normal(0, 0.05, size=(4, 3))
        class1 = -direction + rng.normal(0, 0.05, size=(4, 3))
        batch = np.vstack([class0[:2], class1[:2], class0[2:], class1[2:]])
        features = normalized_features(batch)
        correct_groups = np.array([0, 0, 1, 1, 0, 0, 1, 1])
        wrong_groups = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        loss_correct = supervised_contrastive_loss(features, correct_groups, 0.5).item()
        loss_wrong = supervised_contrastive_loss(features, wrong_groups, 0.5).item()
        assert loss_correct < loss_wrong

    def test_gradient_flows(self):
        rng = np.random.default_rng(2)
        raw = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        features = F.l2_normalize(raw)
        loss = supervised_contrastive_loss(features, np.array([0, 1, -1, 0, 1, -1]), 0.7)
        loss.backward()
        assert raw.grad is not None
        assert np.isfinite(raw.grad).all()

    def test_invalid_temperature(self):
        features = normalized_features(np.eye(4))
        with pytest.raises(ValueError):
            supervised_contrastive_loss(features, np.array([-1] * 4), 0.0)

    def test_info_nce_wrapper(self):
        rng = np.random.default_rng(3)
        features = normalized_features(rng.normal(size=(4, 3)))
        assert info_nce_loss(features, 0.7).item() == pytest.approx(
            supervised_contrastive_loss(features, np.array([-1] * 4), 0.7).item()
        )


class TestCrossEntropyVariants:
    def test_margin_zero_equals_plain_ce(self):
        rng = np.random.default_rng(4)
        logits = Tensor(rng.normal(size=(5, 3)))
        targets = np.array([0, 1, 2, 1, 0])
        assert margin_cross_entropy_loss(logits, targets, 0.0).item() == pytest.approx(
            cross_entropy_loss(logits, targets).item()
        )

    def test_positive_margin_increases_loss(self):
        rng = np.random.default_rng(5)
        logits = Tensor(rng.normal(size=(5, 3)))
        targets = np.array([0, 1, 2, 1, 0])
        plain = margin_cross_entropy_loss(logits, targets, 0.0).item()
        with_margin = margin_cross_entropy_loss(logits, targets, 2.0).item()
        assert with_margin > plain


class TestAuxiliaryLosses:
    def test_pairwise_similarity_identical_rows_gives_low_loss(self):
        probabilities = F.softmax(Tensor(np.array([[10.0, 0.0], [10.0, 0.0]])), axis=-1)
        loss = pairwise_similarity_loss(probabilities, np.array([1, 0])).item()
        assert loss < 0.01

    def test_pairwise_similarity_disjoint_rows_high_loss(self):
        probabilities = F.softmax(Tensor(np.array([[10.0, 0.0], [0.0, 10.0]])), axis=-1)
        loss = pairwise_similarity_loss(probabilities, np.array([1, 0])).item()
        assert loss > 2.0

    def test_entropy_regularization_prefers_uniform_mean(self):
        uniform = Tensor(np.full((4, 4), 0.25))
        collapsed = Tensor(np.tile([0.97, 0.01, 0.01, 0.01], (4, 1)))
        assert entropy_regularization(uniform).item() < entropy_regularization(collapsed).item()

    def test_self_distillation_perfect_match_low_loss(self):
        logits = Tensor(np.array([[8.0, -8.0], [-8.0, 8.0]]))
        teacher = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert self_distillation_loss(logits, teacher, temperature=1.0).item() < 0.01

    def test_self_distillation_sharpening(self):
        logits = Tensor(np.zeros((1, 2)))
        teacher = np.array([[0.6, 0.4]])
        soft = self_distillation_loss(logits, teacher, temperature=1.0).item()
        sharp = self_distillation_loss(logits, teacher, temperature=0.1).item()
        # Both reduce to log(2) because the student is uniform, but the
        # sharpened target is valid and finite.
        assert np.isfinite(soft) and np.isfinite(sharp)

    def test_confidence_pseudo_label_loss_masks_rows(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 5.0], [1.0, 1.0]]))
        pseudo = np.array([0, 1, 0])
        none_selected = confidence_pseudo_label_loss(logits, pseudo, np.zeros(3, dtype=bool))
        assert none_selected.item() == 0.0
        some = confidence_pseudo_label_loss(logits, pseudo, np.array([True, True, False]))
        assert some.item() < 0.1


class TestBPCL:
    def test_combines_both_levels(self):
        rng = np.random.default_rng(6)
        embeddings = normalized_features(rng.normal(size=(6, 4)))
        logits = normalized_features(rng.normal(size=(6, 3)))
        groups = np.array([0, -1, 1, 0, -1, 1])
        both = bpcl_loss(embeddings, logits, groups, 0.7).item()
        emb_only = bpcl_loss(embeddings, None, groups, 0.7, use_logit_level=False).item()
        logit_only = bpcl_loss(embeddings, logits, groups, 0.7, use_embedding_level=False).item()
        assert both == pytest.approx(emb_only + logit_only, abs=1e-8)

    def test_logit_level_requires_logits(self):
        embeddings = normalized_features(np.eye(4))
        with pytest.raises(ValueError):
            bpcl_loss(embeddings, None, np.array([-1] * 4), 0.7, use_logit_level=True,
                      use_embedding_level=False)

    def test_both_levels_disabled_raises(self):
        embeddings = normalized_features(np.eye(4))
        with pytest.raises(ValueError):
            bpcl_loss(embeddings, None, np.array([-1] * 4), 0.7,
                      use_embedding_level=False, use_logit_level=False)

    def test_concat_views_layout(self):
        view1 = Tensor(np.ones((2, 3)))
        view2 = Tensor(np.zeros((2, 3)))
        stacked = concat_views(view1, view2)
        assert stacked.shape == (4, 3)
        np.testing.assert_array_equal(stacked.data[:2], 1.0)
        np.testing.assert_array_equal(stacked.data[2:], 0.0)
