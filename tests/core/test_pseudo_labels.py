"""Tests for bias-reduced pseudo-label generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.kmeans import KMeans
from repro.core.pseudo_labels import generate_pseudo_labels


def clustered_embeddings(seed=0):
    """Four well-separated blobs: classes 0/1 seen, 2/3 novel."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [10, 0], [0, 10], [10, 10]], dtype=float)
    embeddings = np.vstack([rng.normal(c, 0.4, size=(30, 2)) for c in centers])
    labels = np.repeat([0, 1, 2, 3], 30)
    return embeddings, labels


class TestGeneratePseudoLabels:
    def setup_method(self):
        self.embeddings, self.labels = clustered_embeddings()
        # Labeled nodes: 10 from each seen class (internal ids 0 and 1).
        self.labeled_indices = np.concatenate([
            np.where(self.labels == 0)[0][:10],
            np.where(self.labels == 1)[0][:10],
        ])
        self.labeled_internal = np.array([0] * 10 + [1] * 10)

    def generate(self, rho=75.0, **kwargs):
        return generate_pseudo_labels(
            self.embeddings,
            labeled_indices=self.labeled_indices,
            labeled_internal_labels=self.labeled_internal,
            num_seen_classes=2,
            num_clusters=4,
            rho=rho,
            seed=0,
            **kwargs,
        )

    def test_pseudo_labels_only_on_unlabeled_nodes(self):
        pseudo = self.generate()
        assert np.intersect1d(pseudo.node_indices, self.labeled_indices).size == 0

    def test_seen_class_pseudo_labels_are_aligned(self):
        pseudo = self.generate(rho=100.0)
        lookup = pseudo.label_lookup(self.embeddings.shape[0])
        # Unlabeled nodes of true class 0 should receive internal label 0.
        unlabeled_class0 = np.setdiff1d(np.where(self.labels == 0)[0], self.labeled_indices)
        assigned = lookup[unlabeled_class0]
        assigned = assigned[assigned >= 0]
        assert assigned.size > 0
        assert (assigned == 0).mean() > 0.9

    def test_novel_clusters_get_ids_beyond_seen(self):
        pseudo = self.generate(rho=100.0)
        lookup = pseudo.label_lookup(self.embeddings.shape[0])
        novel_nodes = np.where(self.labels >= 2)[0]
        assigned = lookup[novel_nodes]
        assigned = assigned[assigned >= 0]
        assert assigned.size > 0
        assert (assigned >= 2).mean() > 0.9

    def test_rho_controls_selection_size(self):
        small = self.generate(rho=25.0)
        large = self.generate(rho=100.0)
        assert small.num_selected < large.num_selected
        # rho=100 keeps every unlabeled node.
        assert large.num_selected == self.embeddings.shape[0] - self.labeled_indices.shape[0]

    def test_selected_nodes_are_most_confident(self):
        pseudo = self.generate(rho=50.0)
        selected_confidence = pseudo.confidence[pseudo.node_indices]
        unselected = np.setdiff1d(
            np.setdiff1d(np.arange(self.embeddings.shape[0]), self.labeled_indices),
            pseudo.node_indices,
        )
        if unselected.size:
            # Worst selected node is at least as confident as the median unselected one.
            assert selected_confidence.min() >= np.median(pseudo.confidence[unselected]) - 1e-9

    def test_invalid_rho_raises(self):
        with pytest.raises(ValueError):
            self.generate(rho=0.0)
        with pytest.raises(ValueError):
            self.generate(rho=150.0)

    def test_reuse_precomputed_clustering(self):
        clusters = KMeans(4, seed=0).fit(self.embeddings)
        pseudo = self.generate(cluster_result=clusters)
        assert pseudo.cluster_result is clusters

    def test_label_lookup_dense_format(self):
        pseudo = self.generate(rho=50.0)
        lookup = pseudo.label_lookup(self.embeddings.shape[0])
        assert lookup.shape[0] == self.embeddings.shape[0]
        assert (lookup[pseudo.node_indices] == pseudo.labels).all()
        unselected_mask = np.ones(self.embeddings.shape[0], dtype=bool)
        unselected_mask[pseudo.node_indices] = False
        assert (lookup[unselected_mask] == -1).all()

    def test_mini_batch_path(self):
        pseudo = self.generate(mini_batch=True, kmeans_batch_size=32)
        assert pseudo.num_selected > 0
