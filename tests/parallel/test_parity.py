"""Bitwise serial/threads/processes parity for every parallel hot path.

The executor's contract is that parallelism changes wall-clock, never
results: chunked clustering assignment, layer-wise inference, sharded
embeddings, and the experiment grid must return bit-identical outputs for
every backend, worker count, and chunk size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.engine import ClusteringEngine
from repro.core.config import ClusteringConfig, ParallelConfig
from repro.experiments.runner import ExperimentConfig, _run_cells
from repro.gnn.gcn import GCNEncoder
from repro.graphs import partition_graph, sharded_embeddings
from repro.inference.layerwise import LayerwiseInference
from repro.parallel import ParallelExecutor

POOL_BACKENDS = ("threads", "processes")


def executor_for(backend: str, n_jobs: int = 2) -> ParallelExecutor:
    return ParallelExecutor(ParallelConfig(backend=backend, n_jobs=n_jobs))


@pytest.fixture(scope="module")
def embeddings():
    rng = np.random.default_rng(11)
    return rng.normal(size=(3000, 24))


@pytest.fixture(scope="module")
def centers():
    rng = np.random.default_rng(12)
    return rng.normal(size=(6, 24))


class TestClusteringAssignmentParity:
    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_reassign_bitwise_matches_serial(self, embeddings, centers,
                                             backend, n_jobs):
        config = ClusteringConfig(reassign_chunk_size=512)
        serial = ClusteringEngine(config)._reassign(embeddings, centers)
        engine = ClusteringEngine(
            config, parallel=executor_for(backend, n_jobs))
        result = engine._reassign(embeddings, centers)
        assert np.array_equal(serial.labels, result.labels)
        assert serial.inertia == result.inertia
        assert np.array_equal(serial.centers, result.centers)

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_minibatch_cluster_bitwise_matches_serial(self, embeddings,
                                                      backend):
        config = ClusteringConfig(strategy="minibatch", sample_size=512,
                                  reassign_chunk_size=512)
        serial = ClusteringEngine(config, seed=5).cluster(embeddings, 6)
        parallel = ClusteringEngine(
            config, seed=5, parallel=executor_for(backend)).cluster(
                embeddings, 6)
        assert np.array_equal(serial.labels, parallel.labels)
        assert np.array_equal(serial.centers, parallel.centers)
        assert serial.inertia == parallel.inertia

    def test_parity_independent_of_chunk_count(self, embeddings, centers):
        # Different executor chunk_size must not change the result: the
        # dispatched ranges are always the serial pass's own blocks.
        config = ClusteringConfig(reassign_chunk_size=512)
        serial = ClusteringEngine(config)._reassign(embeddings, centers)
        for chunk_size in (1, 2, 5):
            engine = ClusteringEngine(config, parallel=ParallelExecutor(
                ParallelConfig(backend="threads", n_jobs=2,
                               chunk_size=chunk_size)))
            result = engine._reassign(embeddings, centers)
            assert np.array_equal(serial.labels, result.labels)
            assert serial.inertia == result.inertia


class TestLayerwiseInferenceParity:
    @pytest.fixture(scope="class")
    def graph(self, small_graph):
        return small_graph

    @pytest.fixture(scope="class")
    def encoder(self, graph):
        return GCNEncoder(graph.num_features, hidden_dim=32, out_dim=16,
                          rng=np.random.default_rng(3))

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    @pytest.mark.parametrize("chunk_size", [17, 64])
    def test_chunked_layers_bitwise_match_serial(self, graph, encoder,
                                                 backend, chunk_size):
        serial = LayerwiseInference(chunk_size=chunk_size).run(encoder, graph)
        parallel = LayerwiseInference(
            chunk_size=chunk_size,
            parallel=executor_for(backend)).run(encoder, graph)
        assert np.array_equal(serial, parallel)

    def test_matches_full_embed_to_tolerance(self, graph, encoder):
        full = encoder.embed(graph)
        chunked = LayerwiseInference(
            chunk_size=33, parallel=executor_for("threads")).run(
                encoder, graph)
        np.testing.assert_allclose(chunked, full, atol=1e-8)


class TestShardedEmbeddingParity:
    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_sharded_embeddings_bitwise_across_backends(self, small_graph,
                                                        backend):
        encoder = GCNEncoder(small_graph.num_features, hidden_dim=16,
                             out_dim=8, rng=np.random.default_rng(4))
        partition = partition_graph(small_graph, 3)
        serial = sharded_embeddings(encoder, small_graph, partition,
                                    chunk_size=64)
        parallel = sharded_embeddings(encoder, small_graph, partition,
                                      chunk_size=64,
                                      parallel=executor_for(backend))
        assert np.array_equal(serial, parallel)
        np.testing.assert_allclose(serial, encoder.embed(small_graph),
                                   atol=1e-8)


GRID_EXPERIMENT = dict(scale=0.1, max_epochs=1, batch_size=128,
                       encoder_kind="gcn", seeds=(0, 1))
GRID_CELLS = [(method, dataset, seed)
              for method in ("infonce", "openima")
              for dataset in ("citeseer", "amazon-photos")
              for seed in (0, 1)]


class TestExperimentGridParity:
    """The 2 x 2 x 2 method x dataset x seed grid is backend-invariant."""

    @pytest.fixture(scope="class")
    def serial_runs(self):
        experiment = ExperimentConfig(**GRID_EXPERIMENT)
        return _run_cells(GRID_CELLS, experiment)

    @pytest.mark.parametrize("backend", POOL_BACKENDS)
    def test_grid_cells_bitwise_match_serial(self, serial_runs, backend):
        experiment = ExperimentConfig(**GRID_EXPERIMENT, n_jobs=2,
                                      parallel_backend=backend)
        runs = _run_cells(GRID_CELLS, experiment)
        assert [run.as_dict() for run in runs] == [
            run.as_dict() for run in serial_runs]
