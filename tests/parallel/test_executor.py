"""ParallelExecutor mechanics: chunking, ordered reduction, RNG streams,
closure rejection, crash fallback, interrupt cleanup, and obs wiring."""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.config import ParallelConfig
from repro.obs import EVENTS, REGISTRY
from repro.parallel import ParallelExecutor, resolve_n_jobs
from repro.parallel.executor import (
    _clear_shared_payload,
    _resolve_payload,
    _set_shared_payload,
)

BACKENDS = ("serial", "threads", "processes")


def executor_for(backend: str, n_jobs: int = 2,
                 chunk_size: int = 0) -> ParallelExecutor:
    return ParallelExecutor(ParallelConfig(
        backend=backend, n_jobs=n_jobs, chunk_size=chunk_size))


# ----------------------------------------------------------------------
# Module-level workers (lint rule R9: these must pickle to process pools)
# ----------------------------------------------------------------------
def double_worker(item, payload, rng):
    return item * 2


def payload_sum_worker(item, payload, rng):
    return item + int(payload["offset"])


def rng_draw_worker(item, payload, rng):
    return float(rng.random())


def rng_is_none_worker(item, payload, rng):
    return rng is None


def slow_then_fast_worker(item, payload, rng):
    # Earlier items sleep longer, so an unordered reduction would return
    # the later items first.
    time.sleep(0.05 if item < 2 else 0.0)
    return item


def crash_in_child_worker(item, payload, rng):
    # Hard-kill only when running in a pool worker process; the serial
    # fallback re-runs this in the parent and succeeds.
    if os.getpid() != payload:
        os._exit(1)
    return item


def interrupt_worker(item, payload, rng):
    if item == 1:
        raise KeyboardInterrupt
    return item


class TestMapBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("chunk_size", [0, 1, 3])
    def test_map_preserves_item_order(self, backend, chunk_size):
        executor = executor_for(backend, n_jobs=2, chunk_size=chunk_size)
        items = list(range(7))
        assert executor.map(double_worker, items) == [i * 2 for i in items]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_payload_reaches_every_item(self, backend):
        executor = executor_for(backend)
        results = executor.map(payload_sum_worker, [1, 2, 3],
                               payload={"offset": 10})
        assert results == [11, 12, 13]

    def test_empty_items_returns_empty_list(self):
        assert executor_for("processes").map(double_worker, []) == []

    def test_single_item_runs_inline(self):
        executor = executor_for("processes")
        assert executor.map(double_worker, [21]) == [42]

    def test_ordered_reduction_beats_scheduling(self):
        executor = executor_for("threads", n_jobs=4, chunk_size=1)
        items = list(range(6))
        assert executor.map(slow_then_fast_worker, items) == items

    def test_resolve_n_jobs_zero_means_all_cores(self):
        assert resolve_n_jobs(0) >= 1
        assert resolve_n_jobs(3) == 3

    def test_is_serial_for_serial_backend_and_single_job(self):
        assert executor_for("serial", n_jobs=4).is_serial
        assert executor_for("threads", n_jobs=1).is_serial
        assert not executor_for("threads", n_jobs=2).is_serial


class TestRngStreams:
    def test_no_seed_passes_none_rng(self):
        executor = executor_for("threads")
        assert executor.map(rng_is_none_worker, [0, 1, 2]) == [True] * 3

    def test_streams_are_a_function_of_seed_and_index_only(self):
        # The draws must be identical across backend, n_jobs, AND
        # chunk_size: streams are spawned per item, never per chunk.
        reference = executor_for("serial").map(
            rng_draw_worker, range(8), seed=123)
        assert len(set(reference)) == 8
        for backend in BACKENDS:
            for n_jobs in (1, 2, 3):
                for chunk_size in (0, 1, 3):
                    executor = executor_for(backend, n_jobs, chunk_size)
                    assert executor.map(rng_draw_worker, range(8),
                                        seed=123) == reference

    def test_different_seeds_differ(self):
        executor = executor_for("serial")
        a = executor.map(rng_draw_worker, range(4), seed=1)
        b = executor.map(rng_draw_worker, range(4), seed=2)
        assert a != b


class TestClosureRejection:
    def test_processes_backend_rejects_nested_worker(self):
        executor = executor_for("processes")

        def closure(item, payload, rng):  # noqa: R9 demo
            return item

        with pytest.raises(ValueError, match="module level"):
            executor.map(closure, [1, 2])

    def test_processes_backend_rejects_lambda(self):
        executor = executor_for("processes")
        with pytest.raises(ValueError, match="R9"):
            executor.map(lambda item, payload, rng: item, [1, 2])

    def test_threads_backend_accepts_closures(self):
        executor = executor_for("threads")
        bound = 10

        def closure(item, payload, rng):
            return item + bound

        assert executor.map(closure, [1, 2]) == [11, 12]


class TestCrashFallback:
    def test_worker_crash_falls_back_to_serial(self):
        executor = executor_for("processes", n_jobs=2, chunk_size=1)
        fallbacks = REGISTRY.get("repro_parallel_serial_fallbacks_total")
        before = fallbacks.value(reason="BrokenProcessPool")
        items = list(range(4))
        results = executor.map(crash_in_child_worker, items,
                               payload=os.getpid(), label="test.crash")
        # Partials are discarded; the serial rerun returns the exact answer.
        assert results == items
        assert executor.fallback_count == 1
        assert fallbacks.value(reason="BrokenProcessPool") == before + 1
        warnings = [event for event in EVENTS.snapshot(level="warning")
                    if event["source"] == "parallel"
                    and event.get("site") == "test.crash"]
        assert warnings, "serial fallback must be logged to the event ring"
        assert "fell back to serial" in warnings[-1]["message"]

    def test_no_orphan_processes_after_crash_fallback(self):
        executor = executor_for("processes", n_jobs=2, chunk_size=1)
        executor.map(crash_in_child_worker, list(range(4)),
                     payload=os.getpid())
        deadline = time.time() + 5.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


class TestInterrupt:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_keyboard_interrupt_cleans_up_and_reraises(self, backend):
        executor = executor_for(backend, n_jobs=2, chunk_size=1)
        with pytest.raises(KeyboardInterrupt):
            executor.map(interrupt_worker, list(range(6)),
                         label="test.interrupt")
        deadline = time.time() + 5.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []
        warnings = [event for event in EVENTS.snapshot(level="warning")
                    if event["source"] == "parallel"
                    and event.get("site") == "test.interrupt"]
        assert warnings and "interrupted" in warnings[-1]["message"]

    def test_interrupt_does_not_count_as_fallback(self):
        executor = executor_for("threads", n_jobs=2, chunk_size=1)
        with pytest.raises(KeyboardInterrupt):
            executor.map(interrupt_worker, list(range(6)))
        assert executor.fallback_count == 0


class TestPayloadGlobal:
    def test_token_mismatch_raises(self):
        _set_shared_payload({"x": 1}, 7)
        try:
            assert _resolve_payload(7) == {"x": 1}
            with pytest.raises(RuntimeError, match="token mismatch"):
                _resolve_payload(8)
        finally:
            _clear_shared_payload()

    def test_payload_global_cleared_after_map(self):
        from repro.parallel import executor as executor_module

        executor = executor_for("processes", n_jobs=2, chunk_size=1)
        assert executor.map(double_worker, [1, 2, 3]) == [2, 4, 6]
        assert executor_module._SHARED_PAYLOAD is None
        assert executor_module._PAYLOAD_TOKEN == 0


class TestObservability:
    def test_worker_gauge_and_chunk_histogram(self):
        executor = executor_for("threads", n_jobs=3, chunk_size=1)
        histogram = REGISTRY.get("repro_parallel_chunk_seconds")
        before = histogram.count(site="test.obs")
        executor.map(double_worker, list(range(6)), label="test.obs")
        gauge = REGISTRY.get("repro_parallel_workers")
        assert gauge.value(site="test.obs") == 3
        # One duration observation per dispatched chunk (chunk_size=1).
        assert histogram.count(site="test.obs") == before + 6

    def test_serial_map_reports_one_worker(self):
        executor = executor_for("serial")
        executor.map(double_worker, [1, 2], label="test.obs.serial")
        gauge = REGISTRY.get("repro_parallel_workers")
        assert gauge.value(site="test.obs.serial") == 1
