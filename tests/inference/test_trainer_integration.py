"""The inference engine threaded through GraphTrainer, checkpoints, and the
facade: one embedding pass per evaluation burst, explicit pass-through, and
InferenceConfig persistence (including legacy manifests without the section).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import OpenWorldClassifier
from repro.api.checkpoint import load_trainer_checkpoint, save_trainer_checkpoint
from repro.baselines.two_stage import InfoNCETrainer
from repro.core.callbacks import Callback
from repro.core.config import InferenceConfig, OpenIMAConfig, fast_config
from repro.core.openima import OpenIMATrainer


def make_config(max_epochs: int = 2, eval_every: int = 0, **inference_kwargs):
    config = fast_config(max_epochs=max_epochs, seed=0, encoder_kind="gcn",
                         batch_size=128, eval_every=eval_every)
    if inference_kwargs:
        config = config.with_updates(inference=InferenceConfig(**inference_kwargs))
    return config


class TestForwardCounting:
    def test_one_forward_per_evaluation_epoch(self, small_dataset):
        """Eval callback + validation accuracy + predict share one forward."""

        class ExtraConsumers(Callback):
            def on_epoch_end(self, trainer, epoch, logs):
                # Everything an eval epoch might ask for, on top of the
                # EvaluationCallback that already ran this epoch.
                trainer.validation_accuracy()
                trainer.predict()
                trainer.evaluate()
                trainer.node_embeddings()

        trainer = InfoNCETrainer(small_dataset, make_config(eval_every=1))
        trainer.fit(callbacks=[ExtraConsumers()])
        # Exactly one encoder forward per epoch-end evaluation burst.
        assert trainer.inference_engine.forward_count == trainer.epochs_trained
        assert trainer.inference_engine.cache_hits > 0

    def test_openima_refresh_eval_predict_share_one_forward(self, small_dataset):
        trainer = OpenIMATrainer(
            small_dataset, OpenIMAConfig(trainer=make_config(max_epochs=1)))
        trainer.fit()
        baseline = trainer.inference_engine.forward_count
        # No parameter updates from here on: refresh, evaluation, validation
        # accuracy, prediction, and raw embeddings all reuse one pass.
        trainer.refresh_pseudo_labels()
        trainer.evaluate()
        trainer.validation_accuracy()
        trainer.predict()
        trainer.node_embeddings()
        assert trainer.inference_engine.forward_count == baseline + 1

    def test_training_step_invalidates_cache(self, small_dataset):
        trainer = InfoNCETrainer(small_dataset, make_config(max_epochs=1))
        trainer.node_embeddings()
        trainer.fit()  # optimizer steps bump the parameter version
        before = trainer.inference_engine.forward_count
        trainer.node_embeddings()
        assert trainer.inference_engine.forward_count == before + 1

    def test_explicit_embeddings_pass_through_without_cache(self, small_dataset):
        trainer = InfoNCETrainer(small_dataset, make_config(cache=False))
        trainer.fit()
        embeddings = trainer.node_embeddings()
        forwards = trainer.inference_engine.forward_count
        trainer.evaluate(embeddings=embeddings)
        trainer.validation_accuracy(embeddings=embeddings)
        trainer.predict(embeddings=embeddings)
        assert trainer.inference_engine.forward_count == forwards

    def test_eval_epoch_logs_inference_stats(self, small_dataset):
        captured = {}

        class Capture(Callback):
            def on_epoch_end(self, trainer, epoch, logs):
                captured.update(logs.get("inference", {}))

        trainer = InfoNCETrainer(small_dataset, make_config(max_epochs=1,
                                                            eval_every=1))
        trainer.fit(callbacks=[Capture()])
        assert captured["forwards"] == 1


class TestLayerwiseTrainer:
    def test_layerwise_mode_matches_full_embeddings(self, small_dataset):
        trainer = InfoNCETrainer(small_dataset, make_config(max_epochs=1))
        trainer.fit()
        full = np.array(trainer.node_embeddings())
        trainer.configure_inference(InferenceConfig(mode="layerwise", chunk_size=37))
        layerwise = trainer.node_embeddings()
        np.testing.assert_allclose(layerwise, full, rtol=0.0, atol=1e-8)

    def test_configure_inference_updates_config(self, small_dataset):
        trainer = InfoNCETrainer(small_dataset, make_config())
        trainer.configure_inference(InferenceConfig(mode="layerwise"))
        assert trainer.config.inference.mode == "layerwise"
        assert trainer.inference_engine.config.mode == "layerwise"

    def test_configure_inference_syncs_openima_config(self, small_dataset):
        trainer = OpenIMATrainer(
            small_dataset, OpenIMAConfig(trainer=make_config()))
        trainer.configure_inference(InferenceConfig(mode="layerwise"))
        assert trainer.full_config.trainer.inference.mode == "layerwise"


class TestCheckpointPersistence:
    def test_manifest_records_inference_config(self, small_dataset, tmp_path):
        trainer = InfoNCETrainer(
            small_dataset,
            make_config(max_epochs=1, mode="layerwise", chunk_size=77, cache=False),
        )
        trainer.fit()
        save_trainer_checkpoint(trainer, tmp_path / "ckpt")
        manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
        assert manifest["config"]["inference"] == {
            "mode": "layerwise", "chunk_size": 77, "cache": False,
            "auto_threshold": 32768, "partial_refresh": True,
            "partial_threshold": 0.5,
        }
        restored, _ = load_trainer_checkpoint(tmp_path / "ckpt",
                                              dataset=small_dataset)
        assert restored.config.inference == trainer.config.inference
        assert restored.inference_engine.config.mode == "layerwise"

    def test_legacy_manifest_without_inference_section_loads(
            self, small_dataset, tmp_path):
        trainer = InfoNCETrainer(small_dataset, make_config(max_epochs=1))
        trainer.fit()
        path = save_trainer_checkpoint(trainer, tmp_path / "legacy")
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["config"]["inference"]  # pre-inference-era checkpoint
        manifest_path.write_text(json.dumps(manifest, indent=2))

        restored, _ = load_trainer_checkpoint(path, dataset=small_dataset)
        assert restored.config.inference == InferenceConfig()
        np.testing.assert_allclose(restored.node_embeddings(),
                                   trainer.node_embeddings(),
                                   rtol=0.0, atol=1e-12)


class TestClassifierFacade:
    def test_embed_predict_evaluate_share_one_forward(self, small_dataset):
        clf = OpenWorldClassifier("infonce", config=make_config(max_epochs=1))
        clf.fit(small_dataset)
        baseline = clf.inference_engine.forward_count
        clf.embed()
        clf.predict()
        clf.evaluate()
        assert clf.inference_engine.forward_count == baseline + 1

    def test_configure_inference_accepts_dict(self, small_dataset):
        clf = OpenWorldClassifier("infonce", config=make_config(max_epochs=1))
        clf.fit(small_dataset)
        full = np.array(clf.embed())
        clf.configure_inference({"mode": "layerwise", "chunk_size": 19})
        assert clf.config.inference.mode == "layerwise"
        np.testing.assert_allclose(clf.embed(), full, rtol=0.0, atol=1e-8)

    def test_configure_inference_rejects_unknown_keys(self, small_dataset):
        clf = OpenWorldClassifier("infonce", config=make_config(max_epochs=1))
        clf.fit(small_dataset)
        with pytest.raises(ValueError, match="unknown"):
            clf.configure_inference({"mode": "layerwise", "chunks": 4})
