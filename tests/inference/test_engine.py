"""InferenceEngine: mode policy, caching behavior, and config validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import InferenceConfig, TrainerConfig
from repro.gnn import GATEncoder, GCNEncoder
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges
from repro.inference import InferenceEngine
from repro.nn.optim import Adam


@pytest.fixture(scope="module")
def graph() -> Graph:
    rng = np.random.default_rng(11)
    src = rng.integers(40, size=120)
    dst = rng.integers(40, size=120)
    return Graph(features=rng.normal(size=(40, 8)),
                 edge_index=symmetrize_edges(np.vstack([src, dst])))


@pytest.fixture()
def encoder() -> GCNEncoder:
    return GCNEncoder(8, hidden_dim=6, out_dim=4, dropout=0.0,
                      rng=np.random.default_rng(0))


class TestConfig:
    def test_defaults(self):
        config = InferenceConfig()
        assert config.mode == "auto"
        assert config.cache is True

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="inference mode"):
            InferenceConfig(mode="chunky")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            InferenceConfig(chunk_size=0)

    def test_round_trip_inside_trainer_config(self):
        config = TrainerConfig(
            inference=InferenceConfig(mode="layerwise", chunk_size=123, cache=False))
        restored = TrainerConfig.from_dict(config.to_dict())
        assert restored.inference == config.inference

    def test_trainer_config_without_inference_section_uses_defaults(self):
        """Legacy manifests predate the inference section and must load."""
        data = TrainerConfig().to_dict()
        del data["inference"]
        assert TrainerConfig.from_dict(data).inference == InferenceConfig()


class TestModePolicy:
    def test_explicit_modes(self, encoder, graph):
        assert InferenceEngine(InferenceConfig(mode="full")).resolve_mode(
            encoder, graph) == "full"
        assert InferenceEngine(InferenceConfig(mode="layerwise")).resolve_mode(
            encoder, graph) == "layerwise"

    def test_auto_switches_on_graph_size(self, encoder, graph):
        small = InferenceEngine(InferenceConfig(mode="auto", auto_threshold=1000))
        large = InferenceEngine(InferenceConfig(mode="auto", auto_threshold=10))
        assert small.resolve_mode(encoder, graph) == "full"
        assert large.resolve_mode(encoder, graph) == "layerwise"

    def test_auto_falls_back_without_layerwise_plan(self, graph):
        class PlanlessEncoder:
            def embed(self, graph):
                return np.zeros((graph.num_nodes, 2))

        engine = InferenceEngine(InferenceConfig(mode="auto", auto_threshold=1))
        assert engine.resolve_mode(PlanlessEncoder(), graph) == "full"


class TestEmbeddings:
    @pytest.mark.parametrize("mode", ["full", "layerwise"])
    @pytest.mark.parametrize("encoder_kind", ["gcn", "gat"])
    def test_matches_embed(self, graph, mode, encoder_kind):
        if encoder_kind == "gcn":
            enc = GCNEncoder(8, hidden_dim=6, out_dim=4, dropout=0.0,
                             rng=np.random.default_rng(0))
        else:
            enc = GATEncoder(8, hidden_dim=6, out_dim=4, num_heads=2,
                             dropout=0.0, rng=np.random.default_rng(0))
        engine = InferenceEngine(InferenceConfig(mode=mode, chunk_size=7))
        np.testing.assert_allclose(engine.embeddings(enc, graph),
                                   enc.embed(graph), rtol=0.0, atol=1e-8)

    def test_repeated_calls_use_cache(self, encoder, graph):
        engine = InferenceEngine(InferenceConfig(mode="full"))
        first = engine.embeddings(encoder, graph)
        second = engine.embeddings(encoder, graph)
        assert first is second
        assert engine.forward_count == 1
        assert engine.cache_hits == 1

    def test_parameter_update_forces_recompute(self, encoder, graph):
        engine = InferenceEngine(InferenceConfig(mode="full"))
        first = engine.embeddings(encoder, graph)
        out = encoder(graph)
        (out * out).sum().backward()
        Adam(encoder.parameters(), lr=0.5).step()
        second = engine.embeddings(encoder, graph)
        assert engine.forward_count == 2
        assert np.abs(np.asarray(first) - np.asarray(second)).max() > 0

    def test_cache_disabled_recomputes_every_call(self, encoder, graph):
        engine = InferenceEngine(InferenceConfig(mode="full", cache=False))
        engine.embeddings(encoder, graph)
        engine.embeddings(encoder, graph)
        assert engine.forward_count == 2
        assert engine.cache is None

    def test_invalidate_drops_entry(self, encoder, graph):
        engine = InferenceEngine()
        engine.embeddings(encoder, graph)
        engine.invalidate()
        engine.embeddings(encoder, graph)
        assert engine.forward_count == 2

    def test_stats_counters(self, encoder, graph):
        engine = InferenceEngine()
        engine.embeddings(encoder, graph)
        engine.embeddings(encoder, graph)
        assert engine.stats() == {
            "forwards": 1, "cache_hits": 1, "cache_misses": 1,
            "partial_refreshes": 0, "full_refreshes": 0}
