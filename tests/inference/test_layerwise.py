"""Layer-wise inference parity: chunked numpy evaluation vs ``encoder.embed``.

The acceptance bar is 1e-8 agreement for GCN and GAT on both backends,
including chunk sizes that do not divide the node count, ``chunk_size=1``,
and ``chunk_size > N``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import GATEncoder, GCNEncoder
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges
from repro.inference import LayerwiseInference

NUM_NODES = 97  # deliberately prime so no aligned chunk size divides it
NUM_FEATURES = 12

# Odd sizes, a lone-row chunk, an exact fit, and chunk > N.
CHUNK_SIZES = (1, 7, 64, NUM_NODES, NUM_NODES + 13)


@pytest.fixture(scope="module")
def graph() -> Graph:
    rng = np.random.default_rng(3)
    src = rng.integers(NUM_NODES, size=320)
    dst = rng.integers(NUM_NODES, size=320)
    return Graph(
        features=rng.normal(size=(NUM_NODES, NUM_FEATURES)),
        edge_index=symmetrize_edges(np.vstack([src, dst])),
        name="layerwise-parity",
    )


def build_encoder(kind: str, backend: str):
    if kind == "gcn":
        encoder = GCNEncoder(NUM_FEATURES, hidden_dim=10, out_dim=6, dropout=0.4,
                             backend=backend, rng=np.random.default_rng(1))
    else:
        encoder = GATEncoder(NUM_FEATURES, hidden_dim=8, out_dim=6, num_heads=4,
                             dropout=0.4, backend=backend, rng=np.random.default_rng(2))
    # Perturb every parameter so zero-initialized biases cannot mask a
    # missing term (a trained GCN bias is propagated, not simply added).
    rng = np.random.default_rng(9)
    for param in encoder.parameters():
        param.data = param.data + rng.normal(scale=0.2, size=param.data.shape)
    return encoder


@pytest.mark.parametrize("kind", ["gcn", "gat"])
@pytest.mark.parametrize("backend", ["sparse", "dense"])
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_layerwise_matches_full_embed(graph, kind, backend, chunk_size):
    encoder = build_encoder(kind, backend)
    full = encoder.embed(graph)
    layerwise = LayerwiseInference(chunk_size=chunk_size).run(encoder, graph)
    np.testing.assert_allclose(layerwise, full, rtol=0.0, atol=1e-8)


@pytest.mark.parametrize("kind", ["gcn", "gat"])
def test_layerwise_ignores_training_mode_dropout(graph, kind):
    """Layer-wise inference is deterministic even on a train()-mode encoder."""
    encoder = build_encoder(kind, "sparse")
    encoder.train()
    layerwise = LayerwiseInference(chunk_size=13).run(encoder, graph)
    np.testing.assert_allclose(layerwise, encoder.embed(graph),
                               rtol=0.0, atol=1e-8)


def test_isolated_node_matches_full(graph):
    """Nodes without incoming edges take the same zero/self-loop path."""
    features = np.random.default_rng(5).normal(size=(30, NUM_FEATURES))
    edges = np.array([[0, 1, 2, 5], [1, 2, 0, 6]])  # nodes 7..29 isolated
    isolated = Graph(features=features, edge_index=symmetrize_edges(edges))
    for kind in ("gcn", "gat"):
        encoder = build_encoder(kind, "sparse")
        layerwise = LayerwiseInference(chunk_size=4).run(encoder, isolated)
        np.testing.assert_allclose(layerwise, encoder.embed(isolated),
                                   rtol=0.0, atol=1e-8)


def test_invalid_chunk_size_rejected():
    with pytest.raises(ValueError, match="chunk_size"):
        LayerwiseInference(chunk_size=0)


def test_encoder_without_plan_rejected(graph):
    class PlanlessEncoder:
        pass

    with pytest.raises(TypeError, match="layerwise_plan"):
        LayerwiseInference().run(PlanlessEncoder(), graph)
