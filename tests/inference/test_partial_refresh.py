"""Partial embedding refresh after graph deltas: parity, fallbacks, safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import InferenceConfig
from repro.gnn.gat import GATEncoder
from repro.gnn.gcn import GCNEncoder
from repro.graphs import GraphDelta
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges
from repro.inference.engine import InferenceEngine
from repro.streaming import DynamicGraph

NUM_FEATURES = 8


def make_graph(num_nodes=150, avg_degree=6, seed=0) -> Graph:
    rng = np.random.default_rng(seed)
    num_edges = num_nodes * avg_degree // 2
    edges = np.vstack([rng.integers(num_nodes, size=num_edges),
                       rng.integers(num_nodes, size=num_edges)])
    return Graph(
        features=rng.normal(size=(num_nodes, NUM_FEATURES)),
        edge_index=symmetrize_edges(edges),
        labels=rng.integers(3, size=num_nodes),
        name="partial",
    )


def make_delta(graph: Graph, num_new=2, num_edges=3, seed=0) -> GraphDelta:
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    total = n + num_new
    anchors = np.vstack([np.arange(n, total), rng.integers(n, size=num_new)])
    extra = np.vstack([rng.integers(total, size=num_edges),
                       rng.integers(total, size=num_edges)])
    return GraphDelta.undirected(
        add_features=rng.normal(size=(num_new, NUM_FEATURES)),
        add_edges=np.hstack([anchors, extra]),
        add_labels=rng.integers(3, size=num_new),
    )


def make_encoder(kind: str, backend: str, seed=0):
    rng = np.random.default_rng(seed)
    if kind == "gcn":
        return GCNEncoder(NUM_FEATURES, hidden_dim=16, out_dim=8,
                          dropout=0.0, backend=backend, rng=rng)
    return GATEncoder(NUM_FEATURES, hidden_dim=16, out_dim=8, num_heads=2,
                      dropout=0.0, backend=backend, rng=rng)


def make_engine(**overrides) -> InferenceEngine:
    defaults = dict(mode="full", partial_refresh=True, partial_threshold=1.0)
    defaults.update(overrides)
    return InferenceEngine(InferenceConfig(**defaults))


class TestParity:
    """Partial refresh must be indistinguishable from a full recompute."""

    @pytest.mark.parametrize("kind", ["gcn", "gat"])
    @pytest.mark.parametrize("backend", ["sparse", "dense"])
    def test_matches_full_recompute(self, kind, backend):
        graph = make_graph()
        encoder = make_encoder(kind, backend)
        engine = make_engine()
        dynamic = DynamicGraph(graph, num_hops=encoder.num_message_passing_layers)
        engine.embeddings(encoder, graph)  # warm the cache

        for seed in range(3):  # several consecutive deltas, each patched
            delta = make_delta(graph, seed=seed)
            reference_graph = graph.copy()
            reference_graph.apply_delta(delta)
            expected = encoder.embed(reference_graph)

            report = dynamic.apply(delta)
            patched = engine.refresh_after_delta(encoder, graph, report)
            np.testing.assert_allclose(patched, expected, atol=1e-8)
        assert engine.partial_refresh_count == 3
        assert engine.full_refresh_count == 0
        # Warm-up was the only monolithic pass over the whole graph.
        assert engine.forward_count == 1

    def test_unaffected_rows_bit_identical(self):
        graph = make_graph(seed=3)
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine()
        before = engine.embeddings(encoder, graph).copy()
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(make_delta(graph, seed=5))
        patched = engine.refresh_after_delta(encoder, graph, report)
        untouched = np.setdiff1d(np.arange(before.shape[0]), report.affected)
        assert np.array_equal(patched[untouched], before[untouched])


class TestFallbacks:
    def test_threshold_forces_full_recompute(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine(partial_threshold=0.001)
        engine.embeddings(encoder, graph)
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(make_delta(graph))
        result = engine.refresh_after_delta(encoder, graph, report)
        assert engine.full_refresh_count == 1
        assert engine.partial_refresh_count == 0
        np.testing.assert_allclose(result, encoder.embed(graph), atol=1e-8)

    def test_partial_refresh_disabled_by_config(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine(partial_refresh=False)
        engine.embeddings(encoder, graph)
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(make_delta(graph))
        engine.refresh_after_delta(encoder, graph, report)
        assert engine.partial_refresh_count == 0
        assert engine.forward_count == 2

    def test_no_cache_falls_back_to_full(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine(cache=False)
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(make_delta(graph))
        result = engine.refresh_after_delta(encoder, graph, report)
        np.testing.assert_allclose(result, encoder.embed(graph), atol=1e-8)

    def test_stale_report_falls_back(self):
        """A report taken before a later delta no longer bounds the change."""
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine()
        engine.embeddings(encoder, graph)
        dynamic = DynamicGraph(graph, num_hops=2)
        old_report = dynamic.apply(make_delta(graph, seed=0))
        dynamic.apply(make_delta(graph, seed=1))  # graph moved on
        result = engine.refresh_after_delta(encoder, graph, old_report)
        assert engine.full_refresh_count == 1
        np.testing.assert_allclose(result, encoder.embed(graph), atol=1e-8)

    def test_parameter_update_invalidates_patch_base(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine()
        engine.embeddings(encoder, graph)
        encoder.load_state_dict(encoder.state_dict())  # bumps param version
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(make_delta(graph))
        result = engine.refresh_after_delta(encoder, graph, report)
        assert engine.full_refresh_count == 1
        np.testing.assert_allclose(result, encoder.embed(graph), atol=1e-8)

    def test_zero_affected_delta_rekeys_without_forward(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine()
        cached = engine.embeddings(encoder, graph)
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(GraphDelta())
        result = engine.refresh_after_delta(encoder, graph, report)
        assert result is cached  # re-keyed, not recomputed
        assert engine.forward_count == 1
        assert engine.partial_refresh_count == 1
        # And the re-keyed entry now serves plain lookups again.
        assert engine.embeddings(encoder, graph) is cached

    def test_encoder_deeper_than_report_raises(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")  # 2 message-passing layers
        engine = make_engine()
        dynamic = DynamicGraph(graph, num_hops=1)
        report = dynamic.apply(make_delta(graph))
        with pytest.raises(ValueError, match="num_hops >= 2"):
            engine.refresh_after_delta(encoder, graph, report)


class TestStaleEntry:
    def test_returns_previous_version_entry(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine()
        cached = engine.embeddings(encoder, graph)
        misses_before = engine.cache.misses
        graph.apply_delta(GraphDelta())  # bump version; lookup would miss
        stale = engine.cache.stale_entry(encoder, graph)
        assert stale is not None
        assert stale[0] is cached
        assert stale[1] == graph.cache_version - 1
        # Bookkeeping, not a serving lookup: counters untouched.
        assert engine.cache.misses == misses_before

    def test_none_for_different_encoder_or_graph(self):
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine()
        engine.embeddings(encoder, graph)
        assert engine.cache.stale_entry(
            make_encoder("gcn", "sparse", seed=1), graph) is None
        assert engine.cache.stale_entry(encoder, make_graph(seed=9)) is None


class TestConcurrentReaders:
    def test_reader_keeps_consistent_predelta_view(self):
        """A thread holding the pre-delta array is never broken mid-patch."""
        graph = make_graph()
        encoder = make_encoder("gcn", "sparse")
        engine = make_engine()
        old = engine.embeddings(encoder, graph)
        baseline = old.copy()
        assert not old.flags.writeable

        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                if not np.array_equal(old, baseline):
                    errors.append("pre-delta view changed under a reader")
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            dynamic = DynamicGraph(graph, num_hops=2)
            for seed in range(5):
                report = dynamic.apply(make_delta(graph, seed=seed))
                engine.refresh_after_delta(encoder, graph, report)
        finally:
            stop.set()
            thread.join()
        assert errors == []
        # The patched array is a distinct, also-frozen publication.
        fresh = engine.embeddings(encoder, graph)
        assert fresh is not old
        assert not fresh.flags.writeable
        assert fresh.shape[0] == graph.num_nodes
