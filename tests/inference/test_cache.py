"""Parameter versioning and the version-keyed embedding cache.

The invariant under test: a cached embedding can be reused **iff** the same
encoder instance has the same parameter version on the same graph object.
Optimizer steps and ``load_state_dict`` must bump the version, making stale
reuse impossible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import GCNEncoder
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges
from repro.inference import EmbeddingCache, ParamVersion
from repro.nn.layers import Linear
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def tiny_graph(seed: int = 0, num_nodes: int = 24) -> Graph:
    rng = np.random.default_rng(seed)
    src = rng.integers(num_nodes, size=60)
    dst = rng.integers(num_nodes, size=60)
    return Graph(features=rng.normal(size=(num_nodes, 6)),
                 edge_index=symmetrize_edges(np.vstack([src, dst])))


def stepped(module: Linear, optimizer_cls) -> None:
    """Run one forward/backward/step cycle on ``module``."""
    module.zero_grad()
    out = module(Tensor(np.ones((3, module.in_features))))
    out.sum().backward()
    optimizer_cls(module.parameters(), lr=0.1).step()


class TestParameterVersion:
    def test_fresh_module_starts_at_zero(self):
        assert Linear(4, 3).parameter_version() == 0

    @pytest.mark.parametrize("optimizer_cls", [Adam, SGD])
    def test_optimizer_step_bumps_version(self, optimizer_cls):
        module = Linear(4, 3)
        before = module.parameter_version()
        stepped(module, optimizer_cls)
        assert module.parameter_version() > before

    def test_load_state_dict_bumps_version(self):
        module = Linear(4, 3)
        before = module.parameter_version()
        module.load_state_dict(module.state_dict())
        assert module.parameter_version() > before

    def test_direct_data_assignment_bumps_version(self):
        """`param.data = ...` must invalidate caches without any explicit call."""
        module = Linear(4, 3)
        before = module.parameter_version()
        module.weight.data = module.weight.data + 1.0
        assert module.parameter_version() == before + 1

    def test_version_covers_child_modules(self):
        encoder = GCNEncoder(6, hidden_dim=5, out_dim=4,
                             rng=np.random.default_rng(0))
        before = encoder.parameter_version()
        encoder.layer2.linear.weight.bump_version()
        assert encoder.parameter_version() == before + 1

    def test_param_version_equality(self):
        module = Linear(4, 3)
        a, b = ParamVersion(module), ParamVersion(module)
        assert a == b and a.is_current()
        module.weight.bump_version()
        c = ParamVersion(module)
        assert a != c
        assert not a.is_current() and c.is_current()

    def test_param_version_dead_module_never_matches(self):
        version = ParamVersion(Linear(2, 2))
        assert not version.is_current()


class TestEmbeddingCache:
    def setup_method(self):
        self.graph = tiny_graph()
        self.encoder = GCNEncoder(6, hidden_dim=5, out_dim=4, dropout=0.0,
                                  rng=np.random.default_rng(1))
        self.cache = EmbeddingCache()

    def test_miss_then_hit(self):
        assert self.cache.lookup(self.encoder, self.graph) is None
        value = self.cache.store(self.encoder, self.graph,
                                 self.encoder.embed(self.graph))
        assert self.cache.lookup(self.encoder, self.graph) is value
        assert self.cache.hits == 1 and self.cache.misses == 1

    def test_optimizer_step_invalidates(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        out = self.encoder(self.graph)
        (out * out).sum().backward()
        Adam(self.encoder.parameters()).step()
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_load_state_dict_invalidates(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.encoder.load_state_dict(self.encoder.state_dict())
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_in_place_graph_mutation_misses(self):
        """The documented mutation path (reassign + invalidate_caches)."""
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.graph.features = self.graph.features * 2.0
        self.graph.invalidate_caches()
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_different_graph_object_misses(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        other = tiny_graph()  # identical content, different identity
        assert self.cache.lookup(self.encoder, other) is None

    def test_different_encoder_misses(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        other = GCNEncoder(6, hidden_dim=5, out_dim=4, dropout=0.0,
                           rng=np.random.default_rng(2))
        assert self.cache.lookup(other, self.graph) is None

    def test_explicit_invalidate(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.cache.invalidate()
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_cached_array_is_read_only(self):
        stored = self.cache.store(self.encoder, self.graph,
                                  self.encoder.embed(self.graph))
        with pytest.raises(ValueError):
            stored[0, 0] = 1.0
