"""Parameter versioning and the version-keyed embedding cache.

The invariant under test: a cached embedding can be reused **iff** the same
encoder instance has the same parameter version on the same graph object.
Optimizer steps and ``load_state_dict`` must bump the version, making stale
reuse impossible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import GCNEncoder
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges
from repro.inference import EmbeddingCache, ParamVersion
from repro.nn.layers import Linear
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def tiny_graph(seed: int = 0, num_nodes: int = 24) -> Graph:
    rng = np.random.default_rng(seed)
    src = rng.integers(num_nodes, size=60)
    dst = rng.integers(num_nodes, size=60)
    return Graph(features=rng.normal(size=(num_nodes, 6)),
                 edge_index=symmetrize_edges(np.vstack([src, dst])))


def stepped(module: Linear, optimizer_cls) -> None:
    """Run one forward/backward/step cycle on ``module``."""
    module.zero_grad()
    out = module(Tensor(np.ones((3, module.in_features))))
    out.sum().backward()
    optimizer_cls(module.parameters(), lr=0.1).step()


class TestParameterVersion:
    def test_fresh_module_starts_at_zero(self):
        assert Linear(4, 3).parameter_version() == 0

    @pytest.mark.parametrize("optimizer_cls", [Adam, SGD])
    def test_optimizer_step_bumps_version(self, optimizer_cls):
        module = Linear(4, 3)
        before = module.parameter_version()
        stepped(module, optimizer_cls)
        assert module.parameter_version() > before

    def test_load_state_dict_bumps_version(self):
        module = Linear(4, 3)
        before = module.parameter_version()
        module.load_state_dict(module.state_dict())
        assert module.parameter_version() > before

    def test_direct_data_assignment_bumps_version(self):
        """`param.data = ...` must invalidate caches without any explicit call."""
        module = Linear(4, 3)
        before = module.parameter_version()
        module.weight.data = module.weight.data + 1.0
        assert module.parameter_version() == before + 1

    def test_version_covers_child_modules(self):
        encoder = GCNEncoder(6, hidden_dim=5, out_dim=4,
                             rng=np.random.default_rng(0))
        before = encoder.parameter_version()
        encoder.layer2.linear.weight.bump_version()
        assert encoder.parameter_version() == before + 1

    def test_param_version_equality(self):
        module = Linear(4, 3)
        a, b = ParamVersion(module), ParamVersion(module)
        assert a == b and a.is_current()
        module.weight.bump_version()
        c = ParamVersion(module)
        assert a != c
        assert not a.is_current() and c.is_current()

    def test_param_version_dead_module_never_matches(self):
        version = ParamVersion(Linear(2, 2))
        assert not version.is_current()


class TestEmbeddingCache:
    def setup_method(self):
        self.graph = tiny_graph()
        self.encoder = GCNEncoder(6, hidden_dim=5, out_dim=4, dropout=0.0,
                                  rng=np.random.default_rng(1))
        self.cache = EmbeddingCache()

    def test_miss_then_hit(self):
        assert self.cache.lookup(self.encoder, self.graph) is None
        value = self.cache.store(self.encoder, self.graph,
                                 self.encoder.embed(self.graph))
        assert self.cache.lookup(self.encoder, self.graph) is value
        assert self.cache.hits == 1 and self.cache.misses == 1

    def test_optimizer_step_invalidates(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        out = self.encoder(self.graph)
        (out * out).sum().backward()
        Adam(self.encoder.parameters()).step()
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_load_state_dict_invalidates(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.encoder.load_state_dict(self.encoder.state_dict())
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_in_place_graph_mutation_misses(self):
        """The documented mutation path (reassign + invalidate_caches)."""
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.graph.features = self.graph.features * 2.0
        self.graph.invalidate_caches()
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_different_graph_object_misses(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        other = tiny_graph()  # identical content, different identity
        assert self.cache.lookup(self.encoder, other) is None

    def test_different_encoder_misses(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        other = GCNEncoder(6, hidden_dim=5, out_dim=4, dropout=0.0,
                           rng=np.random.default_rng(2))
        assert self.cache.lookup(other, self.graph) is None

    def test_explicit_invalidate(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.cache.invalidate()
        assert self.cache.lookup(self.encoder, self.graph) is None

    def test_cached_array_is_read_only(self):
        stored = self.cache.store(self.encoder, self.graph,
                                  self.encoder.embed(self.graph))
        with pytest.raises(ValueError):
            stored[0, 0] = 1.0

    def test_store_does_not_freeze_callers_array(self):
        """Regression: store froze a caller-owned ndarray in place."""
        mine = self.encoder.embed(self.graph)
        stored = self.cache.store(self.encoder, self.graph, mine)
        assert mine.flags.writeable
        mine[0, 0] = 42.0  # caller keeps full ownership
        assert not stored.flags.writeable
        assert stored[0, 0] != 42.0  # the cache holds its own copy

    def test_store_copy_false_hands_over_ownership(self):
        owned = self.encoder.embed(self.graph)
        stored = self.cache.store(self.encoder, self.graph, owned, copy=False)
        assert stored is owned  # no copy on the handover path
        assert not owned.flags.writeable

    def test_store_read_only_input_not_copied(self):
        frozen = self.encoder.embed(self.graph)
        frozen.setflags(write=False)
        assert self.cache.store(self.encoder, self.graph, frozen) is frozen

    def test_invalidate_resets_graph_version(self):
        """Regression: invalidate() left the graph version key stale."""
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.cache.invalidate()
        # Re-storing after an invalidate must key on the *current* graph
        # version, so a store/lookup cycle works at any version.
        self.graph.invalidate_caches()
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        assert self.cache.lookup(self.encoder, self.graph) is not None

    def test_stats_snapshot(self):
        self.cache.lookup(self.encoder, self.graph)
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.cache.lookup(self.encoder, self.graph)
        stats = self.cache.stats()
        assert stats == {"hits": 1, "misses": 1, "hit_rate": 0.5,
                         "invalidations": 0}

    def test_stats_count_invalidations(self):
        self.cache.store(self.encoder, self.graph, self.encoder.embed(self.graph))
        self.cache.invalidate()
        self.cache.invalidate()
        assert self.cache.stats()["invalidations"] == 2


class TestParamVersionHashStability:
    def test_hash_stable_after_module_is_collected(self):
        """Regression: the hash flipped to hash(id(None)) after gc."""
        module = Linear(3, 2)
        version = ParamVersion(module)
        table = {version: "entry"}
        before = hash(version)
        del module
        import gc

        gc.collect()
        assert version.module is None  # the referent really is gone
        assert hash(version) == before
        assert table[version] == "entry"

    def test_dead_versions_of_different_modules_hash_apart(self):
        a, b = Linear(2, 2), Linear(2, 2)
        va, vb = ParamVersion(a), ParamVersion(b)
        del a, b
        import gc

        gc.collect()
        # Distinct construction-time identities are preserved.
        assert {va: 1, vb: 2} == {va: 1, vb: 2}
        assert va != vb


class TestEmbeddingCacheConcurrency:
    def test_concurrent_readers_and_writer(self):
        """Hammer lookup/store/invalidate from many threads: no torn state."""
        import threading

        graph = tiny_graph()
        encoder = GCNEncoder(6, hidden_dim=5, out_dim=4, dropout=0.0,
                             rng=np.random.default_rng(3))
        cache = EmbeddingCache()
        embeddings = encoder.embed(graph)
        cache.store(encoder, graph, embeddings)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    value = cache.lookup(encoder, graph)
                    if value is not None:
                        # A hit is always a complete, frozen entry.
                        assert not value.flags.writeable
                        assert value.shape == embeddings.shape
            except BaseException as exc:
                errors.append(exc)

        def writer():
            try:
                for _ in range(200):
                    cache.invalidate()
                    cache.store(encoder, graph, embeddings)
            except BaseException as exc:
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writers = [threading.Thread(target=writer) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors, errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == cache.hits + cache.misses
