"""Tests for the semi-supervised (constrained) K-Means."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.semi_kmeans import SemiSupervisedKMeans


def blobs_with_labels(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0], [8.0, -8.0]])
    data, labels = [], []
    for idx, center in enumerate(centers):
        data.append(rng.normal(center, 0.6, size=(40, 2)))
        labels.extend([idx] * 40)
    return np.vstack(data), np.asarray(labels)


class TestSemiSupervisedKMeans:
    def test_labeled_samples_pinned_to_their_cluster(self):
        data, labels = blobs_with_labels()
        labeled_indices = np.concatenate([np.where(labels == 0)[0][:10],
                                          np.where(labels == 1)[0][:10]])
        labeled_classes = labels[labeled_indices]
        result = SemiSupervisedKMeans(4, seed=0).fit(
            data, labeled_indices, labeled_classes, seen_classes=np.array([0, 1])
        )
        # Class 0 labeled points -> cluster 0, class 1 labeled points -> cluster 1.
        np.testing.assert_array_equal(result.labels[labeled_indices[:10]], 0)
        np.testing.assert_array_equal(result.labels[labeled_indices[10:]], 1)

    def test_unlabeled_blobs_use_remaining_clusters(self):
        data, labels = blobs_with_labels()
        labeled_indices = np.where(labels == 0)[0][:15]
        result = SemiSupervisedKMeans(4, seed=0).fit(
            data, labeled_indices, labels[labeled_indices], seen_classes=np.array([0])
        )
        # The pinned labeled nodes stay in cluster 0, and the three unlabeled
        # blobs spread over at least two distinct clusters.
        np.testing.assert_array_equal(result.labels[labeled_indices], 0)
        dominants = {
            int(np.bincount(result.labels[labels == cls], minlength=4).argmax())
            for cls in (1, 2, 3)
        }
        assert len(dominants) >= 2
        assert any(cluster != 0 for cluster in dominants)

    def test_mismatched_label_arrays_raise(self):
        data, labels = blobs_with_labels()
        with pytest.raises(ValueError):
            SemiSupervisedKMeans(4).fit(data, np.array([0, 1]), np.array([0]))

    def test_more_seen_classes_than_clusters_raises(self):
        data, labels = blobs_with_labels()
        with pytest.raises(ValueError):
            SemiSupervisedKMeans(2).fit(
                data, np.arange(10), labels[:10], seen_classes=np.array([0, 1, 2])
            )

    def test_result_has_valid_inertia(self):
        data, labels = blobs_with_labels()
        labeled_indices = np.where(labels == 0)[0][:10]
        result = SemiSupervisedKMeans(4, seed=0).fit(
            data, labeled_indices, labels[labeled_indices], seen_classes=np.array([0])
        )
        assert result.inertia > 0
        assert np.isfinite(result.centers).all()
