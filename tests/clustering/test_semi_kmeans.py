"""Tests for the semi-supervised (constrained) K-Means."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.semi_kmeans import SemiSupervisedKMeans


def blobs_with_labels(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0], [8.0, -8.0]])
    data, labels = [], []
    for idx, center in enumerate(centers):
        data.append(rng.normal(center, 0.6, size=(40, 2)))
        labels.extend([idx] * 40)
    return np.vstack(data), np.asarray(labels)


class TestSemiSupervisedKMeans:
    def test_labeled_samples_pinned_to_their_cluster(self):
        data, labels = blobs_with_labels()
        labeled_indices = np.concatenate([np.where(labels == 0)[0][:10],
                                          np.where(labels == 1)[0][:10]])
        labeled_classes = labels[labeled_indices]
        result = SemiSupervisedKMeans(4, seed=0).fit(
            data, labeled_indices, labeled_classes, seen_classes=np.array([0, 1])
        )
        # Class 0 labeled points -> cluster 0, class 1 labeled points -> cluster 1.
        np.testing.assert_array_equal(result.labels[labeled_indices[:10]], 0)
        np.testing.assert_array_equal(result.labels[labeled_indices[10:]], 1)

    def test_unlabeled_blobs_use_remaining_clusters(self):
        data, labels = blobs_with_labels()
        labeled_indices = np.where(labels == 0)[0][:15]
        result = SemiSupervisedKMeans(4, seed=0).fit(
            data, labeled_indices, labels[labeled_indices], seen_classes=np.array([0])
        )
        # The pinned labeled nodes stay in cluster 0, and the three unlabeled
        # blobs spread over at least two distinct clusters.
        np.testing.assert_array_equal(result.labels[labeled_indices], 0)
        dominants = {
            int(np.bincount(result.labels[labels == cls], minlength=4).argmax())
            for cls in (1, 2, 3)
        }
        assert len(dominants) >= 2
        assert any(cluster != 0 for cluster in dominants)

    def test_mismatched_label_arrays_raise(self):
        data, labels = blobs_with_labels()
        with pytest.raises(ValueError):
            SemiSupervisedKMeans(4).fit(data, np.array([0, 1]), np.array([0]))

    def test_more_seen_classes_than_clusters_raises(self):
        data, labels = blobs_with_labels()
        with pytest.raises(ValueError):
            SemiSupervisedKMeans(2).fit(
                data, np.arange(10), labels[:10], seen_classes=np.array([0, 1, 2])
            )

    def test_result_has_valid_inertia(self):
        data, labels = blobs_with_labels()
        labeled_indices = np.where(labels == 0)[0][:10]
        result = SemiSupervisedKMeans(4, seed=0).fit(
            data, labeled_indices, labels[labeled_indices], seen_classes=np.array([0])
        )
        assert result.inertia > 0
        assert np.isfinite(result.centers).all()


class TestEmptyClusterReseeding:
    """Regression: empty clusters are re-seeded from the farthest-point pool.

    ``data_seed=9, seed=4, k=8`` produces an empty cluster on the very first
    assignment (found by scanning seeds); the stale-center code path used to
    leave it empty forever.
    """

    def make_inputs(self):
        rng = np.random.default_rng(9)
        data = rng.uniform(size=(60, 2))
        labeled_indices = np.arange(6)
        labeled_classes = np.array([0, 0, 0, 1, 1, 1])
        return data, labeled_indices, labeled_classes

    def test_empty_cluster_is_reseeded(self):
        data, labeled_indices, labeled_classes = self.make_inputs()
        result = SemiSupervisedKMeans(8, seed=4).fit(
            data, labeled_indices, labeled_classes)
        counts = np.bincount(result.labels, minlength=8)
        assert (counts > 0).all()

    def test_reseeding_is_deterministic(self):
        data, labeled_indices, labeled_classes = self.make_inputs()
        first = SemiSupervisedKMeans(8, seed=4).fit(
            data, labeled_indices, labeled_classes)
        second = SemiSupervisedKMeans(8, seed=4).fit(
            data, labeled_indices, labeled_classes)
        assert np.array_equal(first.labels, second.labels)
        assert np.array_equal(first.centers, second.centers)

    def test_more_empty_clusters_than_samples_still_completes(self):
        # Degenerate n < num_clusters input: most clusters are necessarily
        # empty and the farthest-point pool is smaller than the number of
        # empty clusters; the reseed falls back to replacement instead of
        # crashing.
        data = np.full((5, 2), 0.5) + np.arange(5)[:, None] * 1e-9
        result = SemiSupervisedKMeans(8, seed=0).fit(
            data, np.array([0]), np.array([0]))
        assert result.labels.shape == (5,)
        assert np.isfinite(result.centers).all()

    def test_reseeding_does_not_touch_global_rng(self):
        data, labeled_indices, labeled_classes = self.make_inputs()
        np.random.seed(123)
        expected_draw = np.random.random()
        np.random.seed(123)
        SemiSupervisedKMeans(8, seed=4).fit(data, labeled_indices, labeled_classes)
        assert np.random.random() == expected_draw
