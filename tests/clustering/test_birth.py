"""Silhouette metrics and the online strategy's cluster-birth trigger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.engine import ClusteringEngine
from repro.clustering.metrics import (per_cluster_silhouette, silhouette_samples,
                                      silhouette_score)
from repro.core.config import ClusteringConfig


def blobs(sizes, centers, spread=0.3, seed=0):
    """Well-separated Gaussian blobs with ground-truth labels."""
    rng = np.random.default_rng(seed)
    data, labels = [], []
    for label, (size, center) in enumerate(zip(sizes, centers, strict=True)):
        data.append(rng.normal(scale=spread, size=(size, 2)) + np.asarray(center))
        labels.append(np.full(size, label))
    return np.vstack(data), np.concatenate(labels)


class TestSilhouetteScore:
    def test_well_separated_blobs_score_high(self):
        data, labels = blobs([50, 50], [(0, 0), (10, 10)])
        assert silhouette_score(data, labels, sample_size=None) > 0.9

    def test_merged_labeling_scores_lower(self):
        data, _ = blobs([50, 50, 50], [(0, 0), (10, 0), (5, 9)])
        good = np.repeat([0, 1, 2], 50)
        merged = np.repeat([0, 0, 1], 50)
        exact_kw = dict(sample_size=None)
        assert silhouette_score(data, merged, **exact_kw) < silhouette_score(
            data, good, **exact_kw)

    def test_sampled_agrees_with_exact(self):
        data, labels = blobs([300, 300], [(0, 0), (8, 8)], seed=3)
        exact = silhouette_score(data, labels, sample_size=None)
        sampled = silhouette_score(data, labels, sample_size=200, seed=1)
        assert abs(exact - sampled) < 0.05

    def test_sampled_is_deterministic(self):
        data, labels = blobs([300, 300], [(0, 0), (8, 8)])
        a = silhouette_score(data, labels, sample_size=100, seed=4)
        b = silhouette_score(data, labels, sample_size=100, seed=4)
        assert a == b

    def test_degenerate_cases_score_zero(self):
        data, _ = blobs([10], [(0, 0)])
        assert silhouette_score(data, np.zeros(10, dtype=int)) == 0.0
        assert silhouette_score(data[:1], np.array([0])) == 0.0
        assert silhouette_score(np.zeros((0, 2)), np.zeros(0, dtype=int)) == 0.0

    def test_samples_still_raise_on_single_cluster(self):
        data, _ = blobs([10], [(0, 0)])
        with pytest.raises(ValueError, match="at least two clusters"):
            silhouette_samples(data, np.zeros(10, dtype=int))


class TestPerClusterSilhouette:
    def test_flags_the_merged_cluster(self):
        data, _ = blobs([60, 60, 60], [(0, 0), (6, 0), (0, 6)], seed=1)
        merged = np.repeat([0, 0, 1], 60)  # cluster 0 covers two blobs
        scores = per_cluster_silhouette(data, merged, sample_size=None)
        assert set(scores) == {0, 1}
        assert scores[0] < scores[1]

    def test_degenerate_returns_empty(self):
        data, _ = blobs([10], [(0, 0)])
        assert per_cluster_silhouette(data, np.zeros(10, dtype=int)) == {}
        assert per_cluster_silhouette(data[:1], np.array([0])) == {}

    def test_matches_samples_mean(self):
        data, labels = blobs([40, 40], [(0, 0), (7, 7)], seed=2)
        scores = per_cluster_silhouette(data, labels, sample_size=None)
        samples = silhouette_samples(data, labels)
        for cluster, score in scores.items():
            assert score == pytest.approx(samples[labels == cluster].mean())


def birth_engine(**overrides):
    defaults = dict(strategy="online", birth_threshold=0.7,
                    birth_min_size=8, birth_sample_size=512)
    defaults.update(overrides)
    return ClusteringEngine(ClusteringConfig(**defaults), seed=0)


class TestClusterBirth:
    def test_birth_recovers_hidden_blob(self):
        # Three blobs, but only two clusters requested: the merged cluster's
        # silhouette degrades and the engine births the third centroid.
        data, truth = blobs([200, 200, 200], [(0, 0), (12, 0), (6, 10)], seed=0)
        engine = birth_engine()
        outcome = engine.refresh(data, 2, allow_birth=True)
        assert outcome.births != ()
        assert outcome.result.centers.shape[0] == 3
        assert engine.birth_count == 1
        sizes = np.sort(np.bincount(outcome.result.labels))
        np.testing.assert_array_equal(sizes, [200, 200, 200])

    def test_birth_persists_as_floor(self):
        data, _ = blobs([200, 200, 200], [(0, 0), (12, 0), (6, 10)], seed=0)
        engine = birth_engine()
        engine.refresh(data, 2, allow_birth=True)
        # Asking for 2 again must not collapse the born cluster.
        outcome = engine.refresh(data, 2, allow_birth=True)
        assert outcome.result.centers.shape[0] == 3
        assert outcome.births == ()  # stable now, no repeated births

    def test_max_clusters_caps_births(self):
        data, _ = blobs([200, 200, 200], [(0, 0), (12, 0), (6, 10)], seed=0)
        engine = birth_engine(birth_threshold=0.99, max_clusters=2)
        outcome = engine.refresh(data, 2, allow_birth=True)
        assert outcome.births == ()
        assert outcome.result.centers.shape[0] == 2
        assert engine.birth_count == 0

    def test_min_size_gates_tiny_clusters(self):
        # The degraded cluster is too small to be split.
        data, _ = blobs([6, 200], [(0, 0), (12, 0)], seed=0)
        engine = birth_engine(birth_threshold=0.99, birth_min_size=250)
        outcome = engine.refresh(data, 2, allow_birth=True)
        assert outcome.births == ()

    def test_plain_refresh_never_births(self):
        """The training loop's refresh keeps the exact-k contract."""
        data, _ = blobs([200, 200, 200], [(0, 0), (12, 0), (6, 10)], seed=0)
        engine = birth_engine()
        outcome = engine.refresh(data, 2)  # allow_birth defaults to False
        assert outcome.births == ()
        assert outcome.result.centers.shape[0] == 2
        assert engine.birth_count == 0

    def test_one_birth_per_refresh(self):
        # Four blobs under two requested clusters: each refresh may only
        # split once, so reaching four centroids takes two birthing passes.
        data, _ = blobs([150, 150, 150, 150],
                        [(0, 0), (14, 0), (0, 14), (14, 14)], seed=1)
        engine = birth_engine(birth_threshold=0.8)
        first = engine.refresh(data, 2, allow_birth=True)
        assert first.result.centers.shape[0] == 3
        second = engine.refresh(data, 2, allow_birth=True)
        assert second.result.centers.shape[0] == 4
        assert engine.birth_count == 2

    def test_state_dict_round_trips_birth_state(self):
        data, _ = blobs([200, 200, 200], [(0, 0), (12, 0), (6, 10)], seed=0)
        engine = birth_engine()
        engine.refresh(data, 2, allow_birth=True)
        meta, arrays = engine.state_dict()
        assert meta["birth_count"] == 1

        restored = birth_engine()
        restored.load_state_dict(meta, arrays)
        assert restored.birth_count == 1
        outcome = restored.refresh(data, 2, allow_birth=True)
        # The floor survives the checkpoint: still three clusters, no re-birth.
        assert outcome.result.centers.shape[0] == 3
        assert outcome.births == ()


class TestBirthConfigValidation:
    def test_birth_requires_online_strategy(self):
        with pytest.raises(ValueError, match="online strategy"):
            ClusteringConfig(strategy="exact", birth_threshold=0.2)

    def test_birth_threshold_range(self):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            ClusteringConfig(strategy="online", birth_threshold=1.5)

    def test_birth_sizes_validated(self):
        with pytest.raises(ValueError, match="birth_sample_size"):
            ClusteringConfig(strategy="online", birth_sample_size=1)
        with pytest.raises(ValueError, match="birth_min_size"):
            ClusteringConfig(strategy="online", birth_min_size=0)
        with pytest.raises(ValueError, match="max_clusters"):
            ClusteringConfig(strategy="online", max_clusters=0)
