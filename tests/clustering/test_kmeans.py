"""Tests for K-Means, mini-batch K-Means, and k-means++ seeding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.kmeans import (
    KMeans,
    MiniBatchKMeans,
    cluster_embeddings,
    kmeans_plus_plus_init,
)


def blobs(num_per_cluster=50, centers=((0, 0), (10, 10), (-10, 10)), std=0.5, seed=0):
    rng = np.random.default_rng(seed)
    data, labels = [], []
    for idx, center in enumerate(centers):
        data.append(rng.normal(center, std, size=(num_per_cluster, len(center))))
        labels.extend([idx] * num_per_cluster)
    return np.vstack(data), np.asarray(labels)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        data, labels = blobs()
        result = KMeans(3, seed=0).fit(data)
        # Each cluster should be pure.
        for cluster in range(3):
            members = labels[result.labels == cluster]
            assert members.shape[0] > 0
            values, counts = np.unique(members, return_counts=True)
            assert counts.max() / members.shape[0] == pytest.approx(1.0)

    def test_centers_close_to_true_means(self):
        data, _ = blobs()
        result = KMeans(3, seed=0).fit(data)
        true_centers = np.array([[0, 0], [10, 10], [-10, 10]], dtype=float)
        for center in true_centers:
            distances = np.linalg.norm(result.centers - center, axis=1)
            assert distances.min() < 0.5

    def test_inertia_decreases_with_more_clusters(self):
        data, _ = blobs(std=2.0)
        inertia_2 = KMeans(2, seed=0).fit(data).inertia
        inertia_3 = KMeans(3, seed=0).fit(data).inertia
        inertia_6 = KMeans(6, seed=0).fit(data).inertia
        assert inertia_3 <= inertia_2
        assert inertia_6 <= inertia_3

    def test_deterministic_for_fixed_seed(self):
        data, _ = blobs()
        a = KMeans(3, seed=5).fit(data)
        b = KMeans(3, seed=5).fit(data)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.centers, b.centers)

    def test_initial_centers_respected(self):
        data, _ = blobs()
        initial = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        result = KMeans(3, seed=0).fit(data, initial_centers=initial)
        assert result.inertia < 200

    def test_single_cluster(self):
        data, _ = blobs()
        result = KMeans(1, seed=0).fit(data)
        assert (result.labels == 0).all()
        np.testing.assert_allclose(result.centers[0], data.mean(axis=0), atol=1e-8)

    def test_more_clusters_than_samples_raises(self):
        with pytest.raises(ValueError):
            KMeans(10).fit(np.zeros((3, 2)))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(5))

    def test_duplicate_points_do_not_crash(self):
        data = np.ones((20, 3))
        result = KMeans(2, seed=0).fit(data)
        assert result.labels.shape == (20,)
        assert np.isfinite(result.centers).all()

    def test_distances_to_center(self):
        data, _ = blobs()
        result = KMeans(3, seed=0).fit(data)
        distances = result.distances_to_center(data)
        assert distances.shape == (data.shape[0],)
        assert (distances >= 0).all()
        assert distances.mean() < 2.0

    def test_fit_predict(self):
        data, _ = blobs()
        labels = KMeans(3, seed=0).fit_predict(data)
        assert set(np.unique(labels)) == {0, 1, 2}


class TestKMeansPlusPlus:
    def test_selects_distinct_centers_for_separated_data(self):
        data, labels = blobs()
        rng = np.random.default_rng(0)
        centers = kmeans_plus_plus_init(data, 3, rng)
        # Each chosen center should come from a different blob.
        assignments = np.linalg.norm(
            data[:, None, :] - centers[None, :, :], axis=2
        ).argmin(axis=1)
        assert len(np.unique(labels[np.unique(assignments, return_index=True)[1]])) >= 2

    def test_handles_identical_points(self):
        data = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(data, 3, np.random.default_rng(0))
        assert centers.shape == (3, 2)


class TestMiniBatchKMeans:
    def test_approximates_full_kmeans_on_blobs(self):
        data, labels = blobs(num_per_cluster=200)
        result = MiniBatchKMeans(3, batch_size=64, max_iter=100, seed=0).fit(data)
        # Clusters should be mostly pure.
        purity = 0.0
        for cluster in range(3):
            members = labels[result.labels == cluster]
            if members.shape[0]:
                purity += np.bincount(members).max()
        assert purity / data.shape[0] > 0.9

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            MiniBatchKMeans(5).fit(np.zeros((3, 2)))

    def test_fit_predict_shape(self):
        data, _ = blobs()
        labels = MiniBatchKMeans(3, seed=1).fit_predict(data)
        assert labels.shape == (data.shape[0],)


class TestClusterEmbeddingsHelper:
    def test_full_and_mini_batch_paths(self):
        data, _ = blobs()
        full = cluster_embeddings(data, 3, seed=0, mini_batch=False)
        mini = cluster_embeddings(data, 3, seed=0, mini_batch=True, batch_size=64)
        assert full.labels.shape == mini.labels.shape


class TestPropertyBased:
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_every_cluster_id_within_range(self, num_clusters, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(60, 3))
        result = KMeans(num_clusters, seed=seed).fit(data)
        assert result.labels.min() >= 0
        assert result.labels.max() < num_clusters
        assert result.centers.shape == (num_clusters, 3)

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_inertia_matches_assignment(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(50, 2))
        result = KMeans(3, seed=seed).fit(data)
        manual = ((data - result.centers[result.labels]) ** 2).sum()
        assert result.inertia == pytest.approx(manual, rel=1e-6)
