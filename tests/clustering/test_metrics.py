"""Tests for silhouette coefficient and clustering metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.metrics import (
    inertia,
    pairwise_distances,
    silhouette_samples,
    silhouette_score,
)


class TestPairwiseDistances:
    def test_matches_manual(self):
        data = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_distances(data)
        assert distances[0, 1] == pytest.approx(5.0)
        assert distances[0, 0] == pytest.approx(0.0)
        np.testing.assert_allclose(distances, distances.T)


class TestSilhouette:
    def test_well_separated_clusters_score_near_one(self):
        rng = np.random.default_rng(0)
        data = np.vstack([
            rng.normal([0, 0], 0.1, size=(30, 2)),
            rng.normal([20, 20], 0.1, size=(30, 2)),
        ])
        labels = np.array([0] * 30 + [1] * 30)
        assert silhouette_score(data, labels) > 0.95

    def test_random_labels_score_near_zero_or_negative(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(80, 3))
        labels = rng.integers(0, 2, size=80)
        assert silhouette_score(data, labels) < 0.2

    def test_wrong_assignment_is_negative(self):
        rng = np.random.default_rng(2)
        left = rng.normal([0, 0], 0.1, size=(20, 2))
        right = rng.normal([10, 0], 0.1, size=(20, 2))
        data = np.vstack([left, right])
        # Deliberately split each true blob across both labels.
        labels = np.array(([0, 1] * 10) + ([0, 1] * 10))
        assert silhouette_score(data, labels) < 0.0

    def test_per_sample_values_bounded(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(40, 2))
        labels = rng.integers(0, 3, size=40)
        if len(np.unique(labels)) < 2:
            labels[0] = (labels[0] + 1) % 3
        values = silhouette_samples(data, labels)
        assert values.shape == (40,)
        assert (values <= 1.0).all() and (values >= -1.0).all()

    def test_single_cluster_raises(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((5, 2)), np.zeros(5, dtype=int))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_singleton_cluster_gets_zero(self):
        data = np.array([[0.0, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels = np.array([0, 1, 1])
        values = silhouette_samples(data, labels)
        assert values[0] == 0.0

    def test_subsampling_path(self):
        rng = np.random.default_rng(4)
        data = np.vstack([
            rng.normal([0, 0], 0.2, size=(300, 2)),
            rng.normal([15, 15], 0.2, size=(300, 2)),
        ])
        labels = np.array([0] * 300 + [1] * 300)
        score = silhouette_score(data, labels, sample_size=100, seed=0)
        assert score > 0.9


class TestInertia:
    def test_inertia_value(self):
        data = np.array([[0.0], [2.0], [10.0]])
        centers = np.array([[1.0], [10.0]])
        labels = np.array([0, 0, 1])
        assert inertia(data, labels, centers) == pytest.approx(2.0)
