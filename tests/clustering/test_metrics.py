"""Tests for silhouette coefficient and clustering metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.metrics import (
    adjusted_rand_index,
    inertia,
    normalized_mutual_information,
    pairwise_distances,
    silhouette_samples,
    silhouette_score,
)


class TestPairwiseDistances:
    def test_matches_manual(self):
        data = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_distances(data)
        assert distances[0, 1] == pytest.approx(5.0)
        assert distances[0, 0] == pytest.approx(0.0)
        np.testing.assert_allclose(distances, distances.T)


class TestSilhouette:
    def test_well_separated_clusters_score_near_one(self):
        rng = np.random.default_rng(0)
        data = np.vstack([
            rng.normal([0, 0], 0.1, size=(30, 2)),
            rng.normal([20, 20], 0.1, size=(30, 2)),
        ])
        labels = np.array([0] * 30 + [1] * 30)
        assert silhouette_score(data, labels) > 0.95

    def test_random_labels_score_near_zero_or_negative(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(80, 3))
        labels = rng.integers(0, 2, size=80)
        assert silhouette_score(data, labels) < 0.2

    def test_wrong_assignment_is_negative(self):
        rng = np.random.default_rng(2)
        left = rng.normal([0, 0], 0.1, size=(20, 2))
        right = rng.normal([10, 0], 0.1, size=(20, 2))
        data = np.vstack([left, right])
        # Deliberately split each true blob across both labels.
        labels = np.array(([0, 1] * 10) + ([0, 1] * 10))
        assert silhouette_score(data, labels) < 0.0

    def test_per_sample_values_bounded(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(40, 2))
        labels = rng.integers(0, 3, size=40)
        if len(np.unique(labels)) < 2:
            labels[0] = (labels[0] + 1) % 3
        values = silhouette_samples(data, labels)
        assert values.shape == (40,)
        assert (values <= 1.0).all() and (values >= -1.0).all()

    def test_single_cluster_raises(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((5, 2)), np.zeros(5, dtype=int))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            silhouette_samples(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_singleton_cluster_gets_zero(self):
        data = np.array([[0.0, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels = np.array([0, 1, 1])
        values = silhouette_samples(data, labels)
        assert values[0] == 0.0

    def test_subsampling_path(self):
        rng = np.random.default_rng(4)
        data = np.vstack([
            rng.normal([0, 0], 0.2, size=(300, 2)),
            rng.normal([15, 15], 0.2, size=(300, 2)),
        ])
        labels = np.array([0] * 300 + [1] * 300)
        score = silhouette_score(data, labels, sample_size=100, seed=0)
        assert score > 0.9


class TestInertia:
    def test_inertia_value(self):
        data = np.array([[0.0], [2.0], [10.0]])
        centers = np.array([[1.0], [10.0]])
        labels = np.array([0, 0, 1])
        assert inertia(data, labels, centers) == pytest.approx(2.0)


class TestNormalizedMutualInformation:
    def test_identical_labelings_score_one(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_renamed_labelings_score_one(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([7, 7, 3, 3, 9, 9])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_labelings_score_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(4, size=4000)
        b = rng.integers(4, size=4000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_single_cluster_both_sides_is_one(self):
        # Both labelings have zero entropy: identical trivial partitions.
        assert normalized_mutual_information([0, 0, 0], [5, 5, 5]) == 1.0

    def test_single_cluster_against_nontrivial_is_zero(self):
        # Previously a 0/0: one labeling has zero entropy, no shared info.
        assert normalized_mutual_information([0, 0, 0], [0, 1, 2]) == 0.0
        assert normalized_mutual_information([0, 1, 2], [0, 0, 0]) == 0.0

    def test_all_singletons_both_sides_is_one(self):
        assert normalized_mutual_information([0, 1, 2, 3], [9, 8, 7, 6]) == \
            pytest.approx(1.0)

    def test_empty_and_single_sample_defined(self):
        assert normalized_mutual_information([], []) == 1.0
        assert normalized_mutual_information([3], [8]) == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            normalized_mutual_information([0, 1], [0, 1, 2])


class TestAdjustedRandIndex:
    def test_identical_labelings_score_one(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_renamed_labelings_score_one(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([7, 7, 3, 3, 9, 9])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_labelings_score_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(4, size=4000)
        b = rng.integers(4, size=4000)
        assert abs(adjusted_rand_index(a, b)) < 0.01

    def test_known_value(self):
        # sklearn.metrics.adjusted_rand_score([0,0,1,1], [0,0,1,2]) == 0.5714...
        assert adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, 2]) == \
            pytest.approx(0.5714285714285714)

    def test_single_cluster_both_sides_is_one(self):
        # Previously a 0/0 division; per sklearn both-trivial partitions match.
        assert adjusted_rand_index([0, 0, 0], [4, 4, 4]) == 1.0

    def test_all_singletons_both_sides_is_one(self):
        assert adjusted_rand_index([0, 1, 2], [5, 6, 7]) == 1.0

    def test_single_cluster_against_singletons_is_zero(self):
        assert adjusted_rand_index([0, 0, 0], [0, 1, 2]) == 0.0

    def test_empty_and_single_sample_defined(self):
        assert adjusted_rand_index([], []) == 1.0
        assert adjusted_rand_index([3], [8]) == 1.0


class TestSparseContingency:
    def test_fine_grained_labelings_stay_linear_memory(self):
        # 200k all-singleton labels would need a 200k x 200k dense
        # contingency matrix (~320 GB); the sparse path handles it easily.
        n = 200_000
        labels = np.arange(n)
        shuffled = labels + 1_000_000  # renamed singletons
        assert normalized_mutual_information(labels, shuffled) == pytest.approx(1.0)
        assert adjusted_rand_index(labels, shuffled) == 1.0

    def test_sparse_path_matches_small_dense_values(self):
        rng = np.random.default_rng(3)
        a = rng.integers(6, size=500)
        b = rng.integers(4, size=500)
        # Reference values from the dense-matrix formulation.
        table = np.zeros((6, 4))
        np.add.at(table, (a, b), 1.0)
        rows, cols = table.sum(1), table.sum(0)
        nonzero = table > 0
        joint = table[nonzero] / 500
        outer = np.outer(rows, cols)[nonzero] / (500.0 * 500.0)
        mi = (joint * np.log(joint / outer)).sum()
        h = lambda c: -(c[c > 0] / 500 * np.log(c[c > 0] / 500)).sum()  # terse on purpose
        expected = mi / (0.5 * (h(rows) + h(cols)))
        assert normalized_mutual_information(a, b) == pytest.approx(expected)
