"""ClusteringEngine: strategy parity, warm start, tolerance, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import ClusteringEngine, normalized_mutual_information
from repro.clustering.kmeans import KMeans, MiniBatchKMeans, cluster_embeddings
from repro.core.config import ClusteringConfig


def blobs(num_per_blob=150, num_blobs=5, dim=8, seed=0, spread=0.35):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(num_blobs, dim))
    return np.vstack([
        rng.normal(center, spread, size=(num_per_blob, dim)) for center in centers
    ])


@pytest.fixture(scope="module")
def data():
    return blobs()


class TestConfigValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="clustering strategy"):
            ClusteringConfig(strategy="agglomerative")

    @pytest.mark.parametrize("field,value", [
        ("sample_size", 0),
        ("reassign_chunk_size", 0),
        ("refresh_tolerance", -1),
    ])
    def test_invalid_numbers_rejected(self, field, value):
        with pytest.raises(ValueError):
            ClusteringConfig(**{field: value})

    def test_round_trip(self):
        config = ClusteringConfig(strategy="online", sample_size=128,
                                  warm_start=True, refresh_tolerance=7, seed=3)
        assert ClusteringConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown ClusteringConfig keys"):
            ClusteringConfig.from_dict({"stratgy": "exact"})

    def test_tolerance_without_carried_state_rejected(self):
        # Without warm_start (or the online strategy) the tolerance could
        # never fire; reject the combination instead of ignoring it.
        with pytest.raises(ValueError, match="warm_start"):
            ClusteringConfig(refresh_tolerance=5)
        with pytest.raises(ValueError, match="warm_start"):
            ClusteringConfig(strategy="minibatch", refresh_tolerance=5)

    def test_tolerance_with_online_strategy_accepted(self):
        config = ClusteringConfig(strategy="online", refresh_tolerance=5)
        assert config.refresh_tolerance == 5


class TestExactStrategy:
    def test_refresh_bit_identical_to_legacy(self, data):
        legacy = cluster_embeddings(data, 5, seed=0)
        engine = ClusteringEngine(ClusteringConfig(), seed=0)
        for _ in range(3):  # every refresh matches, not just the first
            outcome = engine.refresh(data, 5)
            assert outcome.refitted
            assert np.array_equal(outcome.result.labels, legacy.labels)
            assert np.array_equal(outcome.result.centers, legacy.centers)
            assert outcome.result.inertia == legacy.inertia

    def test_legacy_mini_batch_flag_honored(self, data):
        legacy = MiniBatchKMeans(5, batch_size=128, seed=0).fit(data)
        engine = ClusteringEngine(ClusteringConfig(), seed=0,
                                  mini_batch=True, batch_size=128)
        outcome = engine.refresh(data, 5)
        assert np.array_equal(outcome.result.labels, legacy.labels)
        assert np.array_equal(outcome.result.centers, legacy.centers)

    def test_cluster_matches_direct_kmeans(self, data):
        engine = ClusteringEngine(ClusteringConfig(), seed=0)
        direct = KMeans(4, seed=7, n_init=1).fit(data)
        result = engine.cluster(data, 4, seed=7, n_init=1)
        assert np.array_equal(result.labels, direct.labels)
        assert np.array_equal(result.centers, direct.centers)

    def test_cluster_mini_batch_override(self, data):
        engine = ClusteringEngine(ClusteringConfig(), seed=0, batch_size=128)
        direct = MiniBatchKMeans(4, batch_size=128, seed=2).fit(data)
        result = engine.cluster(data, 4, seed=2, mini_batch=True)
        assert np.array_equal(result.labels, direct.labels)

    def test_dedicated_config_seed_overrides_trainer_seed(self, data):
        engine = ClusteringEngine(ClusteringConfig(seed=11), seed=0)
        legacy = cluster_embeddings(data, 5, seed=11)
        outcome = engine.refresh(data, 5)
        assert np.array_equal(outcome.result.labels, legacy.labels)


@pytest.mark.parametrize("strategy", ["minibatch", "online"])
class TestApproximateStrategies:
    def test_nmi_against_exact(self, data, strategy):
        exact = cluster_embeddings(data, 5, seed=0)
        engine = ClusteringEngine(
            ClusteringConfig(strategy=strategy, sample_size=256,
                             reassign_chunk_size=128),
            seed=0,
        )
        outcome = engine.refresh(data, 5)
        assert outcome.strategy == strategy
        assert normalized_mutual_information(
            outcome.result.labels, exact.labels) >= 0.95

    def test_labels_cover_every_sample(self, data, strategy):
        engine = ClusteringEngine(ClusteringConfig(strategy=strategy,
                                                   sample_size=200), seed=0)
        result = engine.refresh(data, 5).result
        assert result.labels.shape == (data.shape[0],)
        assert result.centers.shape == (5, data.shape[1])
        assert result.inertia >= 0.0

    def test_cluster_is_stateless_and_deterministic(self, data, strategy):
        engine = ClusteringEngine(ClusteringConfig(strategy=strategy,
                                                   sample_size=200), seed=0)
        first = engine.cluster(data, 5, seed=3)
        engine.refresh(data, 5)  # stateful call in between must not matter
        second = engine.cluster(data, 5, seed=3)
        assert np.array_equal(first.labels, second.labels)
        assert np.array_equal(first.centers, second.centers)

    def test_too_few_samples_raise(self, data, strategy):
        engine = ClusteringEngine(ClusteringConfig(strategy=strategy), seed=0)
        with pytest.raises(ValueError, match="cannot form"):
            engine.refresh(data[:3], 5)


class TestWarmStart:
    def test_exact_warm_start_reuses_centers(self, data):
        engine = ClusteringEngine(ClusteringConfig(warm_start=True), seed=0)
        first = engine.refresh(data, 5)
        second = engine.refresh(data, 5)
        # Warm-started Lloyd from converged centers terminates immediately
        # with the same clustering.
        assert second.result.n_iter <= 2
        assert np.array_equal(first.result.labels, second.result.labels)

    def test_online_carries_counts_across_refreshes(self, data):
        engine = ClusteringEngine(ClusteringConfig(strategy="online",
                                                   sample_size=200), seed=0)
        assert engine.carries_state  # online always carries streaming state
        first = engine.refresh(data, 5)
        second = engine.refresh(data, 5)
        assert engine.refit_count == 2
        assert normalized_mutual_information(
            first.result.labels, second.result.labels) >= 0.95

    def test_carried_centers_view_is_read_only(self, data):
        engine = ClusteringEngine(ClusteringConfig(warm_start=True), seed=0)
        assert engine.centers is None
        engine.refresh(data, 5)
        view = engine.centers
        with pytest.raises(ValueError):
            view[0, 0] = 99.0

    def test_cluster_count_change_discards_state(self, data):
        engine = ClusteringEngine(ClusteringConfig(warm_start=True,
                                                   refresh_tolerance=10**9), seed=0)
        engine.refresh(data, 5, parameter_version=0)
        outcome = engine.refresh(data, 4, parameter_version=1)
        # k changed: the carried 5-center state cannot satisfy the request.
        assert outcome.refitted
        assert outcome.result.centers.shape[0] == 4


class TestRefreshTolerance:
    def test_small_drift_reassigns_only(self, data):
        engine = ClusteringEngine(
            ClusteringConfig(warm_start=True, refresh_tolerance=10), seed=0)
        first = engine.refresh(data, 5, parameter_version=100)
        assert first.refitted
        second = engine.refresh(data, 5, parameter_version=106)
        assert not second.refitted
        assert second.version_delta == 6
        assert np.array_equal(second.result.centers, first.result.centers)
        assert engine.refit_count == 1 and engine.refresh_count == 2

    def test_drift_accumulates_against_last_fit(self, data):
        engine = ClusteringEngine(
            ClusteringConfig(warm_start=True, refresh_tolerance=10), seed=0)
        engine.refresh(data, 5, parameter_version=100)
        assert not engine.refresh(data, 5, parameter_version=106).refitted
        # 12 > tolerance relative to the last *fit* (100), not the last call.
        third = engine.refresh(data, 5, parameter_version=112)
        assert third.refitted

    def test_zero_tolerance_always_refits(self, data):
        engine = ClusteringEngine(ClusteringConfig(warm_start=True), seed=0)
        engine.refresh(data, 5, parameter_version=100)
        assert engine.refresh(data, 5, parameter_version=100).refitted

    def test_without_version_always_refits(self, data):
        engine = ClusteringEngine(
            ClusteringConfig(warm_start=True, refresh_tolerance=10**9), seed=0)
        engine.refresh(data, 5)
        assert engine.refresh(data, 5).refitted


class TestPersistence:
    @pytest.mark.parametrize("strategy", ["exact", "minibatch", "online"])
    def test_state_round_trip_continues_identically(self, data, strategy):
        config = ClusteringConfig(strategy=strategy, sample_size=200,
                                  warm_start=True, refresh_tolerance=5)
        source = ClusteringEngine(config, seed=0)
        source.refresh(data, 5, parameter_version=50)

        meta, arrays = source.state_dict(parameter_version=50)
        # Simulate the manifest JSON round trip.
        import json

        meta = json.loads(json.dumps(meta))
        restored = ClusteringEngine(config, seed=0)
        # Version counters restart after a load; 7 stands in for the
        # arbitrary post-load counter the relative encoding must absorb.
        restored.load_state_dict(meta, arrays, parameter_version=7)

        continued = source.refresh(data, 5, parameter_version=53)
        resumed = restored.refresh(data, 5, parameter_version=10)
        assert resumed.refitted == continued.refitted
        assert np.array_equal(resumed.result.labels, continued.result.labels)
        assert np.array_equal(resumed.result.centers, continued.result.centers)

    def test_fresh_engine_state_is_empty(self):
        engine = ClusteringEngine(ClusteringConfig(), seed=0)
        meta, arrays = engine.state_dict()
        assert arrays == {}
        assert meta["num_clusters"] is None
        assert meta["version_behind"] is None
