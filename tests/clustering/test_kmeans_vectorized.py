"""Same-seed parity of the vectorized K-Means against the pre-vectorization
reference implementations.

The reference functions below are verbatim ports of the original Python
per-cluster loops (Lloyd update, Sculley mini-batch update).  With the same
seed the vectorized paths must reproduce identical assignments and matching
centers; the chunked assignment step must also be invariant to the chunk
size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.kmeans import (
    KMeans,
    MiniBatchKMeans,
    _assign_labels,
    _pairwise_sq_distances,
    kmeans_plus_plus_init,
)


def blobs(num_samples=300, num_clusters=5, dim=8, seed=0, spread=0.4):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(num_clusters, dim))
    assignments = rng.integers(num_clusters, size=num_samples)
    return centers[assignments] + rng.normal(scale=spread, size=(num_samples, dim))


def reference_lloyd(data, centers, num_clusters, max_iter=100, tol=1e-6):
    """The original per-cluster Python loop (pre-vectorization)."""
    labels = np.zeros(data.shape[0], dtype=np.int64)
    _iteration = 0
    for _iteration in range(1, max_iter + 1):
        distances = _pairwise_sq_distances(data, centers)
        labels = distances.argmin(axis=1)
        new_centers = centers.copy()
        for cluster in range(num_clusters):
            members = data[labels == cluster]
            if members.shape[0] > 0:
                new_centers[cluster] = members.mean(axis=0)
            else:
                farthest = distances.min(axis=1).argmax()
                new_centers[cluster] = data[farthest]
        shift = np.linalg.norm(new_centers - centers)
        centers = new_centers
        if shift <= tol:
            break
    distances = _pairwise_sq_distances(data, centers)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(data.shape[0]), labels].sum())
    return labels, centers, inertia, _iteration


def reference_minibatch(data, num_clusters, batch_size, max_iter, seed):
    """The original Sculley update looping over np.unique(assignments)."""
    rng = np.random.default_rng(seed)
    centers = kmeans_plus_plus_init(data, num_clusters, rng)
    counts = np.zeros(num_clusters)
    for _ in range(1, max_iter + 1):
        batch_idx = rng.choice(data.shape[0], size=min(batch_size, data.shape[0]),
                               replace=False)
        batch = data[batch_idx]
        assignments = _pairwise_sq_distances(batch, centers).argmin(axis=1)
        for cluster in np.unique(assignments):
            members = batch[assignments == cluster]
            counts[cluster] += members.shape[0]
            learning_rate = members.shape[0] / counts[cluster]
            centers[cluster] = (1.0 - learning_rate) * centers[cluster] + \
                learning_rate * members.mean(axis=0)
    distances = _pairwise_sq_distances(data, centers)
    labels = distances.argmin(axis=1)
    return labels, centers


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_lloyd_matches_reference(seed):
    data = blobs(seed=seed)
    rng = np.random.default_rng(seed)
    centers0 = kmeans_plus_plus_init(data, 5, rng)

    ref_labels, ref_centers, ref_inertia, ref_iters = reference_lloyd(data, centers0.copy(), 5)
    result = KMeans(5, seed=seed)._lloyd(data, centers0.copy())

    np.testing.assert_array_equal(result.labels, ref_labels)
    np.testing.assert_allclose(result.centers, ref_centers, atol=1e-10)
    assert result.n_iter == ref_iters
    assert result.inertia == pytest.approx(ref_inertia, rel=1e-12)


def test_lloyd_reseeds_empty_clusters_like_reference():
    # More clusters than natural blobs forces empty clusters during Lloyd.
    data = blobs(num_samples=40, num_clusters=2, seed=3)
    centers0 = np.vstack([data[:3], data[0] + 50.0])  # one unreachable center

    ref_labels, ref_centers, _, _ = reference_lloyd(data, centers0.copy(), 4)
    result = KMeans(4, seed=0)._lloyd(data, centers0.copy())

    np.testing.assert_array_equal(result.labels, ref_labels)
    np.testing.assert_allclose(result.centers, ref_centers, atol=1e-10)


@pytest.mark.parametrize("seed", [0, 1])
def test_minibatch_matches_reference(seed):
    data = blobs(num_samples=500, seed=seed)
    ref_labels, ref_centers = reference_minibatch(
        data, num_clusters=5, batch_size=64, max_iter=30, seed=seed
    )
    result = MiniBatchKMeans(5, batch_size=64, max_iter=30, seed=seed).fit(data)

    np.testing.assert_array_equal(result.labels, ref_labels)
    np.testing.assert_allclose(result.centers, ref_centers, atol=1e-10)


@pytest.mark.parametrize("chunk_size", [7, 64, 10_000])
def test_chunked_assignment_invariant_to_chunk_size(chunk_size):
    data = blobs(num_samples=200, seed=4)
    centers = kmeans_plus_plus_init(data, 6, np.random.default_rng(4))

    full = _pairwise_sq_distances(data, centers)
    expected_labels = full.argmin(axis=1)
    labels, min_sq = _assign_labels(data, centers, chunk_size)

    np.testing.assert_array_equal(labels, expected_labels)
    np.testing.assert_allclose(
        min_sq, full[np.arange(data.shape[0]), expected_labels], atol=1e-12
    )


@pytest.mark.parametrize("chunk_size", [0, -1])
def test_nonpositive_chunk_size_rejected(chunk_size):
    data = blobs(num_samples=50, seed=7)
    with pytest.raises(ValueError, match="chunk_size"):
        KMeans(3, seed=0, chunk_size=chunk_size).fit(data)


def test_same_seed_fit_is_deterministic_across_chunk_sizes():
    data = blobs(num_samples=400, seed=5)
    small = KMeans(5, seed=5, chunk_size=17).fit(data)
    large = KMeans(5, seed=5, chunk_size=100_000).fit(data)
    np.testing.assert_array_equal(small.labels, large.labels)
    np.testing.assert_allclose(small.centers, large.centers, atol=1e-10)


def test_semi_kmeans_pins_labels_after_vectorization():
    from repro.clustering.semi_kmeans import SemiSupervisedKMeans

    data = blobs(num_samples=150, num_clusters=3, seed=6)
    labeled_indices = np.arange(0, 30)
    labeled_classes = np.repeat(np.arange(3), 10)
    result = SemiSupervisedKMeans(4, seed=6).fit(data, labeled_indices, labeled_classes)
    np.testing.assert_array_equal(result.labels[labeled_indices], labeled_classes)
    assert result.centers.shape == (4, data.shape[1])
