"""Tests for the closed-form 1-D K-Means analysis used by Theorem 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory.gaussian_mixture import TwoGaussianMixture, from_alpha_gamma
from repro.theory.kmeans_1d import (
    expected_accuracies,
    expected_cluster_centers,
    h,
    optimal_threshold,
    simulate_kmeans_accuracy,
)


class TestExpectedClusterCenters:
    def test_symmetric_mixture_has_symmetric_centers(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=10.0, sigma1=1.0, sigma2=1.0)
        theta1, theta2 = expected_cluster_centers(mixture, s=5.0)
        assert theta1 == pytest.approx(10.0 - theta2, abs=1e-6)
        assert theta1 < 5.0 < theta2

    def test_centers_close_to_means_for_separated_mixture(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=20.0, sigma1=1.0, sigma2=1.5)
        theta1, theta2 = expected_cluster_centers(mixture, s=10.0)
        assert theta1 == pytest.approx(0.0, abs=0.1)
        assert theta2 == pytest.approx(20.0, abs=0.15)

    def test_extreme_threshold_degenerates_gracefully(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=10.0, sigma1=1.0, sigma2=1.0)
        theta1, theta2 = expected_cluster_centers(mixture, s=-1000.0)
        assert np.isfinite(theta1) and np.isfinite(theta2)


class TestFixedPoint:
    def test_h_is_increasing_near_midpoint(self):
        mixture = from_alpha_gamma(alpha=2.0, gamma=1.5)
        midpoint = (mixture.mu1 + mixture.mu2) / 2
        values = [h(mixture, s) for s in np.linspace(midpoint - 1, midpoint + 1, 9)]
        assert all(b > a for a, b in zip(values, values[1:], strict=False))

    def test_optimal_threshold_is_root_of_h(self):
        mixture = from_alpha_gamma(alpha=2.0, gamma=1.5)
        threshold = optimal_threshold(mixture)
        assert h(mixture, threshold) == pytest.approx(0.0, abs=1e-8)

    def test_symmetric_mixture_threshold_is_midpoint(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=8.0, sigma1=1.0, sigma2=1.0)
        assert optimal_threshold(mixture) == pytest.approx(4.0, abs=1e-6)

    def test_threshold_negatively_correlated_with_sigma1(self):
        # Proof of Theorem 1 point (1): with mu1, mu2, sigma2 held fixed, the
        # optimal partition threshold s* decreases as sigma1 grows.
        thresholds = []
        for sigma1 in (0.5, 0.7, 0.9):
            mixture = TwoGaussianMixture(mu1=0.0, mu2=5.0, sigma1=sigma1, sigma2=1.0)
            thresholds.append(optimal_threshold(mixture))
        assert thresholds[0] > thresholds[1] > thresholds[2]


class TestAccuracies:
    def test_high_separation_gives_high_accuracy(self):
        mixture = from_alpha_gamma(alpha=4.0, gamma=1.5)
        acc1, acc2 = expected_accuracies(mixture)
        assert acc1 > 0.95 and acc2 > 0.95

    def test_low_separation_gives_lower_accuracy(self):
        far = from_alpha_gamma(alpha=4.0, gamma=1.5)
        near = from_alpha_gamma(alpha=1.0, gamma=1.5)
        assert sum(expected_accuracies(near)) < sum(expected_accuracies(far))

    def test_explicit_threshold(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=10.0, sigma1=1.0, sigma2=1.0)
        acc1, acc2 = expected_accuracies(mixture, s=5.0)
        assert acc1 == pytest.approx(acc2)
        assert acc1 > 0.99

    def test_simulation_matches_closed_form(self):
        mixture = from_alpha_gamma(alpha=2.5, gamma=1.5)
        expected1, expected2 = expected_accuracies(mixture)
        simulated1, simulated2 = simulate_kmeans_accuracy(mixture, num_samples=30_000, seed=0)
        assert simulated1 == pytest.approx(expected1, abs=0.03)
        assert simulated2 == pytest.approx(expected2, abs=0.03)
