"""Numerical verification tests for Theorem 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory.theorem1 import (
    correlation,
    sweep_alpha,
    sweep_gamma,
    verify_theorem1_point1,
    verify_theorem1_point2,
)


class TestCorrelationHelper:
    def test_perfect_positive(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_nan(self):
        assert np.isnan(correlation([1, 1, 1], [1, 2, 3]))


class TestSweeps:
    def test_sweep_gamma_point_fields(self):
        points = sweep_gamma(alpha=2.0, gammas=[1.1, 1.5, 1.9])
        assert len(points) == 3
        assert all(0.0 <= p.acc1 <= 1.0 and 0.0 <= p.acc2 <= 1.0 for p in points)
        assert points[0].sigma1 > points[-1].sigma1  # sigma1 shrinks as gamma grows

    def test_sweep_alpha_accuracy_monotone(self):
        points = sweep_alpha(gamma=1.5, alphas=[1.0, 2.0, 3.0, 4.0])
        accs = [p.acc2 for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(accs, accs[1:], strict=False))


class TestTheorem1Point1:
    def test_holds_in_closed_form(self):
        report = verify_theorem1_point1(alpha=2.0)
        assert report["holds"]
        assert report["corr_acc2_sigma1"] > 0.9
        assert report["corr_acc2_gamma"] < -0.9

    def test_holds_for_other_alpha(self):
        report = verify_theorem1_point1(alpha=1.7)
        assert report["holds"]

    def test_holds_empirically(self):
        report = verify_theorem1_point1(
            alpha=2.0, gammas=np.linspace(1.1, 1.9, 5), empirical=True, seed=0
        )
        assert report["corr_acc2_sigma1"] > 0.5

    def test_alpha_out_of_range_raises(self):
        with pytest.raises(ValueError):
            verify_theorem1_point1(alpha=5.0)


class TestTheorem1Point2:
    def test_holds_in_closed_form(self):
        report = verify_theorem1_point2(gamma=1.5)
        assert report["holds"]
        assert report["min_acc1"] > 0.95
        assert report["min_acc2"] > 0.95

    def test_holds_for_gamma_near_two(self):
        report = verify_theorem1_point2(gamma=1.9)
        assert report["holds"]

    def test_holds_empirically(self):
        report = verify_theorem1_point2(gamma=1.5, alphas=[3.5, 4.0], empirical=True, seed=1)
        assert report["min_acc1"] > 0.9 and report["min_acc2"] > 0.9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            verify_theorem1_point2(gamma=2.5)
        with pytest.raises(ValueError):
            verify_theorem1_point2(gamma=1.5, alphas=[2.0, 4.0])
