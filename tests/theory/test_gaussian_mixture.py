"""Tests for the two-Gaussian theoretical model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory.gaussian_mixture import TwoGaussianMixture, from_alpha_gamma


class TestTwoGaussianMixture:
    def test_alpha_and_gamma(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=6.0, sigma1=1.0, sigma2=2.0)
        assert mixture.alpha == pytest.approx(2.0)
        assert mixture.gamma == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TwoGaussianMixture(mu1=0.0, mu2=1.0, sigma1=-1.0, sigma2=1.0)
        with pytest.raises(ValueError):
            TwoGaussianMixture(mu1=1.0, mu2=0.0, sigma1=1.0, sigma2=1.0)

    def test_sampling_statistics(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=10.0, sigma1=1.0, sigma2=2.0)
        values, labels = mixture.sample(20_000, seed=0)
        assert values.shape == (20_000,)
        class0 = values[labels == 0]
        class1 = values[labels == 1]
        assert class0.mean() == pytest.approx(0.0, abs=0.05)
        assert class1.mean() == pytest.approx(10.0, abs=0.1)
        assert class0.std() == pytest.approx(1.0, rel=0.05)
        assert class1.std() == pytest.approx(2.0, rel=0.05)

    def test_density_integrates_to_one(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=5.0, sigma1=1.0, sigma2=1.5)
        xs = np.linspace(-10, 20, 5_000)
        integral = np.trapezoid(mixture.density(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_equal_priors(self):
        mixture = TwoGaussianMixture(mu1=0.0, mu2=5.0, sigma1=1.0, sigma2=1.0)
        _, labels = mixture.sample(10_000, seed=1)
        assert labels.mean() == pytest.approx(0.5, abs=0.02)


class TestFromAlphaGamma:
    def test_construction(self):
        mixture = from_alpha_gamma(alpha=2.0, gamma=1.5, sigma1=1.0)
        assert mixture.sigma1 == 1.0
        assert mixture.sigma2 == 1.5
        assert mixture.mu2 - mixture.mu1 == pytest.approx(2.0 * (1.0 + 1.5))
        assert mixture.alpha == pytest.approx(2.0)
        assert mixture.gamma == pytest.approx(1.5)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            from_alpha_gamma(alpha=0.0, gamma=1.5)
        with pytest.raises(ValueError):
            from_alpha_gamma(alpha=2.0, gamma=0.5)
