"""Thread-safety of obs instruments under contention.

These tests hammer shared instruments from many threads and assert no
increments are lost and no reader observes torn state. They are written to
run under the lock-order sanitizer (``pytest --sanitize``): instrument locks
are leaves, so no test takes an outer lock around an instrument call.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

THREADS = 8
ITERATIONS = 2000


def hammer(worker, threads=THREADS):
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait(timeout=10)
        worker(index)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestCounterContention:
    def test_no_lost_increments(self):
        counter = MetricsRegistry().counter("c_total")
        hammer(lambda _i: [counter.inc() for _ in range(ITERATIONS)])
        assert counter.value() == THREADS * ITERATIONS

    def test_labelled_children_created_concurrently(self):
        # All threads race to create the same label children on first inc.
        counter = MetricsRegistry().counter("c_total", labelnames=("k",))
        hammer(lambda i: [counter.inc(k=str(i % 2))
                          for _ in range(ITERATIONS)])
        assert counter.total() == THREADS * ITERATIONS
        assert counter.value(k="0") + counter.value(k="1") == counter.total()


class TestHistogramContention:
    def test_count_and_buckets_consistent(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", buckets=(1.0, 2.0, 4.0))
        hammer(lambda i: [histogram.observe(float(i % 4))
                          for _ in range(ITERATIONS)])
        total = THREADS * ITERATIONS
        assert histogram.count() == total
        samples = {
            (suffix, labelvalues): value
            for suffix, _names, labelvalues, value in histogram.samples()
        }
        assert samples[("_bucket", ("+Inf",))] == total
        assert samples[("_count", ())] == total


class TestReadersDuringWrites:
    def test_render_is_parseable_mid_storm(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("k",))
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        stop = threading.Event()
        failures = []

        def write(index):
            while not stop.is_set():
                counter.inc(k=str(index))
                histogram.observe(0.5)

        def read():
            from tests.obs.test_prometheus_format import parse_prometheus
            for _ in range(50):
                try:
                    parse_prometheus(registry.render_prometheus())
                    registry.summary()
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(exc)
        writers = [threading.Thread(target=write, args=(i,)) for i in range(4)]
        readers = [threading.Thread(target=read) for _ in range(2)]
        for thread in writers + readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        for thread in writers:
            thread.join()
        assert failures == []


class TestTracerContention:
    def test_total_spans_accounted(self):
        tracer = Tracer(max_spans=100)
        hammer(lambda _i: [tracer.span("s").__enter__().__exit__(None, None, None)
                           for _ in range(200)])
        stats = tracer.stats()
        assert stats["spans_total"] == THREADS * 200
        assert stats["spans_recorded"] == 100
        assert stats["spans_dropped"] == stats["spans_total"] - 100
