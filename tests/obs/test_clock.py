"""Injectable clock: SystemClock realism, ManualClock determinism, swapping."""

from __future__ import annotations

import pytest

from repro.obs.clock import (
    ManualClock,
    SystemClock,
    get_clock,
    monotonic,
    set_clock,
    wall_time,
)


class TestSystemClock:
    def test_monotonic_never_goes_backwards(self):
        clock = SystemClock()
        samples = [clock.monotonic() for _ in range(100)]
        assert samples == sorted(samples)

    def test_wall_is_epoch_scale(self):
        # Sanity: epoch seconds, not perf_counter ticks (post-2020).
        assert SystemClock().wall() > 1.5e9


class TestManualClock:
    def test_advances_both_sources_in_lockstep(self):
        clock = ManualClock(monotonic=10.0, wall=500.0)
        clock.advance(2.5)
        assert clock.monotonic() == 12.5
        assert clock.wall() == 502.5

    def test_advance_returns_self_for_chaining(self):
        clock = ManualClock()
        assert clock.advance(1.0).advance(2.0).monotonic() == 3.0

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError, match="backwards"):
            ManualClock().advance(-0.1)


class TestProcessClock:
    def test_default_is_system_clock(self, manual_clock):
        # The fixture swapped the clock in; restoring must hand back a
        # SystemClock (nothing else in the suite leaves a manual one).
        previous = set_clock(manual_clock)
        assert previous is manual_clock  # fixture's clock was current
        set_clock(manual_clock)

    def test_module_shortcuts_follow_installed_clock(self, manual_clock):
        assert monotonic() == 100.0
        assert wall_time() == 1_000_000.0
        manual_clock.advance(5.0)
        assert monotonic() == 105.0
        assert wall_time() == 1_000_005.0

    def test_set_clock_returns_previous(self):
        replacement = ManualClock()
        previous = set_clock(replacement)
        try:
            assert get_clock() is replacement
        finally:
            assert set_clock(previous) is replacement
