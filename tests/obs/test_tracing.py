"""Span tracing: nesting, self-time, threads, exports, and the fast path."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.tracing import Tracer


@pytest.fixture()
def tracer():
    return Tracer()


class TestSpanNesting:
    def test_paths_and_depth(self, tracer, manual_clock):
        with tracer.span("outer"):
            with tracer.span("inner"):
                manual_clock.advance(1.0)
        records = {record["name"]: record for record in tracer.records()}
        assert records["inner"]["path"] == "outer;inner"
        assert records["inner"]["depth"] == 1
        assert records["outer"]["path"] == "outer"
        assert records["outer"]["depth"] == 0
        # Children complete (and record) before their parents.
        assert [r["name"] for r in tracer.records()] == ["inner", "outer"]

    def test_self_time_excludes_children(self, tracer, manual_clock):
        with tracer.span("outer"):
            manual_clock.advance(1.0)
            with tracer.span("inner"):
                manual_clock.advance(2.0)
            manual_clock.advance(0.5)
        records = {record["name"]: record for record in tracer.records()}
        assert records["outer"]["duration"] == pytest.approx(3.5)
        assert records["inner"]["duration"] == pytest.approx(2.0)
        assert records["outer"]["self"] == pytest.approx(1.5)
        assert records["inner"]["self"] == pytest.approx(2.0)

    def test_attrs_and_wall_start_recorded(self, tracer, manual_clock):
        with tracer.span("stage", layer=3):
            manual_clock.advance(1.0)
        (record,) = tracer.records()
        assert record["attrs"] == {"layer": 3}
        assert record["start"] == pytest.approx(1_000_000.0)

    def test_exception_marks_error_and_unwinds(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        records = {record["name"]: record for record in tracer.records()}
        assert records["inner"]["error"] == "RuntimeError"
        assert records["outer"]["error"] == "RuntimeError"
        # The stacks unwound: a new root span is depth 0 again.
        with tracer.span("fresh"):
            pass
        assert tracer.records()[-1]["depth"] == 0

    def test_threads_keep_independent_stacks(self, tracer):
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait(timeout=5)

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Both spans overlapped in time, yet neither nests under the other.
        assert {record["path"] for record in tracer.records()} == {"t0", "t1"}
        assert all(record["depth"] == 0 for record in tracer.records())


class TestTracerBookkeeping:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        stats = tracer.stats()
        assert stats == {"spans_recorded": 3, "spans_total": 5,
                         "spans_dropped": 2}
        assert [r["name"] for r in tracer.records()] == ["s2", "s3", "s4"]

    def test_reset_clears_records(self, tracer):
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.records() == []
        assert tracer.stats()["spans_total"] == 0


class TestExports:
    def test_jsonl_round_trips(self, tracer, manual_clock):
        with tracer.span("a", key="v"):
            manual_clock.advance(1.0)
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 1
        decoded = json.loads(lines[0])
        assert decoded["name"] == "a"
        assert decoded["duration"] == pytest.approx(1.0)

    def test_flame_report_aggregates_by_path(self, tracer, manual_clock):
        for _ in range(3):
            with tracer.span("root"):
                manual_clock.advance(1.0)
                with tracer.span("child"):
                    manual_clock.advance(1.0)
        report = tracer.flame_report()
        lines = report.splitlines()
        assert "span" in lines[0] and "calls" in lines[0]
        root_line = next(line for line in lines if line.startswith("root"))
        assert " 3 " in root_line  # 3 calls aggregated
        child_line = next(line for line in lines if "child" in line)
        assert child_line.startswith("  ")  # indented under its root

    def test_flame_report_empty(self, tracer):
        assert "no spans" in tracer.flame_report()


class TestModuleFastPath:
    def test_disabled_span_is_shared_noop(self, clean_obs):
        first = obs.span("anything", key=1)
        second = obs.span("else")
        assert first is second  # the shared _NULL_SPAN singleton
        with obs.span("not.recorded"):
            pass
        assert obs.TRACER.records() == []

    def test_enabled_span_records(self, clean_obs):
        obs.configure(enabled=True)
        with obs.span("recorded"):
            pass
        assert [r["name"] for r in obs.TRACER.records()] == ["recorded"]
