"""Fixtures for the observability tests: clock injection + global isolation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.clock import ManualClock, set_clock


@pytest.fixture()
def manual_clock():
    """Install a ManualClock process-wide; restore the real clock after."""
    clock = ManualClock(monotonic=100.0, wall=1_000_000.0)
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


@pytest.fixture()
def clean_obs():
    """Zeroed global obs state (metrics/spans/events), tracing disabled."""
    obs.reset()
    was_enabled = obs.enabled()
    obs.configure(enabled=False)
    try:
        yield obs
    finally:
        obs.configure(enabled=was_enabled)
        obs.reset()
