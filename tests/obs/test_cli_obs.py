"""``repro obs`` subcommand: summary, export, and trace-report."""

from __future__ import annotations

import json

from repro import obs
from repro.experiments.cli import build_parser, main


class TestParser:
    def test_actions_and_defaults(self):
        args = build_parser().parse_args(["obs", "summary"])
        assert args.action == "summary"
        assert args.jsonl is None
        assert args.prometheus is False
        args = build_parser().parse_args(
            ["obs", "trace-report", "--top", "7"])
        assert args.top == 7


class TestSummary:
    def test_reports_process_state(self, clean_obs, capsys):
        obs.REGISTRY.counter("repro_demo_total", "Demo.").inc(4)
        result = main(["obs", "summary"])
        assert result["enabled"] is False
        assert result["metrics"]["repro_demo_total"]["values"][""] == 4.0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["metrics"]["repro_demo_total"]["kind"] == "counter"

    def test_prometheus_flag_renders_exposition(self, clean_obs, capsys):
        obs.REGISTRY.counter("repro_demo_total", "Demo.").inc()
        main(["obs", "summary", "--prometheus"])
        out = capsys.readouterr().out
        assert "# TYPE repro_demo_total counter" in out
        assert "repro_demo_total 1" in out


class TestTraceReport:
    def test_flame_output(self, clean_obs, capsys):
        obs.configure(enabled=True)
        with obs.span("cli.root"):
            with obs.span("cli.child"):
                pass
        result = main(["obs", "trace-report"])
        assert result["tracing"]["spans_total"] == 2
        out = capsys.readouterr().out
        assert "cli.root" in out
        assert "cli.child" in out


class TestExport:
    def test_jsonl_file_contains_all_record_kinds(self, clean_obs, tmp_path):
        obs.configure(enabled=True)
        obs.REGISTRY.counter("repro_demo_total", "Demo.").inc()
        with obs.span("exported"):
            pass
        obs.EVENTS.info("hello", source="test")
        path = tmp_path / "dump.jsonl"
        result = main(["obs", "export", "--jsonl", str(path)])
        assert result["records"] == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {row["record"] for row in rows}
        assert kinds == {"metric", "span", "event"}
        (metric,) = [row for row in rows if row["record"] == "metric"]
        assert metric["name"] == "repro_demo_total"
        assert metric["value"] == 1.0

    def test_export_without_path_returns_report(self, clean_obs, capsys):
        obs.EVENTS.error("boom", source="test")
        result = main(["obs", "export"])
        assert result["records"] == 1
        decoded = json.loads(capsys.readouterr().out.strip())
        assert decoded["record"] == "event"
        assert decoded["message"] == "boom"
