"""Instrument semantics: counters, gauges, histograms, and the registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("c_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_partition_the_count(self, registry):
        counter = registry.counter("c_total", labelnames=("k",))
        counter.inc(k="a")
        counter.inc(2, k="b")
        assert counter.value(k="a") == 1.0
        assert counter.value(k="b") == 2.0
        assert counter.value(k="never") == 0.0
        assert counter.total() == 3.0

    def test_rejects_negative_increment(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("c_total").inc(-1)

    def test_rejects_wrong_label_set(self, registry):
        counter = registry.counter("c_total", labelnames=("k",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc()
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(k="a", extra="b")

    def test_rejects_invalid_names(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("1starts-with-digit")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labelnames=("bad-label",))


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12.0

    def test_can_go_negative(self, registry):
        gauge = registry.gauge("g")
        gauge.dec(2)
        assert gauge.value() == -2.0


class TestHistogram:
    def test_default_buckets_are_log_scale(self):
        ratios = {
            round(b / a)
            for a, b in zip(DEFAULT_LATENCY_BUCKETS[:-1],
                            DEFAULT_LATENCY_BUCKETS[1:], strict=True)
        }
        assert ratios == {2}
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(5e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 5.0  # covers multi-second stalls

    def test_observe_counts_and_sums(self, registry):
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count() == 4
        samples = {
            (suffix, labelvalues): value
            for suffix, _names, labelvalues, value in histogram.samples()
        }
        # Cumulative buckets: <=1 has 1, <=2 has 2, <=4 has 3, +Inf has all.
        assert samples[("_bucket", ("1",))] == 1
        assert samples[("_bucket", ("2",))] == 2
        assert samples[("_bucket", ("4",))] == 3
        assert samples[("_bucket", ("+Inf",))] == 4
        assert samples[("_count", ())] == 4
        assert samples[("_sum", ())] == pytest.approx(105.0)

    def test_boundary_lands_in_its_bucket(self, registry):
        # Prometheus buckets are upper-inclusive: observe(le) counts in le.
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        samples = {
            (suffix, labelvalues): value
            for suffix, _names, labelvalues, value in histogram.samples()
        }
        assert samples[("_bucket", ("1",))] == 1

    def test_quantile_estimates(self, registry):
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 0.6, 0.7, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.99) == 4.0
        assert registry.histogram(
            "h_empty", buckets=(1.0,)).quantile(0.5) is None
        with pytest.raises(ValueError, match="quantile"):
            histogram.quantile(1.5)

    def test_time_context_manager(self, registry, manual_clock):
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        with histogram.time():
            manual_clock.advance(1.5)
        assert histogram.count() == 1
        samples = {
            (suffix, labelvalues): value
            for suffix, _names, labelvalues, value in histogram.samples()
        }
        assert samples[("_sum", ())] == pytest.approx(1.5)
        assert samples[("_bucket", ("2",))] == 1

    def test_rejects_bad_buckets(self, registry):
        with pytest.raises(ValueError, match="at least one bucket"):
            registry.histogram("h1", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h2", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        first = registry.counter("c_total", "help me")
        second = registry.counter("c_total")
        assert first is second
        assert registry.get("c_total") is first
        assert registry.get("missing") is None

    def test_kind_mismatch_raises(self, registry):
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("name")

    def test_labelnames_mismatch_raises(self, registry):
        registry.counter("name", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered with labels"):
            registry.counter("name", labelnames=("b",))

    def test_reset_zeroes_in_place(self, registry):
        # The property module-level instrument references depend on:
        # reset() must zero the *existing* objects, not replace them.
        counter = registry.counter("c_total")
        counter.inc(5)
        registry.reset()
        assert registry.get("c_total") is counter
        assert counter.value() == 0.0
        counter.inc()
        assert counter.value() == 1.0

    def test_summary_and_prefix_filter(self, registry):
        registry.counter("repro_a_total").inc()
        registry.gauge("other_g").set(2)
        summary = registry.summary(prefix="repro_")
        assert set(summary) == {"repro_a_total"}
        assert summary["repro_a_total"]["kind"] == "counter"
        assert registry.summary()["other_g"]["values"][""] == 2.0

    def test_export_rows_are_flat_and_json_able(self, registry):
        import json

        registry.counter("c_total", labelnames=("k",)).inc(k="x")
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        rows = list(registry.export_rows())
        names = {row["name"] for row in rows}
        assert "c_total" in names
        assert "h_seconds_bucket" in names
        assert "h_seconds_sum" in names
        for row in rows:
            assert row["record"] == "metric"
            json.dumps(row)  # must not raise
