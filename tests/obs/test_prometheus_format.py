"""Prometheus text exposition format round-trip (strict parser).

The parser below implements the text format 0.0.4 rules the repo relies on
— written here, from the spec, with **no new dependencies**:

* comment lines are ``# HELP <name> <docstring>`` or ``# TYPE <name> <type>``
  with ``<type>`` one of counter/gauge/histogram/summary/untyped;
* a ``# TYPE`` line must precede its metric's samples and appear only once;
* sample lines are ``name{label="value",...} value`` where the metric name
  matches ``[a-zA-Z_:][a-zA-Z0-9_:]*``, label names match
  ``[a-zA-Z_][a-zA-Z0-9_]*``, label values are double-quoted with ``\\``,
  ``\"`` and ``\n`` escapes, and the value parses as a float (``+Inf``,
  ``-Inf`` and ``NaN`` allowed);
* histogram samples use the ``_bucket``/``_sum``/``_count`` suffixes, the
  ``le`` label, cumulative bucket counts, and a ``+Inf`` bucket equal to
  ``_count``.

Everything :meth:`MetricsRegistry.render_prometheus` emits must survive this
parser — the same guarantee ``GET /metrics`` needs for real scrapers.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.metrics import MetricsRegistry

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')
VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_prometheus(text: str) -> dict:
    """Strict parse of the exposition; raises AssertionError on violations.

    Returns ``{metric_name: {"type": str, "help": str | None,
    "samples": {(sample_name, (label, value) pairs): float}}}`` keyed by the
    *family* name (``_bucket``/``_sum``/``_count`` suffixes fold into their
    histogram).
    """
    families: dict = {}
    current_family = None
    for line_number, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        where = f"line {line_number}: {line!r}"
        if line.startswith("#"):
            parts = line.split(" ", 3)
            assert len(parts) >= 3, f"malformed comment at {where}"
            assert parts[0] == "#", f"comment must start '# ' at {where}"
            kind, name = parts[1], parts[2]
            assert kind in ("HELP", "TYPE"), f"unknown comment kind at {where}"
            assert METRIC_NAME.match(name), f"bad metric name at {where}"
            family = families.setdefault(
                name, {"type": None, "help": None, "samples": {}})
            if kind == "HELP":
                assert family["help"] is None, f"duplicate HELP at {where}"
                family["help"] = parts[3] if len(parts) > 3 else ""
            else:
                assert len(parts) == 4, f"TYPE needs a type at {where}"
                assert parts[3] in VALID_TYPES, f"bad type at {where}"
                assert family["type"] is None, f"duplicate TYPE at {where}"
                assert not family["samples"], f"TYPE after samples at {where}"
                family["type"] = parts[3]
                current_family = name
            continue
        match = SAMPLE_LINE.match(line)
        assert match is not None, f"malformed sample at {where}"
        sample_name = match.group("name")
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                family_name = base
                break
        assert family_name in families, f"sample without TYPE at {where}"
        assert family_name == current_family, f"interleaved sample at {where}"
        labels = []
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = LABEL_PAIR.sub("", raw_labels)
            assert set(consumed) <= {","}, f"malformed labels at {where}"
            for pair in LABEL_PAIR.finditer(raw_labels):
                assert LABEL_NAME.match(pair.group("name")), \
                    f"bad label name at {where}"
                value = (pair.group("value")
                         .replace(r"\"", '"').replace(r"\n", "\n")
                         .replace("\\\\", "\\"))
                labels.append((pair.group("name"), value))
        raw_value = match.group("value")
        if raw_value in ("+Inf", "Inf"):
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        elif raw_value == "NaN":
            value = math.nan
        else:
            value = float(raw_value)  # raises on garbage
        key = (sample_name, tuple(labels))
        samples = families[family_name]["samples"]
        assert key not in samples, f"duplicate sample at {where}"
        samples[key] = value
    return families


def check_histogram_invariants(family: dict, name: str) -> None:
    """Cumulative buckets, +Inf bucket == _count, consistent label sets."""
    by_labels: dict = {}
    for (sample_name, labels), value in family["samples"].items():
        extra = dict(labels)
        le = extra.pop("le", None)
        group = by_labels.setdefault(tuple(sorted(extra.items())),
                                     {"buckets": [], "sum": None, "count": None})
        if sample_name == f"{name}_bucket":
            assert le is not None, f"{name}_bucket without le"
            bound = math.inf if le == "+Inf" else float(le)
            group["buckets"].append((bound, value))
        elif sample_name == f"{name}_sum":
            group["sum"] = value
        elif sample_name == f"{name}_count":
            group["count"] = value
    for labels, group in by_labels.items():
        buckets = sorted(group["buckets"])
        assert buckets, f"{name}{labels}: no buckets"
        counts = [count for _bound, count in buckets]
        assert counts == sorted(counts), f"{name}{labels}: not cumulative"
        assert buckets[-1][0] == math.inf, f"{name}{labels}: missing +Inf"
        assert group["count"] is not None and group["sum"] is not None
        assert buckets[-1][1] == group["count"], \
            f"{name}{labels}: +Inf bucket != _count"


@pytest.fixture()
def populated_registry():
    registry = MetricsRegistry()
    requests = registry.counter(
        "repro_serve_requests_total", "HTTP requests served.",
        labelnames=("endpoint", "status"))
    requests.inc(endpoint="/predict", status="200")
    requests.inc(3, endpoint="/predict", status="400")
    requests.inc(endpoint="/stats", status="200")
    registry.gauge("repro_serve_inflight_requests",
                   "In-flight requests.").set(2)
    latency = registry.histogram(
        "repro_serve_request_seconds", "Request latency.",
        labelnames=("endpoint",))
    for value in (0.0001, 0.0002, 0.004, 1.0):
        latency.observe(value, endpoint="/predict")
    registry.counter("repro_unused_total", "Registered but never incremented.")
    return registry


class TestRenderParsesStrictly:
    def test_round_trip(self, populated_registry):
        text = populated_registry.render_prometheus()
        families = parse_prometheus(text)
        requests = families["repro_serve_requests_total"]
        assert requests["type"] == "counter"
        assert requests["help"] == "HTTP requests served."
        assert requests["samples"][(
            "repro_serve_requests_total",
            (("endpoint", "/predict"), ("status", "400")))] == 3.0
        gauge = families["repro_serve_inflight_requests"]
        assert gauge["samples"][("repro_serve_inflight_requests", ())] == 2.0
        histogram = families["repro_serve_request_seconds"]
        assert histogram["type"] == "histogram"
        check_histogram_invariants(histogram, "repro_serve_request_seconds")
        count_key = ("repro_serve_request_seconds_count",
                     (("endpoint", "/predict"),))
        assert histogram["samples"][count_key] == 4.0

    def test_unpopulated_metric_still_advertises_schema(self, populated_registry):
        families = parse_prometheus(populated_registry.render_prometheus())
        unused = families["repro_unused_total"]
        assert unused["type"] == "counter"
        assert unused["samples"] == {}

    def test_label_escaping_survives(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "x", labelnames=("k",))
        hostile = 'quote " backslash \\ newline \n end'
        counter.inc(k=hostile)
        families = parse_prometheus(registry.render_prometheus())
        (key,) = families["c_total"]["samples"]
        assert dict(key[1])["k"] == hostile

    def test_parser_rejects_garbage(self):
        with pytest.raises(AssertionError, match="without TYPE"):
            parse_prometheus("no_type_metric 1\n")
        with pytest.raises(AssertionError, match="malformed sample"):
            parse_prometheus("# TYPE x counter\nx{unterminated 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x counter\nx not-a-number\n")
