"""EventLog: levels, bounded capacity, filtering, counters."""

from __future__ import annotations

import pytest

from repro.obs.events import DEFAULT_CAPACITY, LEVELS, EventLog


class TestEventLog:
    def test_levels_and_shorthands(self, manual_clock):
        log = EventLog()
        log.debug("d", source="s1")
        log.info("i")
        log.warning("w")
        log.error("e", source="s2", status=500)
        events = log.snapshot()
        assert [event["level"] for event in events] == list(LEVELS)
        assert events[0]["source"] == "s1"
        assert events[3]["status"] == 500
        assert all(event["ts"] == 1_000_000.0 for event in events)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown level"):
            EventLog().log("trace", "nope")

    def test_capacity_bounds_memory_but_not_counts(self):
        log = EventLog(capacity=3)
        for index in range(10):
            log.debug(f"m{index}")
        events = log.snapshot()
        assert [event["message"] for event in events] == ["m7", "m8", "m9"]
        assert log.counts()["debug"] == 10  # counts survive eviction

    def test_snapshot_filters_level_and_limit(self):
        log = EventLog()
        log.debug("d1")
        log.error("e1")
        log.debug("d2")
        assert [e["message"] for e in log.snapshot(level="debug")] == ["d1", "d2"]
        assert [e["message"] for e in log.snapshot(limit=1)] == ["d2"]
        assert [e["message"]
                for e in log.snapshot(level="debug", limit=1)] == ["d2"]

    def test_snapshot_returns_copies(self):
        log = EventLog()
        log.debug("original")
        log.snapshot()[0]["message"] = "mutated"
        assert log.snapshot()[0]["message"] == "original"

    def test_reset(self):
        log = EventLog()
        log.debug("gone")
        log.reset()
        assert log.snapshot() == []
        assert log.counts() == dict.fromkeys(LEVELS, 0)

    def test_default_capacity_is_bounded(self):
        assert 0 < DEFAULT_CAPACITY <= 65536
