"""Tests for the Hungarian algorithm, including comparison with scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.assignment.hungarian import hungarian, max_profit_assignment


class TestKnownCases:
    def test_identity_cost(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        rows, cols = hungarian(cost)
        assert cost[rows, cols].sum() == 0.0

    def test_classic_example(self):
        cost = np.array([
            [4.0, 1.0, 3.0],
            [2.0, 0.0, 5.0],
            [3.0, 2.0, 2.0],
        ])
        rows, cols = hungarian(cost)
        assert cost[rows, cols].sum() == pytest.approx(5.0)

    def test_rectangular_wide(self):
        cost = np.array([[1.0, 2.0, 0.0], [2.0, 0.0, 5.0]])
        rows, cols = hungarian(cost)
        assert len(rows) == 2
        assert cost[rows, cols].sum() == pytest.approx(0.0)

    def test_rectangular_tall(self):
        cost = np.array([[1.0, 2.0], [2.0, 0.0], [0.0, 5.0]])
        rows, cols = hungarian(cost)
        assert len(rows) == 2
        assert cost[rows, cols].sum() == pytest.approx(0.0)

    def test_single_element(self):
        rows, cols = hungarian(np.array([[7.0]]))
        assert rows.tolist() == [0] and cols.tolist() == [0]

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            hungarian(np.zeros(3))

    def test_assignment_is_a_matching(self):
        rng = np.random.default_rng(0)
        cost = rng.random((6, 6))
        rows, cols = hungarian(cost)
        assert len(set(rows.tolist())) == 6
        assert len(set(cols.tolist())) == 6


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_square_matrices_match_scipy_cost(self, seed):
        rng = np.random.default_rng(seed)
        size = rng.integers(2, 12)
        cost = rng.random((size, size)) * 10
        rows, cols = hungarian(cost)
        ref_rows, ref_cols = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(cost[ref_rows, ref_cols].sum(), abs=1e-8)

    @pytest.mark.parametrize("shape", [(3, 7), (7, 3), (1, 5), (5, 1)])
    def test_rectangular_matrices_match_scipy_cost(self, shape):
        rng = np.random.default_rng(shape[0] * 10 + shape[1])
        cost = rng.random(shape) * 5
        rows, cols = hungarian(cost)
        ref_rows, ref_cols = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(cost[ref_rows, ref_cols].sum(), abs=1e-8)

    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_property_optimal_cost_matches_scipy(self, size, seed):
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, 20, size=(size, size)).astype(float)
        rows, cols = hungarian(cost)
        ref_rows, ref_cols = linear_sum_assignment(cost)
        assert cost[rows, cols].sum() == pytest.approx(cost[ref_rows, ref_cols].sum(), abs=1e-8)


class TestMaxProfit:
    def test_maximizes_profit(self):
        profit = np.array([[10.0, 1.0], [1.0, 10.0]])
        rows, cols = max_profit_assignment(profit)
        assert profit[rows, cols].sum() == pytest.approx(20.0)

    def test_matches_scipy_maximize(self):
        rng = np.random.default_rng(5)
        profit = rng.random((7, 7))
        rows, cols = max_profit_assignment(profit)
        ref_rows, ref_cols = linear_sum_assignment(profit, maximize=True)
        assert profit[rows, cols].sum() == pytest.approx(profit[ref_rows, ref_cols].sum(), abs=1e-8)
