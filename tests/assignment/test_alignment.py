"""Tests for cluster-class alignment and clustering accuracy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assignment.alignment import (
    align_clusters_to_classes,
    clustering_accuracy,
    contingency_matrix,
    hungarian_accuracy_mapping,
)


class TestContingency:
    def test_counts(self):
        clusters = np.array([0, 0, 1, 1, 2])
        classes = np.array([1, 1, 0, 1, 0])
        matrix = contingency_matrix(clusters, classes)
        assert matrix.shape == (3, 2)
        assert matrix[0, 1] == 2
        assert matrix[1, 0] == 1
        assert matrix.sum() == 5

    def test_explicit_sizes(self):
        matrix = contingency_matrix(np.array([0]), np.array([0]), num_clusters=4, num_classes=3)
        assert matrix.shape == (4, 3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            contingency_matrix(np.array([0, 1]), np.array([0]))


class TestAlignment:
    def test_perfect_alignment(self):
        # Clusters 0,1,2 correspond exactly to classes 10,20,30.
        clusters = np.array([0, 0, 1, 1, 2, 2])
        classes = np.array([10, 10, 20, 20, 30, 30])
        alignment = align_clusters_to_classes(
            clusters, classes, num_clusters=3, known_classes=np.array([10, 20, 30])
        )
        assert alignment.mapping[0] == 10
        assert alignment.mapping[1] == 20
        assert alignment.mapping[2] == 30
        assert alignment.unmatched_clusters.size == 0

    def test_unmatched_clusters_get_novel_ids(self):
        clusters = np.array([0, 0, 1, 1])
        classes = np.array([5, 5, 7, 7])
        alignment = align_clusters_to_classes(
            clusters, classes, num_clusters=4, known_classes=np.array([5, 7]),
            total_num_classes=2,
        )
        assert set(alignment.unmatched_clusters.tolist()) == {2, 3}
        novel_ids = {alignment.mapping[2], alignment.mapping[3]}
        assert novel_ids == {2, 3}

    def test_apply_translates_labels(self):
        clusters = np.array([0, 1, 0, 2])
        classes = np.array([3, 4, 3, 3])
        alignment = align_clusters_to_classes(
            clusters[: 3], classes[: 3], num_clusters=3, known_classes=np.array([3, 4])
        )
        predictions = alignment.apply(clusters)
        assert predictions[0] == 3
        assert predictions[1] == 4
        # Cluster 2 was never seen in the labeled data -> novel id.
        assert predictions[3] not in (3, 4)

    def test_permuted_clusters_still_align(self):
        rng = np.random.default_rng(0)
        classes = rng.integers(0, 3, size=60)
        permutation = np.array([2, 0, 1])
        clusters = permutation[classes]
        alignment = align_clusters_to_classes(
            clusters, classes, num_clusters=3, known_classes=np.array([0, 1, 2])
        )
        recovered = alignment.apply(clusters)
        np.testing.assert_array_equal(recovered, classes)


class TestClusteringAccuracy:
    def test_perfect_after_permutation(self):
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 4, size=100)
        permutation = np.array([3, 2, 0, 1])
        predictions = permutation[targets]
        assert clustering_accuracy(predictions, targets) == pytest.approx(1.0)

    def test_random_predictions_score_low(self):
        rng = np.random.default_rng(2)
        targets = rng.integers(0, 5, size=500)
        predictions = rng.integers(0, 5, size=500)
        assert clustering_accuracy(predictions, targets) < 0.5

    def test_mapping_is_injective(self):
        predictions = np.array([0, 0, 1, 1, 2, 2])
        targets = np.array([1, 1, 0, 0, 2, 2])
        mapping = hungarian_accuracy_mapping(predictions, targets)
        assert len(set(mapping.values())) == len(mapping)
        assert mapping[0] == 1 and mapping[1] == 0 and mapping[2] == 2

    def test_more_predicted_ids_than_targets(self):
        predictions = np.array([0, 1, 2, 3])
        targets = np.array([0, 0, 1, 1])
        accuracy = clustering_accuracy(predictions, targets)
        assert 0.0 <= accuracy <= 1.0

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_property_accuracy_bounds_and_permutation_invariance(self, num_classes, seed):
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, num_classes, size=50)
        predictions = rng.integers(0, num_classes, size=50)
        accuracy = clustering_accuracy(predictions, targets)
        assert 0.0 <= accuracy <= 1.0
        permutation = rng.permutation(num_classes)
        assert clustering_accuracy(permutation[predictions], targets) == pytest.approx(accuracy)
