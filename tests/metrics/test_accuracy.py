"""Tests for the open-world accuracy metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.accuracy import OpenWorldAccuracy, open_world_accuracy, plain_accuracy


class TestOpenWorldAccuracy:
    def test_perfect_prediction(self):
        targets = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        accuracy = open_world_accuracy(targets, targets, seen_classes=np.array([0, 1]))
        assert accuracy.overall == pytest.approx(1.0)
        assert accuracy.seen == pytest.approx(1.0)
        assert accuracy.novel == pytest.approx(1.0)

    def test_permuted_novel_ids_still_perfect(self):
        # The model labels novel classes with its own ids (e.g. 10/11); the
        # Hungarian matching should still find the perfect correspondence.
        targets = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        predictions = np.array([0, 0, 1, 1, 11, 11, 10, 10])
        accuracy = open_world_accuracy(predictions, targets, seen_classes=np.array([0, 1]))
        assert accuracy.overall == pytest.approx(1.0)
        assert accuracy.novel == pytest.approx(1.0)

    def test_seen_vs_novel_breakdown(self):
        targets = np.array([0, 0, 0, 0, 5, 5, 5, 5])
        # Seen class 0 predicted correctly; novel class 5 split in half.
        predictions = np.array([0, 0, 0, 0, 9, 9, 8, 7])
        accuracy = open_world_accuracy(predictions, targets, seen_classes=np.array([0]))
        assert accuracy.seen == pytest.approx(1.0)
        assert accuracy.novel == pytest.approx(0.5)
        assert accuracy.overall == pytest.approx(0.75)

    def test_single_hungarian_run_couples_seen_and_novel(self):
        # If the model confuses a seen class with a novel class, the single
        # global matching cannot give both full credit.
        targets = np.array([0, 0, 1, 1])
        predictions = np.array([1, 1, 0, 0])
        accuracy = open_world_accuracy(predictions, targets, seen_classes=np.array([0]))
        assert accuracy.overall == pytest.approx(1.0)

    def test_no_novel_nodes_gives_nan_novel(self):
        targets = np.array([0, 1, 0])
        accuracy = open_world_accuracy(targets, targets, seen_classes=np.array([0, 1]))
        assert np.isnan(accuracy.novel)
        assert accuracy.seen == pytest.approx(1.0)

    def test_empty_input(self):
        accuracy = open_world_accuracy(np.array([]), np.array([]), seen_classes=np.array([0]))
        assert np.isnan(accuracy.overall)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            open_world_accuracy(np.array([0, 1]), np.array([0]), seen_classes=np.array([0]))

    def test_as_dict_and_str(self):
        accuracy = OpenWorldAccuracy(overall=0.5, seen=0.6, novel=0.4)
        assert accuracy.as_dict() == {"all": 0.5, "seen": 0.6, "novel": 0.4}
        assert "50.0%" in str(accuracy)


class TestPlainAccuracy:
    def test_value(self):
        assert plain_accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_empty_is_nan(self):
        assert np.isnan(plain_accuracy(np.array([]), np.array([])))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            plain_accuracy(np.array([1]), np.array([1, 2]))
