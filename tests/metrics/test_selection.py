"""Tests for the SC&ACC model-selection metric and novel-class estimation."""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.selection import (
    CandidateScore,
    combined_sc_acc,
    estimate_num_novel_classes,
    minmax_normalize,
    score_candidate,
    select_best_candidate,
)


class TestMinMaxNormalize:
    def test_normalizes_to_unit_interval(self):
        out = minmax_normalize([1.0, 3.0, 5.0])
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_constant_input_maps_to_ones(self):
        np.testing.assert_allclose(minmax_normalize([2.0, 2.0, 2.0]), [1.0, 1.0, 1.0])

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_output_in_unit_interval(self, values):
        out = minmax_normalize(values)
        assert (out >= 0.0).all() and (out <= 1.0).all()


class TestCombinedSCACC:
    def test_equal_weighting(self):
        candidates = [
            CandidateScore("a", silhouette=0.0, validation_accuracy=1.0),
            CandidateScore("b", silhouette=1.0, validation_accuracy=0.0),
            CandidateScore("c", silhouette=0.5, validation_accuracy=0.5),
        ]
        scores = combined_sc_acc(candidates)
        assert scores[0] == pytest.approx(scores[1])
        assert scores[2] == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            combined_sc_acc([])


class TestSelectBestCandidate:
    CANDIDATES: ClassVar[list] = [
        CandidateScore("low-sc-high-acc", silhouette=0.1, validation_accuracy=0.9),
        CandidateScore("high-sc-low-acc", silhouette=0.9, validation_accuracy=0.1),
        CandidateScore("balanced", silhouette=0.7, validation_accuracy=0.7),
    ]

    def test_sc_metric(self):
        assert select_best_candidate(self.CANDIDATES, metric="sc").name == "high-sc-low-acc"

    def test_acc_metric(self):
        assert select_best_candidate(self.CANDIDATES, metric="acc").name == "low-sc-high-acc"

    def test_combined_metric_prefers_balanced(self):
        assert select_best_candidate(self.CANDIDATES, metric="sc&acc").name == "balanced"

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            select_best_candidate(self.CANDIDATES, metric="f1")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            select_best_candidate([], metric="sc")


class TestScoreCandidate:
    def test_good_clustering_scores_higher(self):
        rng = np.random.default_rng(0)
        embeddings = np.vstack([
            rng.normal([0, 0], 0.2, size=(50, 2)),
            rng.normal([10, 10], 0.2, size=(50, 2)),
        ])
        good_labels = np.array([0] * 50 + [1] * 50)
        bad_labels = rng.integers(0, 2, size=100)
        good = score_candidate("good", embeddings, good_labels, validation_accuracy=0.8)
        bad = score_candidate("bad", embeddings, bad_labels, validation_accuracy=0.8)
        assert good.silhouette > bad.silhouette

    def test_eval_indices_restrict_computation(self):
        rng = np.random.default_rng(1)
        embeddings = rng.normal(size=(100, 3))
        labels = rng.integers(0, 3, size=100)
        subset = np.arange(30)
        candidate = score_candidate("subset", embeddings, labels, 0.5, eval_indices=subset)
        assert np.isfinite(candidate.silhouette)

    def test_single_cluster_gets_minus_one(self):
        embeddings = np.random.default_rng(2).normal(size=(20, 2))
        labels = np.zeros(20, dtype=int)
        candidate = score_candidate("degenerate", embeddings, labels, 0.5)
        assert candidate.silhouette == -1.0


class TestEstimateNumNovelClasses:
    def test_recovers_true_count_on_separated_blobs(self):
        rng = np.random.default_rng(3)
        # 2 seen + 3 novel = 5 well-separated blobs.
        centers = np.array([[0, 0], [20, 0], [0, 20], [20, 20], [40, 20]], dtype=float)
        embeddings = np.vstack([
            rng.normal(center, 0.3, size=(40, 2)) for center in centers
        ])
        estimate = estimate_num_novel_classes(embeddings, num_seen_classes=2, max_novel=6, seed=0)
        assert estimate == 3

    def test_estimate_bounded_by_max_novel(self):
        rng = np.random.default_rng(4)
        embeddings = rng.normal(size=(60, 4))
        estimate = estimate_num_novel_classes(embeddings, num_seen_classes=2, max_novel=4)
        assert 1 <= estimate <= 4

    def test_handles_tiny_sample(self):
        embeddings = np.random.default_rng(5).normal(size=(8, 2))
        estimate = estimate_num_novel_classes(embeddings, num_seen_classes=2, max_novel=10)
        assert estimate >= 1
