"""Tests for the imbalance rate and separation rate metrics (Eq. 2-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.variance import (
    class_statistics,
    intra_class_variance,
    pair_imbalance_rate,
    pair_separation_rate,
    variance_imbalance_report,
)


def two_class_embeddings(std_seen=0.5, std_novel=2.0, distance=10.0, n=200, seed=0):
    rng = np.random.default_rng(seed)
    seen = rng.normal(0.0, std_seen, size=(n, 4))
    novel = rng.normal(0.0, std_novel, size=(n, 4))
    novel[:, 0] += distance
    embeddings = np.vstack([seen, novel])
    labels = np.array([0] * n + [1] * n)
    return embeddings, labels


class TestClassStatistics:
    def test_mean_and_std(self):
        embeddings, labels = two_class_embeddings()
        stats = class_statistics(embeddings, labels)
        assert set(stats) == {0, 1}
        assert stats[0].count == 200
        np.testing.assert_allclose(stats[0].mean, np.zeros(4), atol=0.2)
        assert stats[1].std > stats[0].std


class TestPairRates:
    def test_imbalance_rate_definition(self):
        embeddings, labels = two_class_embeddings(std_seen=0.5, std_novel=2.0)
        stats = class_statistics(embeddings, labels)
        rate = pair_imbalance_rate(stats[0], stats[1])
        # sigma_novel / sigma_seen ~ 4 (scaled by sqrt(d) factors cancelling).
        assert rate == pytest.approx(4.0, rel=0.2)
        assert rate >= 1.0

    def test_imbalance_rate_symmetric(self):
        embeddings, labels = two_class_embeddings()
        stats = class_statistics(embeddings, labels)
        assert pair_imbalance_rate(stats[0], stats[1]) == pytest.approx(
            pair_imbalance_rate(stats[1], stats[0])
        )

    def test_separation_rate_grows_with_distance(self):
        near, labels = two_class_embeddings(distance=2.0)
        far, _ = two_class_embeddings(distance=20.0)
        stats_near = class_statistics(near, labels)
        stats_far = class_statistics(far, labels)
        assert pair_separation_rate(stats_far[0], stats_far[1]) > \
            pair_separation_rate(stats_near[0], stats_near[1])

    def test_degenerate_zero_std(self):
        from repro.metrics.variance import ClassStatistics

        point = ClassStatistics(mean=np.zeros(2), std=0.0, count=5)
        spread = ClassStatistics(mean=np.ones(2), std=1.0, count=5)
        assert pair_imbalance_rate(point, spread) == np.inf
        assert pair_imbalance_rate(point, point) == 1.0
        assert pair_separation_rate(point, point) == 0.0


class TestReport:
    def test_report_averages_over_pairs(self):
        rng = np.random.default_rng(1)
        # Two seen (tight) classes and two novel (loose) classes.
        embeddings = np.vstack([
            rng.normal([0, 0], 0.3, size=(50, 2)),
            rng.normal([5, 0], 0.3, size=(50, 2)),
            rng.normal([0, 8], 1.5, size=(50, 2)),
            rng.normal([8, 8], 1.5, size=(50, 2)),
        ])
        labels = np.repeat([0, 1, 2, 3], 50)
        imbalance, separation = variance_imbalance_report(
            embeddings, labels, seen_classes=np.array([0, 1]), novel_classes=np.array([2, 3])
        )
        assert imbalance > 2.0
        assert separation > 1.0

    def test_supervised_style_shrinkage_increases_imbalance(self):
        # Shrinking seen-class spread (as supervised losses do) raises the rate.
        loose, labels = two_class_embeddings(std_seen=1.8, std_novel=2.0)
        tight, _ = two_class_embeddings(std_seen=0.4, std_novel=2.0)
        imbalance_loose, _ = variance_imbalance_report(
            loose, labels, np.array([0]), np.array([1])
        )
        imbalance_tight, _ = variance_imbalance_report(
            tight, labels, np.array([0]), np.array([1])
        )
        assert imbalance_tight > imbalance_loose

    def test_missing_classes_return_nan(self):
        embeddings = np.zeros((4, 2))
        labels = np.zeros(4, dtype=int)
        imbalance, separation = variance_imbalance_report(
            embeddings, labels, np.array([5]), np.array([6])
        )
        assert np.isnan(imbalance) and np.isnan(separation)


class TestIntraClassVariance:
    def test_mean_spread(self):
        embeddings, labels = two_class_embeddings(std_seen=0.5, std_novel=2.0)
        seen_var = intra_class_variance(embeddings, labels, np.array([0]))
        novel_var = intra_class_variance(embeddings, labels, np.array([1]))
        assert novel_var > seen_var

    def test_empty_selection(self):
        embeddings, labels = two_class_embeddings()
        assert np.isnan(intra_class_variance(embeddings, labels, np.array([9])))
