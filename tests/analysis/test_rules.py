"""Per-rule fixture coverage: one positive and one negative per rule,
with exact line/column assertions on the positives, plus the path-scoping
behaviour of R4/R6/R8 (checked through virtual paths)."""

from __future__ import annotations

from pathlib import Path, PurePath

from repro.analysis.framework import DEFAULT_RULES, Analyzer

FIXTURES = Path(__file__).parent / "fixtures"

#: Neutral virtual path: inside repro but outside every scoped allowlist.
NEUTRAL = PurePath("src/repro/clustering/fixture.py")


def lint(rule_id: str, fixture: str, path: PurePath = NEUTRAL):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    analyzer = Analyzer(rules=DEFAULT_RULES.create([rule_id]))
    return analyzer.check_source(source, path)


class TestR1GlobalNumpyRandom:
    def test_positive_flags_global_rand_at_exact_position(self):
        findings = lint("R1", "r1_positive.py")
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R1", 5, 11)
        assert "np.random.rand" in finding.message

    def test_negative_seeded_generator_is_clean(self):
        assert lint("R1", "r1_negative.py") == []

    def test_unseeded_randomstate_flagged(self):
        findings = Analyzer(rules=DEFAULT_RULES.create(["R1"])).check_source(
            "import numpy as np\nrng = np.random.RandomState()\n")
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_seeded_randomstate_allowed(self):
        findings = Analyzer(rules=DEFAULT_RULES.create(["R1"])).check_source(
            "import numpy as np\nrng = np.random.RandomState(7)\n")
        assert findings == []

    def test_from_import_of_global_fn_flagged(self):
        findings = Analyzer(rules=DEFAULT_RULES.create(["R1"])).check_source(
            "from numpy.random import shuffle\n")
        assert len(findings) == 1
        assert "shuffle" in findings[0].message

    def test_from_import_of_default_rng_allowed(self):
        findings = Analyzer(rules=DEFAULT_RULES.create(["R1"])).check_source(
            "from numpy.random import default_rng\n")
        assert findings == []


class TestR2GuardedBy:
    def test_positive_unlocked_access_at_exact_position(self):
        findings = lint("R2", "r2_positive.py")
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R2", 10, 8)
        assert "guarded-by: _lock" in finding.message

    def test_negative_locked_access_is_clean(self):
        assert lint("R2", "r2_negative.py") == []

    def test_init_is_exempt(self):
        # The fixture's __init__ assigns self._count without the lock and
        # must not be flagged — covered by the positive yielding exactly one
        # finding (the one in bump), asserted above.
        findings = lint("R2", "r2_positive.py")
        assert all(f.line != 7 for f in findings)


class TestR3FrozenCache:
    def test_positive_marker_without_freeze_at_exact_position(self):
        findings = lint("R3", "r3_positive.py")
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R3", 1, 0)
        assert "returns-frozen" in finding.message

    def test_negative_marker_with_freeze_is_clean(self):
        assert lint("R3", "r3_negative.py") == []

    def test_mutating_cache_lookup_result_flagged_and_copy_allowed(self):
        findings = lint("R3", "r3_mutation.py")
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R3", 3, 4)
        assert "copy before mutating" in finding.message

    def test_snapshot_field_mutation_flagged(self):
        source = ("def bad(service):\n"
                  "    snap = service.snapshot()\n"
                  "    snap.predictions[0] = 7\n")
        findings = Analyzer(rules=DEFAULT_RULES.create(["R3"])).check_source(source)
        assert len(findings) == 1
        assert "snap.predictions" in findings[0].message


class TestR4ParamDataRebind:
    def test_positive_outside_nn_at_exact_position(self):
        findings = lint("R4", "r4_positive.py",
                        PurePath("src/repro/serve/fixture.py"))
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R4", 2, 4)
        assert "version-bump" in finding.message

    def test_negative_read_only_access_is_clean(self):
        assert lint("R4", "r4_negative.py",
                    PurePath("src/repro/serve/fixture.py")) == []

    def test_same_code_inside_nn_is_exempt(self):
        assert lint("R4", "r4_positive.py",
                    PurePath("src/repro/nn/fixture.py")) == []


class TestR5SerializableConfig:
    def test_positive_orphan_config_at_exact_position(self):
        findings = lint("R5", "r5_positive.py")
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R5", 5, 0)
        assert "SerializableConfig" in finding.message

    def test_negative_direct_and_transitive_subclasses_are_clean(self):
        assert lint("R5", "r5_negative.py") == []


class TestR6WallClock:
    def test_positive_wall_clock_at_exact_position(self):
        findings = lint("R6", "r6_positive.py")
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R6", 5, 11)
        assert "time.time" in finding.message

    def test_negative_perf_counter_is_clean(self):
        assert lint("R6", "r6_negative.py") == []

    def test_serve_module_is_allowlisted(self):
        assert lint("R6", "r6_positive.py",
                    PurePath("src/repro/serve/metrics.py")) == []

    def test_experiments_module_is_allowlisted(self):
        assert lint("R6", "r6_positive.py",
                    PurePath("src/repro/experiments/reporting.py")) == []

    def test_datetime_now_flagged(self):
        source = ("from datetime import datetime\n"
                  "stamp = datetime.now()\n")
        findings = Analyzer(rules=DEFAULT_RULES.create(["R6"])).check_source(
            source, NEUTRAL)
        assert len(findings) == 1
        assert "datetime.now" in findings[0].message


class TestR7SwallowedExceptions:
    def test_positive_bare_except_and_swallow_at_exact_positions(self):
        findings = lint("R7", "r7_positive.py")
        assert len(findings) == 2
        bare, swallow = findings
        assert (bare.line, bare.col) == (4, 4)
        assert "bare 'except:'" in bare.message
        assert (swallow.line, swallow.col) == (11, 4)
        assert "swallowed silently" in swallow.message

    def test_negative_logged_and_reraised_is_clean(self):
        assert lint("R7", "r7_negative.py") == []

    def test_docstring_only_pass_still_flagged(self):
        source = ("def f(job):\n"
                  "    try:\n"
                  "        job()\n"
                  "    except ValueError:\n"
                  "        'ignored: best effort'\n"
                  "        pass\n")
        findings = Analyzer(rules=DEFAULT_RULES.create(["R7"])).check_source(source)
        assert len(findings) == 1


class TestR8RegistryCompleteness:
    def test_positive_unregistered_trainer_at_exact_position(self):
        findings = lint("R8", "r8_positive.py",
                        PurePath("src/repro/baselines/fixture.py"))
        assert len(findings) == 1
        finding = findings[0]
        assert (finding.rule, finding.line, finding.col) == ("R8", 1, 0)
        assert "register_method" in finding.message

    def test_negative_registered_and_private_trainers_are_clean(self):
        assert lint("R8", "r8_negative.py",
                    PurePath("src/repro/baselines/fixture.py")) == []

    def test_rule_only_applies_under_baselines(self):
        assert lint("R8", "r8_positive.py", NEUTRAL) == []


class TestR9PicklablePoolWorker:
    def test_positive_nested_def_and_lambda_at_exact_positions(self):
        findings = lint("R9", "r9_positive.py")
        assert len(findings) == 2
        nested, lam = findings
        assert (nested.rule, nested.line, nested.col) == ("R9", 10, 32)
        assert "nested function 'worker'" in nested.message
        assert "executor.map" in nested.message
        assert (lam.rule, lam.line, lam.col) == ("R9", 11, 34)
        assert "lambda" in lam.message
        assert "thread_pool.submit" in lam.message

    def test_negative_module_level_workers_are_clean(self):
        assert lint("R9", "r9_negative.py") == []

    def test_module_level_lambda_flagged(self):
        source = "results = executor.map(lambda item: item, [1, 2])\n"
        findings = Analyzer(rules=DEFAULT_RULES.create(["R9"])).check_source(
            source, NEUTRAL)
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_quarantined_violation_module_is_flagged(self):
        violation = (Path(__file__).parents[2] / "src" / "repro" / "analysis"
                     / "violations" / "parallel_closure.py")
        # Drop the first line (the skip-file marker) so the rule actually
        # runs; the quarantine relies on that marker plus DEFAULT_EXCLUDES.
        source = violation.read_text(encoding="utf-8").split("\n", 1)[1]
        findings = Analyzer(rules=DEFAULT_RULES.create(["R9"])).check_source(
            source, PurePath("src/repro/clustering/fixture.py"))
        assert len(findings) == 2
        assert {"R9"} == {finding.rule for finding in findings}

    def test_shipped_workers_module_is_clean(self):
        workers = (Path(__file__).parents[2] / "src" / "repro" / "parallel"
                   / "workers.py")
        findings = Analyzer(rules=DEFAULT_RULES.create(["R9"])).check_source(
            workers.read_text(encoding="utf-8"), PurePath(workers.as_posix()))
        assert findings == []


class TestRepoIsClean:
    def test_full_rule_set_reports_nothing_on_src(self):
        src_root = Path(__file__).parents[2] / "src"
        analyzer = Analyzer(rules=DEFAULT_RULES.create())
        assert analyzer.run([str(src_root)]) == []
