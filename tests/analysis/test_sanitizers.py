"""Runtime-sanitizer behaviour: each tripwire demonstrably fires on the
seeded violations, stays silent on contract-respecting code, and
install/uninstall restore the process exactly."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis import sanitizers
from repro.analysis.violations import (
    provoke_global_rng,
    provoke_lock_order_inversion,
    provoke_store_input_freeze,
    provoke_write_after_freeze,
)
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges
from repro.inference import EmbeddingCache
from repro.nn.layers import Linear


@pytest.fixture
def sanitized():
    """Install every sanitizer for one test; uninstall unconditionally."""
    already = sanitizers.is_installed()
    if not already:
        sanitizers.install()
    sanitizers.reset_lock_order()
    try:
        yield
    finally:
        if not already:
            sanitizers.uninstall()


@pytest.fixture
def cache_setup():
    rng = np.random.default_rng(0)
    src = rng.integers(8, size=20)
    dst = rng.integers(8, size=20)
    graph = Graph(features=rng.normal(size=(8, 4)),
                  edge_index=symmetrize_edges(np.vstack([src, dst])))
    return EmbeddingCache(), Linear(4, 3), graph, rng


class TestLockOrderSanitizer:
    def test_seeded_inversion_fires(self, sanitized):
        with pytest.raises(sanitizers.LockOrderViolation,
                           match="lock-order inversion"):
            provoke_lock_order_inversion()

    def test_consistent_nesting_records_edges_without_convicting(self, sanitized):
        from repro.analysis.violations.lock_order import consistent_nesting

        consistent_nesting(repeats=3)  # watched locks, lawful a -> b order
        assert sanitizers.lock_order_recorder().edges()

    def test_reset_forgets_recorded_edges(self, sanitized):
        from repro.analysis.violations.lock_order import consistent_nesting

        consistent_nesting(repeats=1)
        recorder = sanitizers.lock_order_recorder()
        assert recorder.edges()
        sanitizers.reset_lock_order()
        assert recorder.edges() == {}
        consistent_nesting(repeats=1)  # a fresh first observation is lawful

    def test_condition_wrapping_instrumented_lock_works(self, sanitized):
        # The instrumented lock deliberately lacks _release_save /
        # _acquire_restore, so Condition routes wait() through the wrapper's
        # release/acquire — this must not raise or unbalance anything.
        lock = threading.Lock()
        condition = threading.Condition(lock)
        with condition:
            condition.wait(timeout=0.01)
        assert not lock.locked()

    def test_violation_releases_the_lock_before_raising(self, sanitized):
        recorder = sanitizers.lock_order_recorder()
        inner_a = sanitizers._REAL_LOCK()
        inner_b = sanitizers._REAL_LOCK()
        lock_a = sanitizers._InstrumentedLock(inner_a, "t:a", True, recorder)
        lock_b = sanitizers._InstrumentedLock(inner_b, "t:b", True, recorder)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with pytest.raises(sanitizers.LockOrderViolation):
                lock_a.acquire()
        # The inverted acquire must not leave its lock held behind the
        # exception — a held lock here would deadlock test teardown.
        assert not inner_a.locked()
        assert not inner_b.locked()


class TestFrozenCacheSanitizer:
    def test_seeded_thaw_fires(self, sanitized, cache_setup):
        cache, encoder, graph, rng = cache_setup
        with pytest.raises(sanitizers.WriteAfterFreezeError,
                           match="published by the embedding cache"):
            provoke_write_after_freeze(cache, encoder, graph,
                                       rng.normal(size=(8, 3)))

    def test_seeded_pr6_store_regression_fires(self, sanitized, cache_setup):
        cache, encoder, graph, rng = cache_setup
        with pytest.raises(sanitizers.WriteAfterFreezeError,
                           match="froze the caller's array in place"):
            provoke_store_input_freeze(cache, encoder, graph,
                                       rng.normal(size=(8, 3)))

    def test_correct_store_lookup_flow_is_silent(self, sanitized, cache_setup):
        cache, encoder, graph, rng = cache_setup
        original = rng.normal(size=(8, 3))
        out = cache.store(encoder, graph, original)
        assert original.flags.writeable  # caller's array untouched
        assert not out.flags.writeable
        assert cache.lookup(encoder, graph) is out  # identity preserved

    def test_copy_is_the_mutable_escape_hatch(self, sanitized, cache_setup):
        cache, encoder, graph, rng = cache_setup
        out = cache.store(encoder, graph, rng.normal(size=(8, 3)))
        fresh = out.copy()
        fresh[0] = 42.0  # no tripwire: copies start unguarded

    def test_stale_entry_is_guarded(self, sanitized, cache_setup):
        cache, encoder, graph, rng = cache_setup
        cache.store(encoder, graph, rng.normal(size=(8, 3)))
        graph.invalidate_caches()
        stale = cache.stale_entry(encoder, graph)
        assert stale is not None
        with pytest.raises(sanitizers.WriteAfterFreezeError):
            stale[0].setflags(write=True)


class TestGlobalRNGSanitizer:
    def test_seeded_violation_fires(self, sanitized):
        with pytest.raises(sanitizers.GlobalRNGViolation,
                           match="np.random.rand"):
            provoke_global_rng()

    def test_non_repro_callers_are_unaffected(self, sanitized):
        # This test module is not under the repro package, so the global
        # RNG keeps working (third-party and test code is out of scope).
        values = np.random.rand(2)
        assert values.shape == (2,)

    def test_seeded_generators_always_work(self, sanitized):
        rng = np.random.default_rng(3)
        assert rng.normal(size=4).shape == (4,)


class TestInstallUninstall:
    def test_install_is_idempotent_and_uninstall_exact(self, cache_setup):
        if sanitizers.is_installed():
            pytest.skip("session-level sanitizers own install/uninstall "
                        "(covered by the unsanitized tier-1 run)")
        cache, encoder, graph, rng = cache_setup
        real_lock = threading.Lock
        real_rand = np.random.rand
        real_store = EmbeddingCache.store
        sanitizers.install()
        try:
            sanitizers.install()  # second install is a no-op
            assert sanitizers.is_installed()
            assert threading.Lock is not real_lock
        finally:
            sanitizers.uninstall()
        sanitizers.uninstall()  # second uninstall is a no-op
        assert not sanitizers.is_installed()
        assert threading.Lock is real_lock
        assert np.random.rand is real_rand
        assert EmbeddingCache.store is real_store
        # Behaviour is back to stock: plain ndarray out, no guard.
        out = cache.store(encoder, graph, rng.normal(size=(8, 3)))
        assert type(out) is np.ndarray

    def test_enabled_from_env(self, monkeypatch):
        for raw, expected in [("1", True), ("true", True), ("yes", True),
                              ("0", False), ("false", False), ("", False)]:
            monkeypatch.setenv("REPRO_SANITIZE", raw)
            assert sanitizers.enabled_from_env() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitizers.enabled_from_env() is False


class TestPytestPlugin:
    class _Config:
        def __init__(self, sanitize: bool):
            self._sanitize = sanitize

        def getoption(self, name):
            assert name == "--sanitize"
            return self._sanitize

    def test_option_installs_and_unconfigure_restores(self):
        from repro.analysis import pytest_plugin

        already = sanitizers.is_installed()
        config = self._Config(sanitize=True)
        pytest_plugin.pytest_configure(config)
        try:
            assert sanitizers.is_installed()
            # Ownership is claimed only when this configure installed; a
            # session-level install is never torn down by a nested config.
            assert config._repro_sanitize_installed is (not already)
            if not already:
                assert pytest_plugin.pytest_report_header(config) is not None
        finally:
            pytest_plugin.pytest_unconfigure(config)
        assert sanitizers.is_installed() is already

    def test_env_variable_installs(self, monkeypatch):
        from repro.analysis import pytest_plugin

        already = sanitizers.is_installed()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        config = self._Config(sanitize=False)
        pytest_plugin.pytest_configure(config)
        try:
            assert sanitizers.is_installed()
        finally:
            pytest_plugin.pytest_unconfigure(config)
        assert sanitizers.is_installed() is already

    def test_disabled_by_default(self, monkeypatch):
        from repro.analysis import pytest_plugin

        already = sanitizers.is_installed()
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        config = self._Config(sanitize=False)
        pytest_plugin.pytest_configure(config)
        try:
            assert config._repro_sanitize_installed is False
            assert pytest_plugin.pytest_report_header(config) is None
        finally:
            pytest_plugin.pytest_unconfigure(config)
        assert sanitizers.is_installed() is already
