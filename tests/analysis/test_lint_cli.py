"""CLI behaviour: exit codes, formats, rule selection, and the e2e guarantee
that ``repro lint src/`` is clean on this repository."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import cli as analysis_cli
from repro.experiments import cli as repro_cli

SRC_ROOT = str(Path(__file__).parents[2] / "src")

CLEAN = "import numpy as np\n\n\ndef draw(rng):\n    return rng.normal(size=2)\n"
DIRTY = "import numpy as np\n\n\ndef draw():\n    return np.random.rand(3)\n"


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN)
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY)
    return path


class TestAnalysisCli:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert analysis_cli.main([str(clean_file)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_with_location(self, dirty_file, capsys):
        assert analysis_cli.main([str(dirty_file)]) == 1
        captured = capsys.readouterr()
        assert f"{dirty_file}:5:11: R1" in captured.out
        assert "1 finding(s)" in captured.err

    def test_json_format_is_parseable(self, dirty_file, capsys):
        assert analysis_cli.main(["--format", "json", str(dirty_file)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "R1"
        assert payload[0]["line"] == 5
        assert payload[0]["col"] == 11

    def test_rule_selection_limits_the_run(self, dirty_file):
        assert analysis_cli.main(["--rules", "R2", str(dirty_file)]) == 0
        assert analysis_cli.main(["--rules", "R1,R2", str(dirty_file)]) == 1

    def test_unknown_rule_is_a_usage_error(self, dirty_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            analysis_cli.main(["--rules", "R99", str(dirty_file)])
        assert excinfo.value.code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            analysis_cli.main(["no/such/path"])
        assert excinfo.value.code == 2

    def test_list_rules_names_all_eight(self, capsys):
        assert analysis_cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
            assert rule_id in out
        assert "contract:" in out

    def test_directory_default_excludes_violations(self, capsys):
        # The quarantined demos are skipped by default...
        assert analysis_cli.main([SRC_ROOT]) == 0
        # ...and still skipped with excludes disabled, because each demo
        # file carries a skip-file pragma; discovery however now sees them.
        assert analysis_cli.main(["--no-default-excludes", SRC_ROOT]) == 0


class TestReproLintSubcommand:
    def test_lint_clean_src_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_cli.main(["lint", SRC_ROOT])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out == ""

    def test_lint_findings_exit_one(self, dirty_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_cli.main(["lint", str(dirty_file)])
        assert excinfo.value.code == 1
        assert "R1" in capsys.readouterr().out

    def test_lint_usage_error_reports_cleanly(self, dirty_file):
        with pytest.raises(SystemExit) as excinfo:
            repro_cli.main(["lint", "--rules", "R99", str(dirty_file)])
        # SystemExit carries the message (printed to stderr at process exit).
        assert "unknown rule" in str(excinfo.value.code)

    def test_lint_appears_in_cli_help(self, capsys):
        with pytest.raises(SystemExit):
            repro_cli.main(["--help"])
        assert "lint" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, dirty_file):
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH=SRC_ROOT)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(dirty_file)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 1
        assert ":5:11: R1" in proc.stdout
