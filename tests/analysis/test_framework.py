"""Lint-framework mechanics: findings, suppressions, discovery, registry."""

from __future__ import annotations

from pathlib import Path, PurePath

import pytest

from repro.analysis.framework import (
    DEFAULT_RULES,
    Analyzer,
    FileContext,
    Finding,
    Rule,
    RuleRegistry,
)

FIXTURES = Path(__file__).parent / "fixtures"


def analyzer_for(*rule_ids: str) -> Analyzer:
    return Analyzer(rules=DEFAULT_RULES.create(rule_ids or None))


class TestFinding:
    def test_format_is_path_line_col_rule_message(self):
        finding = Finding(path="src/x.py", line=3, col=7, rule="R1",
                         message="boom")
        assert finding.format() == "src/x.py:3:7: R1 boom"

    def test_ordering_is_by_path_then_line(self):
        a = Finding("a.py", 9, 0, "R1", "m")
        b = Finding("b.py", 1, 0, "R1", "m")
        c = Finding("a.py", 2, 0, "R2", "m")
        assert sorted([a, b, c]) == [c, a, b]

    def test_to_dict_round_trips_fields(self):
        finding = Finding("x.py", 1, 2, "R3", "msg")
        assert finding.to_dict() == {"path": "x.py", "line": 1, "col": 2,
                                     "rule": "R3", "message": "msg"}


class TestFileContext:
    def test_module_anchored_at_repro_segment(self):
        ctx = FileContext(PurePath("src/repro/serve/service.py"), "x = 1\n")
        assert ctx.module == "repro.serve.service"

    def test_init_module_drops_stem(self):
        ctx = FileContext(PurePath("src/repro/serve/__init__.py"), "x = 1\n")
        assert ctx.module == "repro.serve"

    def test_module_outside_repro_is_bare_stem(self):
        ctx = FileContext(PurePath("tests/foo/bar.py"), "x = 1\n")
        assert ctx.module == "bar"

    def test_line_comment_extraction(self):
        ctx = FileContext(PurePath("x.py"), "a = 1  # guarded-by: _lock\nb = 2\n")
        assert "guarded-by: _lock" in ctx.line_comment(1)
        assert ctx.line_comment(2) == ""
        assert ctx.line_comment(99) == ""


class TestSuppressions:
    SOURCE = ("import numpy as np\n"
              "\n"
              "\n"
              "def draw():\n"
              "    return np.random.rand(3)  # repro-lint: disable=R1\n")

    def test_targeted_disable_suppresses_that_rule(self):
        assert analyzer_for("R1").check_source(self.SOURCE) == []

    def test_disable_of_other_rule_does_not_suppress(self):
        source = self.SOURCE.replace("disable=R1", "disable=R2")
        findings = analyzer_for("R1").check_source(source)
        assert [f.rule for f in findings] == ["R1"]

    def test_blanket_disable_suppresses_every_rule(self):
        source = self.SOURCE.replace("disable=R1", "disable")
        assert analyzer_for().check_source(source) == []

    def test_skip_file_pragma_skips_whole_file(self):
        source = "# repro-lint: skip-file\n" + self.SOURCE.replace(
            "  # repro-lint: disable=R1", "")
        assert analyzer_for().check_source(source) == []

    def test_skip_file_only_honored_in_first_ten_lines(self):
        source = self.SOURCE.replace("  # repro-lint: disable=R1", "")
        source += "\n" * 10 + "# repro-lint: skip-file\n"
        findings = analyzer_for("R1").check_source(source)
        assert [f.rule for f in findings] == ["R1"]


class TestSyntaxError:
    def test_unparseable_source_yields_e999(self):
        findings = analyzer_for().check_source("def broken(:\n")
        assert len(findings) == 1
        assert findings[0].rule == "E999"
        assert findings[0].line == 1


class TestDiscovery:
    def test_directory_discovery_is_sorted_and_deduplicated(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        analyzer = analyzer_for()
        found = analyzer.discover([str(tmp_path), str(tmp_path / "a.py")])
        assert [p.name for p in found] == ["a.py", "b.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            analyzer_for().discover(["definitely/not/a/file"])

    def test_violations_package_excluded_by_default(self):
        src_root = Path(__file__).parents[2] / "src"
        analyzer = analyzer_for()
        found = analyzer.discover([str(src_root)])
        assert not [p for p in found if "violations" in p.parts]

    def test_violations_package_flagged_when_excludes_disabled(self):
        src_root = Path(__file__).parents[2] / "src"
        violations = src_root / "repro" / "analysis" / "violations"
        analyzer = Analyzer(rules=DEFAULT_RULES.create(), excludes=())
        # skip-file pragmas quarantine them from findings, but the *files*
        # are discovered once excludes are gone.
        found = analyzer.discover([str(violations)])
        assert {p.name for p in found} >= {"lock_order.py", "frozen.py",
                                           "global_rng.py"}
        # Strip the pragma and R1 fires on the seeded global-RNG demo.
        source = (violations / "global_rng.py").read_text()
        source = source.replace("# repro-lint: skip-file", "#")
        findings = Analyzer(rules=DEFAULT_RULES.create(["R1"])).check_source(
            source, PurePath("src/repro/analysis/violations/global_rng.py"))
        assert [f.rule for f in findings] == ["R1"]


class TestRegistry:
    def test_all_nine_rules_registered(self):
        assert DEFAULT_RULES.ids() == ["R1", "R2", "R3", "R4", "R5",
                                       "R6", "R7", "R8", "R9"]

    def test_every_rule_names_its_contract(self):
        for rule_id in DEFAULT_RULES.ids():
            rule_cls = DEFAULT_RULES.get(rule_id)
            assert rule_cls.name, rule_id
            assert rule_cls.description, rule_id
            assert rule_cls.contract, rule_id

    def test_duplicate_id_rejected(self):
        registry = RuleRegistry()

        class First(Rule):
            id = "X1"

        class Second(Rule):
            id = "X1"

        registry.register(First)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Second)

    def test_missing_id_rejected(self):
        with pytest.raises(ValueError, match="has no id"):
            RuleRegistry().register(type("NoId", (Rule,), {}))

    def test_unknown_rule_lookup_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            DEFAULT_RULES.get("R99")
