def run(job):
    try:
        job()
    except:
        pass


def quiet(job):
    try:
        job()
    except ValueError:
        pass
