class OrphanTrainer:
    def fit(self):
        return self
