def publish(array):  # returns-frozen
    view = array.view()
    return view
