import numpy as np


def draw():
    return np.random.rand(3)
