"""R9 negative: module-level workers and non-pool receivers are clean."""


def module_worker(item):
    return item * 2


def dispatch(executor, worker_pool, items):
    results = list(executor.map(module_worker, items))
    futures = [worker_pool.submit(module_worker, item) for item in items]
    return results, futures


def non_pool_receivers(mapper, items):
    # A nested def is fine when the receiver is not an executor/pool.
    def local(item):
        return item - 1

    return mapper.map(local, items) + mapper.map(lambda item: item, items)
