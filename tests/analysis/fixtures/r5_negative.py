from dataclasses import dataclass

from repro.core.config import SerializableConfig


@dataclass
class GoodConfig(SerializableConfig):
    value: int = 0


@dataclass
class DerivedConfig(GoodConfig):
    extra: int = 1
