def corrupt(cache, encoder, graph):
    cached = cache.lookup(encoder, graph)
    cached[0] = 1.0
    return cached


def safe(cache, encoder, graph):
    cached = cache.lookup(encoder, graph)
    fresh = cached.copy()
    fresh[0] = 1.0
    return fresh
