def clobber(param, values):
    param.data = values
