import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        self._count += 1
