def inspect(param):
    values = param.data
    return values.sum()
