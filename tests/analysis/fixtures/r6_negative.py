import time


def duration(task):
    start = time.perf_counter()
    task()
    return time.perf_counter() - start
