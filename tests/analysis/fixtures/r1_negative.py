import numpy as np


def draw(seed):
    rng = np.random.default_rng(seed)
    return rng.normal(size=3)
