from dataclasses import dataclass


@dataclass
class OrphanConfig:
    value: int = 0
