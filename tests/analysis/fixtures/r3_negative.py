def publish(array):  # returns-frozen
    view = array.view()
    view.setflags(write=False)
    return view
