def run(job, log):
    try:
        job()
    except ValueError as exc:
        log(exc)
        raise
