from repro.core.registry import register_method


@register_method(name="fixture", display_name="Fixture", kind="two-stage")
class RegisteredTrainer:
    def fit(self):
        return self


class _HelperTrainer:
    pass
