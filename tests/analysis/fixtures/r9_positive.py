"""R9 positive: closure workers handed to pool executors."""


def dispatch(executor, thread_pool, items):
    offset = 2

    def worker(item):
        return item + offset

    results = list(executor.map(worker, items))
    futures = [thread_pool.submit(lambda item: item + offset, item)
               for item in items]
    return results, futures
