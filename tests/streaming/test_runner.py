"""StreamRunner: prequential replay, cluster birth, detection delay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.classifier import OpenWorldClassifier
from repro.core.config import ClusteringConfig, fast_config
from repro.datasets.splits import OpenWorldDataset, make_open_world_split
from repro.graphs.generators import SBMConfig, generate_sbm_graph
from repro.streaming import (PrequentialAccuracy, StreamRunner, detection_delay,
                             make_stream_scenario)

# Calibrated for the fixture below: the withheld class merged into its host
# cluster scores ~0.45-0.6 per-cluster silhouette while pure clusters sit
# higher, so one birth fires shortly after the withheld class arrives and
# the cluster count stabilises at seen+novel+withheld.
BIRTH_THRESHOLD = 0.55


def make_dataset() -> OpenWorldDataset:
    config = SBMConfig(num_nodes=360, num_classes=4, avg_degree=10.0,
                       homophily=0.92, feature_dim=16, feature_sparsity=0.0,
                       feature_noise=0.2)
    graph = generate_sbm_graph(config, seed=7, name="runner-sbm")
    split = make_open_world_split(graph, seen_fraction=0.5,
                                  labels_per_class=12, seed=7)
    return OpenWorldDataset(graph=graph, split=split, name="runner-sbm")


def fit_on(scenario, birth_threshold):
    clustering = ClusteringConfig(strategy="online",
                                  birth_threshold=birth_threshold,
                                  birth_min_size=8, max_clusters=6)
    classifier = OpenWorldClassifier(
        config=fast_config(max_epochs=4, seed=0, clustering=clustering))
    classifier.fit(scenario.base)
    return classifier


@pytest.fixture(scope="module")
def replay():
    """One full replay with birth enabled, shared across assertions."""
    dataset = make_dataset()
    scenario = make_stream_scenario(dataset, num_steps=6, base_fraction=0.6,
                                    entry_step=2, reveal_fraction=0.3, seed=7)
    classifier = fit_on(scenario, BIRTH_THRESHOLD)
    result = StreamRunner(classifier, scenario).run()
    return dataset, scenario, classifier, result


class TestClusterBirth:
    def test_withheld_class_births_a_cluster(self, replay):
        _, scenario, _, result = replay
        assert result.first_withheld_step == 2
        assert result.first_birth_step is not None
        # The birth must come at or after the withheld class first arrives.
        assert result.first_birth_step >= result.first_withheld_step
        assert result.detection_delay is not None
        assert 0 <= result.detection_delay <= 2
        assert result.num_clusters_end > result.num_clusters_start

    def test_birth_improves_novel_accuracy(self, replay):
        _, _, _, result = replay
        # With the extra centroid the withheld arrivals map outside the seen
        # set; without it they collapse into a seen cluster (~0.3 novel acc).
        assert result.accuracy.novel >= 0.5
        assert result.accuracy.seen >= 0.8

    def test_no_birth_without_threshold(self):
        dataset = make_dataset()
        scenario = make_stream_scenario(dataset, num_steps=4,
                                        base_fraction=0.6, entry_step=1,
                                        seed=7)
        classifier = fit_on(scenario, birth_threshold=None)
        result = StreamRunner(classifier, scenario).run()
        assert result.first_birth_step is None
        assert result.detection_delay is None
        assert result.num_clusters_end == result.num_clusters_start


class TestReplayMechanics:
    def test_every_arrival_scored_once(self, replay):
        _, scenario, _, result = replay
        streamed = sum(e.num_arrivals for e in scenario.events)
        assert result.accuracy.total == streamed
        assert sum(r.num_arrivals for r in result.records) == streamed

    def test_graph_mutated_in_place_to_full_size(self, replay):
        dataset, scenario, classifier, _ = replay
        graph = classifier.trainer_.dataset.graph
        assert graph is scenario.base.graph
        assert graph.num_nodes == dataset.graph.num_nodes

    def test_records_and_describe(self, replay):
        import json

        _, scenario, _, result = replay
        assert [r.step for r in result.records] == list(range(scenario.num_steps))
        report = json.loads(json.dumps(result.describe()))
        assert len(report["steps"]) == scenario.num_steps
        assert report["prequential"]["num_scored"] == result.accuracy.total
        summary = result.summary()
        assert (summary["partial_refresh_steps"]
                + summary["full_refresh_steps"]) == scenario.num_steps

    def test_exhausted_stream_raises(self, replay):
        _, scenario, classifier, _ = replay
        runner_done = StreamRunner.__new__(StreamRunner)  # skip re-fit
        runner_done.scenario = scenario
        runner_done._next_event = len(scenario.events)
        with pytest.raises(IndexError, match="exhausted"):
            StreamRunner.step(runner_done)

    def test_wrong_base_graph_rejected(self, replay):
        dataset, _, classifier, _ = replay
        other = make_stream_scenario(dataset, num_steps=3, seed=1)
        with pytest.raises(ValueError, match="base graph"):
            StreamRunner(classifier, other)

    def test_unfitted_model_rejected(self, replay):
        _, scenario, _, _ = replay
        with pytest.raises(ValueError, match="fitted"):
            StreamRunner(OpenWorldClassifier(), scenario)


class TestPrequentialAccuracy:
    def test_running_counts(self):
        acc = PrequentialAccuracy()
        acc.update(np.array([True, False, True]),
                   np.array([True, True, False]), step=0)
        acc.update(np.array([True]), np.array([False]), step=1)
        assert acc.seen_total == 2 and acc.seen_correct == 1
        assert acc.novel_total == 2 and acc.novel_correct == 2
        assert acc.overall == pytest.approx(0.75)
        assert acc.seen == pytest.approx(0.5)
        assert acc.novel == pytest.approx(1.0)
        assert [h["step"] for h in acc.history] == [0, 1]

    def test_empty_tracker_is_zero(self):
        acc = PrequentialAccuracy()
        assert acc.overall == 0.0 and acc.seen == 0.0 and acc.novel == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="align"):
            PrequentialAccuracy().update(np.array([True]),
                                         np.array([True, False]))

    def test_detection_delay(self):
        assert detection_delay(2, 3) == 1
        assert detection_delay(2, 2) == 0
        assert detection_delay(None, 3) is None
        assert detection_delay(2, None) is None
