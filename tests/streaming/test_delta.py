"""GraphDelta validation and Graph.apply_delta cache semantics."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.graphs import GraphDelta
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges


def toy_graph(labeled: bool = True) -> Graph:
    rng = np.random.default_rng(3)
    edge_index = symmetrize_edges(np.array([[0, 1, 2, 3], [1, 2, 3, 4]]))
    return Graph(
        features=rng.normal(size=(5, 4)),
        edge_index=edge_index,
        labels=np.array([0, 0, 1, 1, 2]) if labeled else None,
        name="toy",
    )


class TestGraphDelta:
    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            GraphDelta(add_features=np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            GraphDelta(add_edges=np.array([0, 1, 2]))
        with pytest.raises(ValueError, match="negative"):
            GraphDelta(add_edges=np.array([[0, -1], [1, 0]]))
        with pytest.raises(ValueError, match="one entry per new node"):
            GraphDelta(add_features=np.zeros((2, 4)), add_labels=np.array([1]))

    def test_empty_delta(self):
        delta = GraphDelta()
        assert delta.is_empty
        assert delta.num_new_nodes == 0
        assert delta.num_new_edges == 0
        assert delta.touched_nodes(10).size == 0

    def test_touched_nodes_is_sorted_union(self):
        delta = GraphDelta(
            add_features=np.zeros((2, 4)),
            add_edges=np.array([[5, 0, 6], [0, 5, 3]]),
        )
        np.testing.assert_array_equal(delta.touched_nodes(5), [0, 3, 5, 6])

    def test_undirected_symmetrizes_and_dedups(self):
        delta = GraphDelta.undirected(
            add_edges=np.array([[0, 1, 1], [1, 0, 2]]))
        src, dst = delta.add_edges
        pairs = set(zip(src.tolist(), dst.tolist(), strict=True))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_validate_for_checks_feature_width_and_edge_bounds(self):
        graph = toy_graph()
        with pytest.raises(ValueError, match="columns"):
            GraphDelta(add_features=np.zeros((1, 2))).validate_for(graph)
        with pytest.raises(ValueError, match="will only have"):
            GraphDelta(add_edges=np.array([[5], [0]])).validate_for(graph)
        # One new node makes id 5 legal.
        GraphDelta(add_features=np.zeros((1, 4)),
                   add_edges=np.array([[5], [0]])).validate_for(graph)

    def test_labels_rejected_on_unlabeled_graph(self):
        graph = toy_graph(labeled=False)
        delta = GraphDelta(add_features=np.zeros((1, 4)),
                           add_labels=np.array([2]))
        with pytest.raises(ValueError, match="unlabeled"):
            delta.validate_for(graph)


class TestApplyDelta:
    def test_appends_nodes_edges_and_labels(self):
        graph = toy_graph()
        delta = GraphDelta.undirected(
            add_features=np.ones((2, 4)),
            add_edges=np.array([[5, 6], [0, 5]]),
            add_labels=np.array([2, 0]),
        )
        graph.apply_delta(delta)
        assert graph.num_nodes == 7
        np.testing.assert_array_equal(graph.labels[5:], [2, 0])
        np.testing.assert_array_equal(graph.features[5:], np.ones((2, 4)))

    def test_missing_labels_fill_with_minus_one(self):
        graph = toy_graph()
        graph.apply_delta(GraphDelta(add_features=np.zeros((1, 4))))
        assert graph.labels[5] == -1

    def test_version_bumps_even_for_empty_delta(self):
        graph = toy_graph()
        before = graph.cache_version
        graph.apply_delta(GraphDelta())
        assert graph.cache_version == before + 1

    def test_neighbors_sees_new_edges(self):
        """Regression: the CSR neighbor cache must drop on apply_delta."""
        graph = toy_graph()
        assert 4 not in graph.neighbors(0).tolist()  # warms the CSR cache
        graph.apply_delta(GraphDelta.undirected(add_edges=np.array([[0], [4]])))
        assert 4 in graph.neighbors(0).tolist()
        assert 0 in graph.neighbors(4).tolist()

    def test_copy_after_delta_sees_new_edges(self):
        graph = toy_graph()
        graph.neighbors(0)
        graph.apply_delta(GraphDelta.undirected(add_edges=np.array([[0], [3]])))
        clone = graph.copy()
        assert 3 in clone.neighbors(0).tolist()
        # The copy starts with fresh caches and version 0.
        assert clone.cache_version == 0

    def test_dataclasses_replace_does_not_inherit_stale_csr(self):
        graph = toy_graph()
        graph.neighbors(0)  # warm the donor's CSR cache
        new_edges = np.hstack([graph.edge_index,
                               symmetrize_edges(np.array([[0], [4]]))])
        clone = dataclasses.replace(graph, edge_index=new_edges)
        assert 4 in clone.neighbors(0).tolist()

    def test_propagation_and_adjacency_rebuilt(self):
        graph = toy_graph()
        p_before = graph.propagation()
        a_before = graph.adjacency()
        graph.apply_delta(GraphDelta.undirected(
            add_features=np.zeros((1, 4)), add_edges=np.array([[5], [0]]),
            add_labels=np.array([1])))
        assert graph.propagation().shape == (6, 6)
        assert graph.adjacency().shape == (6, 6)
        assert p_before.shape == (5, 5)
        assert a_before.shape == (5, 5)
