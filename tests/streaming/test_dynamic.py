"""DynamicGraph: incremental CSR/degree maintenance and affected sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import GraphDelta
from repro.graphs.graph import Graph
from repro.graphs.sampling import build_edge_csr
from repro.graphs.utils import symmetrize_edges
from repro.streaming import DynamicGraph, check_symmetric_edges


def random_graph(num_nodes=120, avg_degree=5, num_features=8, seed=0) -> Graph:
    rng = np.random.default_rng(seed)
    num_edges = num_nodes * avg_degree // 2
    src = rng.integers(num_nodes, size=num_edges)
    dst = rng.integers(num_nodes, size=num_edges)
    return Graph(
        features=rng.normal(size=(num_nodes, num_features)),
        edge_index=symmetrize_edges(np.vstack([src, dst])),
        labels=rng.integers(3, size=num_nodes),
        name="dyn",
    )


def random_delta(graph: Graph, num_new=3, num_edges=5, seed=0) -> GraphDelta:
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    total = n + num_new
    src = rng.integers(total, size=num_edges)
    dst = rng.integers(total, size=num_edges)
    # Every new node gets at least one edge so it is connected.
    anchor_src = np.arange(n, total)
    anchor_dst = rng.integers(n, size=num_new)
    return GraphDelta.undirected(
        add_features=rng.normal(size=(num_new, graph.num_features)),
        add_edges=np.vstack([np.concatenate([src, anchor_src]),
                             np.concatenate([dst, anchor_dst])]),
        add_labels=rng.integers(3, size=num_new),
    )


def brute_force_ball(graph: Graph, seeds: np.ndarray, num_hops: int) -> set:
    src, dst = graph.edge_index
    field = set(int(s) for s in seeds)
    frontier = set(field)
    for _ in range(num_hops):
        nxt = set()
        for s, d in zip(src.tolist(), dst.tolist(), strict=True):
            if s in frontier and d not in field:
                nxt.add(d)
        field |= nxt
        frontier = nxt
    return field


class TestSymmetryCheck:
    def test_accepts_symmetric(self):
        check_symmetric_edges(symmetrize_edges(np.array([[0, 1], [1, 2]])))

    def test_rejects_one_directional(self):
        with pytest.raises(ValueError, match="not symmetric"):
            check_symmetric_edges(np.array([[0], [1]]))

    def test_constructor_validates(self):
        graph = random_graph()
        graph.edge_index = graph.edge_index[:, :-1]
        graph.invalidate_caches()
        with pytest.raises(ValueError, match="not symmetric"):
            DynamicGraph(graph)


class TestIncrementalMaintenance:
    def test_csr_matches_rebuild_after_deltas(self):
        graph = random_graph()
        dynamic = DynamicGraph(graph, num_hops=2)
        for seed in range(4):
            dynamic.apply(random_delta(graph, seed=seed))
        indptr, indices = build_edge_csr(graph.edge_index, graph.num_nodes)
        np.testing.assert_array_equal(dynamic._indptr, indptr)
        # Segment contents must match as multisets (order within a source's
        # segment is an implementation detail of the merge).
        for v in range(graph.num_nodes):
            mine = np.sort(dynamic._indices[dynamic._indptr[v]:dynamic._indptr[v + 1]])
            ref = np.sort(indices[indptr[v]:indptr[v + 1]])
            np.testing.assert_array_equal(mine, ref)

    def test_degrees_match_rebuild(self):
        graph = random_graph(seed=2)
        dynamic = DynamicGraph(graph, num_hops=2)
        for seed in range(3):
            dynamic.apply(random_delta(graph, seed=10 + seed))
        src, dst = graph.edge_index
        expected = np.bincount(src[src != dst],
                               minlength=graph.num_nodes).astype(float) + 1.0
        np.testing.assert_array_equal(dynamic.degrees(), expected)

    def test_report_versions_and_counters(self):
        graph = random_graph()
        dynamic = DynamicGraph(graph, num_hops=2)
        v0 = graph.cache_version
        report = dynamic.apply(random_delta(graph, num_new=2, seed=5))
        assert report.old_cache_version == v0
        assert report.new_cache_version == graph.cache_version == v0 + 1
        assert report.new_num_nodes == report.old_num_nodes + 2
        assert dynamic.deltas_applied == 1
        assert dynamic.last_report is report


class TestAffectedSet:
    @pytest.mark.parametrize("num_hops", [1, 2])
    def test_affected_is_k_hop_ball_around_seeds(self, num_hops):
        graph = random_graph(seed=4)
        dynamic = DynamicGraph(graph, num_hops=num_hops)
        delta = random_delta(graph, seed=6)
        report = dynamic.apply(delta)
        expected = brute_force_ball(graph, report.seeds, num_hops)
        assert set(report.affected.tolist()) == expected

    def test_seeds_are_touched_nodes(self):
        graph = random_graph(seed=1)
        dynamic = DynamicGraph(graph, num_hops=2)
        old_n = graph.num_nodes
        delta = random_delta(graph, seed=7)
        report = dynamic.apply(delta)
        np.testing.assert_array_equal(report.seeds, delta.touched_nodes(old_n))

    def test_batch_covers_double_radius(self):
        graph = random_graph(seed=8)
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(random_delta(graph, seed=9))
        batch = report.batch
        expected_field = brute_force_ball(graph, report.seeds, 4)
        assert set(batch.node_ids.tolist()) == expected_field
        # Affected nodes come first and are the batch seeds.
        np.testing.assert_array_equal(
            batch.node_ids[batch.seed_local], report.affected)

    def test_batch_propagation_equals_full_graph_slice(self):
        graph = random_graph(seed=3)
        dynamic = DynamicGraph(graph, num_hops=2)
        report = dynamic.apply(random_delta(graph, seed=11))
        batch = report.batch
        full = graph.propagation().toarray()
        local = batch.graph.propagation().toarray()
        ids = batch.node_ids
        np.testing.assert_allclose(local, full[np.ix_(ids, ids)], atol=1e-12)

    def test_empty_delta_reports_nothing_affected(self):
        graph = random_graph()
        dynamic = DynamicGraph(graph)
        report = dynamic.apply(GraphDelta())
        assert report.num_affected == 0
        assert report.batch is None
        assert report.affected_fraction == 0.0

    def test_asymmetric_delta_rejected(self):
        graph = random_graph()
        dynamic = DynamicGraph(graph)
        with pytest.raises(ValueError, match="not symmetric"):
            dynamic.apply(GraphDelta(add_edges=np.array([[0], [1]])))
