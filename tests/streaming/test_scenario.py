"""StreamScenario construction: structure invariants and determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.splits import OpenWorldDataset, make_open_world_split
from repro.graphs.generators import SBMConfig, generate_sbm_graph
from repro.streaming import check_symmetric_edges, make_stream_scenario


@pytest.fixture(scope="module")
def dataset() -> OpenWorldDataset:
    config = SBMConfig(num_nodes=240, num_classes=4, avg_degree=8.0,
                       homophily=0.9, feature_dim=12, feature_sparsity=0.0,
                       feature_noise=0.3)
    graph = generate_sbm_graph(config, seed=5, name="stream-sbm")
    split = make_open_world_split(graph, seen_fraction=0.5,
                                  labels_per_class=10, seed=5)
    return OpenWorldDataset(graph=graph, split=split, name="stream-sbm")


class TestStructure:
    def test_every_node_appears_exactly_once(self, dataset):
        scenario = make_stream_scenario(dataset, num_steps=5, seed=0)
        assert scenario.total_nodes == dataset.graph.num_nodes
        ids = [scenario.base.graph.num_nodes + i
               for i in range(scenario.total_nodes - scenario.base.graph.num_nodes)]
        streamed = np.concatenate([e.node_ids for e in scenario.events])
        np.testing.assert_array_equal(np.sort(streamed), ids)

    def test_replay_reconstructs_full_graph(self, dataset):
        """Base + all deltas must equal the original graph up to relabeling."""
        scenario = make_stream_scenario(dataset, num_steps=4, seed=1)
        graph = scenario.base.graph.copy()
        for event in scenario.events:
            graph.apply_delta(event.delta)
        assert graph.num_nodes == dataset.graph.num_nodes
        assert graph.num_edges == dataset.graph.num_edges
        # Label multiset is preserved under the stream-id permutation.
        np.testing.assert_array_equal(np.sort(graph.labels),
                                      np.sort(dataset.graph.labels))
        # Degree multiset too (edges were only relabeled, never dropped).
        deg = np.bincount(graph.edge_index[0], minlength=graph.num_nodes)
        ref = np.bincount(dataset.graph.edge_index[0],
                          minlength=dataset.graph.num_nodes)
        np.testing.assert_array_equal(np.sort(deg), np.sort(ref))

    def test_deltas_are_symmetric(self, dataset):
        scenario = make_stream_scenario(dataset, num_steps=4, seed=2)
        for event in scenario.events:
            if event.delta.num_new_edges:
                check_symmetric_edges(event.delta.add_edges)

    def test_withheld_class_absent_from_base_until_entry_step(self, dataset):
        scenario = make_stream_scenario(dataset, num_steps=6, entry_step=3,
                                        seed=0)
        withheld = scenario.withheld_classes
        assert not np.isin(scenario.base.graph.labels, withheld).any()
        for event in scenario.events:
            if event.step < 3:
                assert not np.isin(event.labels, withheld).any()
        assert scenario.first_withheld_step() == 3
        # The withheld class is gone from the base split's novel classes.
        assert not np.isin(withheld, scenario.base.split.novel_classes).any()

    def test_train_val_nodes_stay_in_base(self, dataset):
        scenario = make_stream_scenario(dataset, num_steps=5, seed=3)
        base = scenario.base
        labels = base.graph.labels
        np.testing.assert_array_equal(
            labels[base.split.train_nodes],
            dataset.graph.labels[dataset.split.train_nodes])
        assert base.split.train_nodes.max() < base.graph.num_nodes
        assert base.split.val_nodes.max() < base.graph.num_nodes

    def test_reveal_only_marks_seen_class_arrivals(self, dataset):
        scenario = make_stream_scenario(dataset, num_steps=5,
                                        reveal_fraction=1.0, seed=0)
        seen = dataset.split.seen_classes
        for event in scenario.events:
            seen_mask = np.isin(event.labels, seen)
            np.testing.assert_array_equal(event.revealed, seen_mask)

    def test_arrival_labels_match_delta_labels(self, dataset):
        scenario = make_stream_scenario(dataset, num_steps=4, seed=0)
        for event in scenario.events:
            np.testing.assert_array_equal(event.labels, event.delta.add_labels)


class TestDeterminismAndValidation:
    def test_same_seed_same_scenario(self, dataset):
        a = make_stream_scenario(dataset, num_steps=5, seed=9)
        b = make_stream_scenario(dataset, num_steps=5, seed=9)
        for ea, eb in zip(a.events, b.events, strict=True):
            np.testing.assert_array_equal(ea.node_ids, eb.node_ids)
            np.testing.assert_array_equal(ea.delta.add_edges, eb.delta.add_edges)
            np.testing.assert_array_equal(ea.revealed, eb.revealed)

    def test_different_seed_different_stream(self, dataset):
        a = make_stream_scenario(dataset, num_steps=5, seed=0)
        b = make_stream_scenario(dataset, num_steps=5, seed=1)
        # Stream ids are consecutive by construction; the *content* differs.
        assert any(
            ea.delta.add_features.shape != eb.delta.add_features.shape
            or not np.array_equal(ea.delta.add_features, eb.delta.add_features)
            for ea, eb in zip(a.events, b.events, strict=True))

    def test_cannot_withhold_every_novel_class(self, dataset):
        with pytest.raises(ValueError, match="at least one novel class"):
            make_stream_scenario(
                dataset, withheld_classes=dataset.split.novel_classes)

    def test_withheld_must_be_novel(self, dataset):
        seen = int(dataset.split.seen_classes[0])
        with pytest.raises(ValueError, match="must all be novel"):
            make_stream_scenario(dataset, withheld_classes=[seen])

    def test_parameter_validation(self, dataset):
        with pytest.raises(ValueError, match="num_steps"):
            make_stream_scenario(dataset, num_steps=0)
        with pytest.raises(ValueError, match="base_fraction"):
            make_stream_scenario(dataset, base_fraction=1.0)
        with pytest.raises(ValueError, match="entry_step"):
            make_stream_scenario(dataset, num_steps=4, entry_step=4)
        with pytest.raises(ValueError, match="reveal_fraction"):
            make_stream_scenario(dataset, reveal_fraction=1.5)

    def test_describe_round_trips_to_json(self, dataset):
        import json

        scenario = make_stream_scenario(dataset, num_steps=3, seed=0)
        payload = json.loads(json.dumps(scenario.describe()))
        assert payload["num_steps"] == 3
        assert payload["total_nodes"] == dataset.graph.num_nodes
