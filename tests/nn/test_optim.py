"""Tests for the SGD and Adam optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.init import glorot_normal, glorot_uniform, zeros_init
from repro.nn.layers import Linear, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    """Simple convex objective ||p - 3||^2 with minimum at 3."""
    diff = param - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        param_plain = Parameter(np.zeros(1))
        param_momentum = Parameter(np.zeros(1))
        plain = SGD([param_plain], lr=0.01)
        momentum = SGD([param_momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            for param, optimizer in ((param_plain, plain), (param_momentum, momentum)):
                optimizer.zero_grad()
                quadratic_loss(param).backward()
                optimizer.step()
        assert abs(param_momentum.data[0] - 3.0) < abs(param_plain.data[0] - 3.0)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.full(3, 10.0))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert (param.data < 10.0).all()

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no gradient computed -> no change, no crash
        np.testing.assert_allclose(param.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-2)

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_weight = rng.normal(size=(3, 1))
        x = rng.normal(size=(64, 3))
        y = x @ true_weight
        layer = Linear(3, 1, bias=False, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            pred = layer(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_weight, atol=0.05)

    def test_weight_decay_changes_trajectory(self):
        param_a = Parameter(np.full(2, 5.0))
        param_b = Parameter(np.full(2, 5.0))
        adam_plain = Adam([param_a], lr=0.1)
        adam_decay = Adam([param_b], lr=0.1, weight_decay=1.0)
        for _ in range(10):
            for param, optimizer in ((param_a, adam_plain), (param_b, adam_decay)):
                optimizer.zero_grad()
                quadratic_loss(param).backward()
                optimizer.step()
        assert not np.allclose(param_a.data, param_b.data)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestInitializers:
    def test_glorot_uniform_bounds(self):
        rng = np.random.default_rng(0)
        values = glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert values.max() <= limit and values.min() >= -limit

    def test_glorot_normal_scale(self):
        rng = np.random.default_rng(1)
        values = glorot_normal((200, 100), rng)
        expected_std = np.sqrt(2.0 / 300)
        assert values.std() == pytest.approx(expected_std, rel=0.2)

    def test_zeros_init(self):
        assert zeros_init((3, 3)).sum() == 0.0

    def test_glorot_vector_shape(self):
        rng = np.random.default_rng(2)
        assert glorot_uniform((7,), rng).shape == (7,)


class TestOptimizerStateDict:
    def _train_steps(self, param, optimizer, steps):
        for _ in range(steps):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()

    def test_adam_state_dict_contents(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.1)
        self._train_steps(param, optimizer, 3)
        state = optimizer.state_dict()
        assert state["step_count"] == 3
        assert len(state["m"]) == 1 and state["m"][0].shape == (4,)
        assert len(state["v"]) == 1 and state["v"][0].shape == (4,)

    def test_adam_resume_matches_uninterrupted(self):
        param_a = Parameter(np.zeros(4))
        optimizer_a = Adam([param_a], lr=0.1)
        self._train_steps(param_a, optimizer_a, 10)

        param_b = Parameter(np.zeros(4))
        optimizer_b = Adam([param_b], lr=0.1)
        self._train_steps(param_b, optimizer_b, 4)
        saved_state = optimizer_b.state_dict()
        saved_param = param_b.data.copy()

        param_c = Parameter(saved_param.copy())
        optimizer_c = Adam([param_c], lr=0.1)
        optimizer_c.load_state_dict(saved_state)
        self._train_steps(param_c, optimizer_c, 6)
        np.testing.assert_array_equal(param_a.data, param_c.data)

    def test_sgd_resume_matches_uninterrupted(self):
        param_a = Parameter(np.zeros(4))
        optimizer_a = SGD([param_a], lr=0.05, momentum=0.9)
        self._train_steps(param_a, optimizer_a, 10)

        param_b = Parameter(np.zeros(4))
        optimizer_b = SGD([param_b], lr=0.05, momentum=0.9)
        self._train_steps(param_b, optimizer_b, 4)

        param_c = Parameter(param_b.data.copy())
        optimizer_c = SGD([param_c], lr=0.05, momentum=0.9)
        optimizer_c.load_state_dict(optimizer_b.state_dict())
        self._train_steps(param_c, optimizer_c, 6)
        np.testing.assert_array_equal(param_a.data, param_c.data)

    def test_buffer_count_mismatch_rejected(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.1)
        state = optimizer.state_dict()
        state["m"] = state["m"] + [np.zeros(4)]
        with pytest.raises(ValueError, match="buffers"):
            optimizer.load_state_dict(state)

    def test_buffer_shape_mismatch_rejected(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.1)
        state = optimizer.state_dict()
        state["v"] = [np.zeros(5)]
        with pytest.raises(ValueError, match="shape"):
            optimizer.load_state_dict(state)

    def test_state_dict_is_a_copy(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.1)
        self._train_steps(param, optimizer, 1)
        state = optimizer.state_dict()
        state["m"][0][:] = 123.0
        assert not np.allclose(optimizer._m[0], 123.0)
