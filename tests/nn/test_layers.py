"""Tests for the Module/layer abstractions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import ELU, Dropout, Linear, Module, Parameter, ReLU, Sequential
from repro.nn.tensor import Tensor


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_forward_matches_manual(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_gradients_reach_parameters(self):
        layer = Linear(3, 2, rng=np.random.default_rng(2))
        out = layer(Tensor(np.ones((5, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 5.0))


class TestDropout:
    def test_train_vs_eval(self):
        layer = Dropout(0.5, rng=np.random.default_rng(3))
        x = Tensor(np.ones((50, 10)))
        layer.train()
        dropped = layer(x).data
        assert (dropped == 0).any()
        layer.eval()
        np.testing.assert_array_equal(layer(x).data, x.data)


class TestModule:
    def test_parameters_collects_children(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 3, rng=np.random.default_rng(0))
                self.fc2 = Linear(3, 2, rng=np.random.default_rng(1))

            def forward(self, x):
                return self.fc2(self.fc1(x).relu())

        net = Net()
        assert len(net.parameters()) == 4
        names = dict(net.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(4, 4, rng=np.random.default_rng(0)), Dropout(0.5), ReLU())
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self):
        layer = Linear(3, 3, rng=np.random.default_rng(0))
        layer(Tensor(np.ones((2, 3)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        layer_a = Linear(4, 2, rng=np.random.default_rng(0))
        layer_b = Linear(4, 2, rng=np.random.default_rng(99))
        assert not np.allclose(layer_a.weight.data, layer_b.weight.data)
        layer_b.load_state_dict(layer_a.state_dict())
        np.testing.assert_allclose(layer_a.weight.data, layer_b.weight.data)

    def test_state_dict_mismatch_raises(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((4, 2))})

    def test_state_dict_shape_mismatch_raises(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        bad = layer.state_dict()
        bad["weight"] = np.zeros((3, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(bad)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestSequentialAndActivations:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(4)
        seq = Sequential(Linear(3, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        out = seq(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)
        assert len(seq) == 3

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0]))).data
        np.testing.assert_allclose(out, [0.0, 2.0])

    def test_elu_module(self):
        out = ELU()(Tensor(np.array([-1.0, 2.0]))).data
        np.testing.assert_allclose(out, [np.expm1(-1.0), 2.0])

    def test_parameter_is_trainable(self):
        param = Parameter(np.ones(3))
        assert param.requires_grad


class TestStrictStateDict:
    def _layer(self, seed=0):
        return Linear(4, 2, rng=np.random.default_rng(seed))

    def test_strict_error_lists_missing_and_unexpected(self):
        layer = self._layer()
        state = layer.state_dict()
        del state["bias"]
        state["extra"] = np.zeros(3)
        with pytest.raises(KeyError) as excinfo:
            layer.load_state_dict(state)
        message = str(excinfo.value)
        assert "missing" in message and "bias" in message
        assert "unexpected" in message and "extra" in message

    def test_non_strict_loads_intersection(self):
        layer_a = self._layer(0)
        layer_b = self._layer(99)
        state = layer_a.state_dict()
        del state["bias"]
        state["extra"] = np.zeros(3)
        result = layer_b.load_state_dict(state, strict=False)
        assert result.missing_keys == ["bias"]
        assert result.unexpected_keys == ["extra"]
        np.testing.assert_allclose(layer_a.weight.data, layer_b.weight.data)

    def test_shape_error_reports_both_shapes(self):
        layer = self._layer()
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 2))
        with pytest.raises(ValueError) as excinfo:
            layer.load_state_dict(state)
        message = str(excinfo.value)
        assert "(3, 2)" in message and "(4, 2)" in message and "weight" in message

    def test_shape_error_even_when_not_strict(self):
        layer = self._layer()
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(state, strict=False)

    def test_successful_load_returns_empty_result(self):
        layer_a = self._layer(0)
        layer_b = self._layer(99)
        result = layer_b.load_state_dict(layer_a.state_dict())
        assert result.missing_keys == [] and result.unexpected_keys == []
