"""Numerical gradient checking for the autodiff engine.

:func:`gradcheck` compares the analytic gradients produced by
``Tensor.backward`` against central finite differences

    df/dx_i ~= (f(x + eps * e_i) - f(x - eps * e_i)) / (2 * eps)

for every element of every differentiable input.  Non-scalar outputs are
reduced to a scalar through a fixed random projection so that the full
Jacobian is exercised without materializing it.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-7,
    rtol: float = 1e-5,
    seed: int = 0,
) -> bool:
    """Check analytic against numerical gradients of ``fn``.

    Parameters
    ----------
    fn:
        Function mapping ``len(inputs)`` Tensors to one output Tensor (any
        shape).  It must be deterministic: it is re-evaluated many times.
    inputs:
        Float arrays used as the differentiation points.
    eps:
        Central-difference step.  With float64 inputs the truncation plus
        round-off error is ~1e-10 at the default step.
    atol / rtol:
        Tolerances of the element-wise comparison.

    Raises ``AssertionError`` with the offending input index and the maximal
    absolute deviation when a gradient mismatches; returns True otherwise.
    """
    arrays = [np.asarray(value, dtype=np.float64) for value in inputs]

    probe = fn(*[Tensor(arr, requires_grad=True) for arr in arrays])
    projection = np.random.default_rng(seed).normal(size=probe.shape)

    def scalar(*values: np.ndarray) -> float:
        out = fn(*[Tensor(value, requires_grad=True) for value in values])
        return float((out.data * projection).sum())

    # Analytic gradients.
    tensors = [Tensor(arr, requires_grad=True) for arr in arrays]
    output = fn(*tensors)
    (output * Tensor(projection)).sum().backward()

    for index, (tensor, arr) in enumerate(zip(tensors, arrays, strict=True)):
        assert tensor.grad is not None, f"input {index}: no gradient accumulated"
        numerical = np.zeros_like(arr)
        flat = numerical.ravel()
        for element in range(arr.size):
            shifted = arr.copy().ravel()
            shifted[element] += eps
            plus = scalar(*[shifted.reshape(arr.shape) if i == index else arrays[i]
                            for i in range(len(arrays))])
            shifted[element] -= 2 * eps
            minus = scalar(*[shifted.reshape(arr.shape) if i == index else arrays[i]
                             for i in range(len(arrays))])
            flat[element] = (plus - minus) / (2 * eps)
        deviation = np.abs(tensor.grad - numerical)
        bound = atol + rtol * np.abs(numerical)
        assert (deviation <= bound).all(), (
            f"input {index}: analytic/numerical gradient mismatch, "
            f"max abs deviation {deviation.max():.3e} "
            f"(atol={atol}, rtol={rtol})\nanalytic:\n{tensor.grad}\n"
            f"numerical:\n{numerical}"
        )
    return True
