"""Tests for the autodiff Tensor engine, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, cat, is_grad_enabled, no_grad, ones, stack, zeros


def numerical_gradient(func, array, eps=1e-6):
    """Central-difference numerical gradient of a scalar-valued ``func``."""
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func(array)
        flat[i] = original - eps
        minus = func(array)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, atol=1e-4):
    """Compare autodiff gradient of ``op(Tensor)`` against finite differences."""
    rng = np.random.default_rng(seed)
    array = rng.normal(size=shape)
    tensor = Tensor(array.copy(), requires_grad=True)
    out = op(tensor)
    out.backward()
    analytic = tensor.grad

    def scalar_fn(values):
        return float(op(Tensor(values)).data)

    numeric = numerical_gradient(scalar_fn, array.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestBasicOps:
    def test_add_backward(self):
        check_gradient(lambda t: (t + 3.0).sum(), (4, 3))

    def test_mul_backward(self):
        check_gradient(lambda t: (t * t).sum(), (4, 3))

    def test_sub_and_neg_backward(self):
        check_gradient(lambda t: (t - t * 2.0).sum(), (5,))

    def test_div_backward(self):
        check_gradient(lambda t: (t / (t * t + 2.0)).sum(), (3, 3))

    def test_pow_backward(self):
        check_gradient(lambda t: (t ** 3).sum(), (4,))

    def test_matmul_backward(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(3, 2))
        check_gradient(lambda t: t.matmul(Tensor(other)).sum(), (4, 3))

    def test_exp_log_backward(self):
        check_gradient(lambda t: ((t.exp() + 1.0).log()).sum(), (4, 2))

    def test_broadcast_add_backward(self):
        rng = np.random.default_rng(2)
        bias = Tensor(rng.normal(size=(3,)), requires_grad=True)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        out = (x + bias).sum()
        out.backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0))
        np.testing.assert_allclose(x.grad, np.ones((5, 3)))

    def test_radd_rmul_with_scalars(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = (3.0 + t) * 2.0
        np.testing.assert_allclose(out.data, [8.0, 10.0])

    def test_rsub_rtruediv(self):
        t = Tensor(np.array([2.0, 4.0]))
        np.testing.assert_allclose((10.0 - t).data, [8.0, 6.0])
        np.testing.assert_allclose((8.0 / t).data, [4.0, 2.0])


class TestActivations:
    def test_relu_backward(self):
        check_gradient(lambda t: t.relu().sum(), (6,), seed=3)

    def test_leaky_relu_backward(self):
        check_gradient(lambda t: t.leaky_relu(0.1).sum(), (6,), seed=4)

    def test_elu_backward(self):
        check_gradient(lambda t: t.elu().sum(), (6,), seed=5)

    def test_sigmoid_backward(self):
        check_gradient(lambda t: t.sigmoid().sum(), (5,), seed=6)

    def test_tanh_backward(self):
        check_gradient(lambda t: t.tanh().sum(), (5,), seed=7)

    def test_elu_values(self):
        t = Tensor(np.array([-1.0, 0.0, 2.0]))
        out = t.elu().data
        np.testing.assert_allclose(out, [np.expm1(-1.0), 0.0, 2.0])

    def test_clip(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        out = t.clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_backward(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 4))

    def test_mean_backward(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (3, 4))

    def test_mean_value(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert t.mean().item() == pytest.approx(2.5)

    def test_max_backward_axis(self):
        rng = np.random.default_rng(8)
        array = rng.normal(size=(4, 3))
        t = Tensor(array, requires_grad=True)
        out = t.max(axis=1).sum()
        out.backward()
        # Gradient of max puts 1 at the argmax of each row.
        expected = np.zeros_like(array)
        expected[np.arange(4), array.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_max_global(self):
        t = Tensor(np.array([[1.0, 5.0], [2.0, 3.0]]), requires_grad=True)
        t.max().backward()
        assert t.grad[0, 1] == pytest.approx(1.0)
        assert t.grad.sum() == pytest.approx(1.0)

    def test_sum_backward_accumulates_into_existing_buffer(self):
        # The broadcast accumulator must add into the buffer in place (no
        # broadcast_to(...).copy() temporary, no rebinding).
        t = Tensor(np.ones((3, 4)), requires_grad=True)
        (t.sum() + (t * 2.0).sum()).backward()
        np.testing.assert_allclose(t.grad, np.full((3, 4), 3.0))
        buffer = t.grad
        first = t.sum()
        first.backward()
        assert t.grad is buffer
        np.testing.assert_allclose(t.grad, np.full((3, 4), 4.0))

    def test_sum_backward_allocates_owned_buffer(self):
        # With no prior grad, the accumulated buffer must be owned and
        # writable — not a frozen broadcast view of the output grad.
        t = Tensor(np.ones((2, 5)), requires_grad=True)
        t.sum().backward()
        assert t.grad.shape == (2, 5)
        assert t.grad.flags.writeable and t.grad.flags.owndata
        np.testing.assert_allclose(t.grad, np.ones((2, 5)))

    def test_sum_keepdims_backward(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(),
                       (3, 4))

    def test_max_backward_accumulates_into_existing_buffer(self):
        array = np.array([[1.0, 5.0], [2.0, 3.0]])
        t = Tensor(array, requires_grad=True)
        (t.max() + t.sum()).backward()
        buffer = t.grad
        np.testing.assert_allclose(
            t.grad, np.array([[1.0, 2.0], [1.0, 1.0]]))
        t.max(axis=1).sum().backward()
        assert t.grad is buffer
        np.testing.assert_allclose(
            t.grad, np.array([[1.0, 3.0], [1.0, 2.0]]))


class TestIndexingAndShapes:
    def test_gather_rows_backward(self):
        array = np.arange(12, dtype=float).reshape(4, 3)
        t = Tensor(array, requires_grad=True)
        gathered = t.gather_rows(np.array([0, 2, 2]))
        gathered.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 1.0
        expected[2] = 2.0
        np.testing.assert_allclose(t.grad, expected)

    def test_scatter_add_rows(self):
        t = Tensor(np.ones((3, 2)), requires_grad=True)
        out = t.scatter_add_rows(np.array([0, 0, 1]), num_rows=2)
        np.testing.assert_allclose(out.data, [[2.0, 2.0], [1.0, 1.0]])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((3, 2)))

    def test_getitem_tuple(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        picked = t[np.array([0, 1]), np.array([2, 0])]
        np.testing.assert_allclose(picked.data, [2.0, 3.0])
        picked.sum().backward()
        expected = np.zeros((2, 3))
        expected[0, 2] = 1.0
        expected[1, 0] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_reshape_backward(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose_backward(self):
        check_gradient(lambda t: (t.transpose() ** 2).sum(), (2, 3))

    def test_cat_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((3, 2), 2.0), requires_grad=True)
        out = cat([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 3.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 3.0))

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        detached = t.detach()
        assert not detached.requires_grad
        out = (detached * 2.0).sum()
        assert not out.requires_grad

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            out = (t * 2.0).sum()
            assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_is_thread_local(self):
        # A threads-backend inference worker entering no_grad() must not
        # switch off recording for a concurrently training thread.
        import threading

        entered = threading.Event()
        release = threading.Event()
        seen_in_thread = []

        def hold_no_grad():
            with no_grad():
                entered.set()
                release.wait(timeout=5.0)

        def record_elsewhere():
            seen_in_thread.append(is_grad_enabled())

        holder = threading.Thread(target=hold_no_grad)
        holder.start()
        try:
            assert entered.wait(timeout=5.0)
            # This thread and a third, fresh thread both still record.
            assert is_grad_enabled()
            t = Tensor(np.ones(2), requires_grad=True)
            assert (t * 2.0).sum().requires_grad
            other = threading.Thread(target=record_elsewhere)
            other.start()
            other.join(timeout=5.0)
            assert seen_in_thread == [True]
        finally:
            release.set()
            holder.join(timeout=5.0)
        assert is_grad_enabled()

    def test_gradient_accumulation_over_reuse(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (t * t + t).sum()  # d/dt = 2t + 1 = 5
        out.backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_repr_and_properties(self):
        t = Tensor(np.ones((2, 3)))
        assert "shape=(2, 3)" in repr(t)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_helpers(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4


class TestPropertyBased:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_matmul_gradient_shapes(self, n, m):
        rng = np.random.default_rng(n * 10 + m)
        a = Tensor(rng.normal(size=(n, m)), requires_grad=True)
        b = Tensor(rng.normal(size=(m, 3)), requires_grad=True)
        out = a.matmul(b).sum()
        out.backward()
        assert a.grad.shape == (n, m)
        assert b.grad.shape == (m, 3)

    @given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, values):
        array = np.asarray(values)
        assert Tensor(array).sum().item() == pytest.approx(array.sum(), abs=1e-9)

    @given(st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_exp_positive(self, values):
        out = Tensor(np.asarray(values)).exp().data
        assert (out > 0).all()
