"""Finite-difference regression tests for every Tensor operation.

Each test checks the analytic backward rule of one op (or one composite from
``repro.nn.functional``) against central differences via
:mod:`tests.nn.gradcheck`.  Input data is kept away from non-differentiable
points (kinks of relu/clip, ties of max) so the numerical derivative is
well-defined.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import functional as F
from repro.nn.tensor import Tensor, cat, sparse_matmul, stack

from .gradcheck import gradcheck


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


def away_from_zero(rng, shape, low=0.2, high=1.5):
    """Random values in +-[low, high]: safe for kinked activations."""
    magnitude = rng.uniform(low, high, size=shape)
    sign = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return magnitude * sign


class TestArithmeticOps:
    def test_add(self, rng):
        gradcheck(lambda a, b: a + b, [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))])

    def test_add_broadcast(self, rng):
        gradcheck(lambda a, b: a + b, [rng.normal(size=(3, 4)), rng.normal(size=(4,))])

    def test_radd_scalar(self, rng):
        gradcheck(lambda a: 2.5 + a, [rng.normal(size=(3, 4))])

    def test_neg(self, rng):
        gradcheck(lambda a: -a, [rng.normal(size=(3, 4))])

    def test_sub(self, rng):
        gradcheck(lambda a, b: a - b, [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))])

    def test_rsub_scalar(self, rng):
        gradcheck(lambda a: 1.0 - a, [rng.normal(size=(3, 4))])

    def test_mul(self, rng):
        gradcheck(lambda a, b: a * b, [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))])

    def test_mul_broadcast(self, rng):
        gradcheck(lambda a, b: a * b, [rng.normal(size=(2, 3, 4)), rng.normal(size=(3, 4))])

    def test_div(self, rng):
        gradcheck(
            lambda a, b: a / b,
            [rng.normal(size=(3, 4)), away_from_zero(rng, (3, 4), low=0.5)],
        )

    def test_rdiv_scalar(self, rng):
        gradcheck(lambda a: 2.0 / a, [away_from_zero(rng, (3, 4), low=0.5)])

    def test_pow(self, rng):
        gradcheck(lambda a: a ** 3, [rng.normal(size=(3, 4))])
        gradcheck(lambda a: a ** 0.5, [rng.uniform(0.5, 2.0, size=(3, 4))])

    def test_matmul_2d(self, rng):
        gradcheck(lambda a, b: a.matmul(b), [rng.normal(size=(3, 4)), rng.normal(size=(4, 5))])

    def test_matmul_batched_2d_by_3d(self, rng):
        # The GAT head projection shape: (N, F) @ (H, F, O) -> (H, N, O).
        gradcheck(
            lambda a, b: a.matmul(b), [rng.normal(size=(5, 3)), rng.normal(size=(2, 3, 4))]
        )

    def test_matmul_batched_3d_by_2d(self, rng):
        gradcheck(
            lambda a, b: a.matmul(b), [rng.normal(size=(2, 5, 3)), rng.normal(size=(3, 4))]
        )

    def test_matmul_rejects_1d_operands(self, rng):
        from repro.nn.tensor import Tensor

        with pytest.raises(ValueError, match="ndim >= 2"):
            Tensor(rng.normal(size=3)).matmul(Tensor(rng.normal(size=(3, 2))))
        with pytest.raises(ValueError, match="ndim >= 2"):
            Tensor(rng.normal(size=(2, 3))).matmul(Tensor(rng.normal(size=3)))

    def test_matmul_batched_3d_by_3d(self, rng):
        gradcheck(
            lambda a, b: a.matmul(b),
            [rng.normal(size=(2, 5, 3)), rng.normal(size=(2, 3, 4))],
        )


class TestElementwiseOps:
    def test_exp(self, rng):
        gradcheck(lambda a: a.exp(), [rng.normal(size=(3, 4))])

    def test_log(self, rng):
        gradcheck(lambda a: a.log(), [rng.uniform(0.5, 3.0, size=(3, 4))])

    def test_sqrt(self, rng):
        gradcheck(lambda a: a.sqrt(), [rng.uniform(0.5, 3.0, size=(3, 4))])

    def test_relu(self, rng):
        gradcheck(lambda a: a.relu(), [away_from_zero(rng, (3, 4))])

    def test_leaky_relu(self, rng):
        gradcheck(lambda a: a.leaky_relu(0.2), [away_from_zero(rng, (3, 4))])

    def test_elu(self, rng):
        gradcheck(lambda a: a.elu(1.0), [away_from_zero(rng, (3, 4))])

    def test_sigmoid(self, rng):
        gradcheck(lambda a: a.sigmoid(), [rng.normal(size=(3, 4))])

    def test_tanh(self, rng):
        gradcheck(lambda a: a.tanh(), [rng.normal(size=(3, 4))])

    def test_clip(self, rng):
        # Values at least 0.1 away from the clip boundaries -1 / +1.
        data = rng.uniform(-2.0, 2.0, size=(4, 5))
        data[np.abs(np.abs(data) - 1.0) < 0.1] = 0.5
        gradcheck(lambda a: a.clip(-1.0, 1.0), [data])


class TestReductionOps:
    def test_sum_all(self, rng):
        gradcheck(lambda a: a.sum(), [rng.normal(size=(3, 4))])

    def test_sum_axis(self, rng):
        gradcheck(lambda a: a.sum(axis=0), [rng.normal(size=(3, 4))])
        gradcheck(lambda a: a.sum(axis=-1), [rng.normal(size=(2, 3, 4))])

    def test_sum_keepdims(self, rng):
        gradcheck(lambda a: a.sum(axis=1, keepdims=True), [rng.normal(size=(3, 4))])

    def test_mean(self, rng):
        gradcheck(lambda a: a.mean(), [rng.normal(size=(3, 4))])
        gradcheck(lambda a: a.mean(axis=1), [rng.normal(size=(2, 3, 4))])

    def test_max_all(self, rng):
        gradcheck(lambda a: a.max(), [rng.normal(size=(3, 4))])

    def test_max_axis(self, rng):
        gradcheck(lambda a: a.max(axis=1), [rng.normal(size=(3, 4))])
        gradcheck(lambda a: a.max(axis=0, keepdims=True), [rng.normal(size=(3, 4))])


class TestShapeOps:
    def test_reshape(self, rng):
        gradcheck(lambda a: a.reshape(4, 3), [rng.normal(size=(3, 4))])
        gradcheck(lambda a: a.reshape(-1), [rng.normal(size=(3, 4))])

    def test_transpose(self, rng):
        gradcheck(lambda a: a.transpose(), [rng.normal(size=(3, 4))])
        gradcheck(lambda a: a.transpose((1, 0, 2)), [rng.normal(size=(2, 3, 4))])

    def test_gather_rows(self, rng):
        indices = np.array([0, 2, 2, 1])  # duplicates exercise scatter-add backward
        gradcheck(lambda a: a.gather_rows(indices), [rng.normal(size=(3, 4))])

    def test_getitem_slice(self, rng):
        gradcheck(lambda a: a[1:3], [rng.normal(size=(4, 5))])

    def test_getitem_int(self, rng):
        gradcheck(lambda a: a[2], [rng.normal(size=(4, 5))])

    def test_scatter_add_rows(self, rng):
        indices = np.array([1, 0, 1, 3])
        gradcheck(lambda a: a.scatter_add_rows(indices, 4), [rng.normal(size=(4, 5))])

    def test_cat(self, rng):
        gradcheck(
            lambda a, b: cat([a, b], axis=0),
            [rng.normal(size=(2, 3)), rng.normal(size=(4, 3))],
        )
        gradcheck(
            lambda a, b: cat([a, b], axis=1),
            [rng.normal(size=(3, 2)), rng.normal(size=(3, 4))],
        )

    def test_stack(self, rng):
        gradcheck(
            lambda a, b: stack([a, b], axis=0),
            [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))],
        )


class TestSparseMatmul:
    def test_sparse_matmul_csr(self, rng):
        matrix = sp.random(6, 6, density=0.4, random_state=7, format="csr")
        gradcheck(lambda a: sparse_matmul(matrix, a), [rng.normal(size=(6, 4))])

    def test_sparse_matmul_rectangular(self, rng):
        matrix = sp.random(3, 6, density=0.5, random_state=8, format="csr")
        gradcheck(lambda a: sparse_matmul(matrix, a), [rng.normal(size=(6, 2))])

    def test_sparse_matmul_accepts_other_formats(self, rng):
        matrix = sp.random(5, 5, density=0.4, random_state=9, format="coo")
        gradcheck(lambda a: sparse_matmul(matrix, a), [rng.normal(size=(5, 3))])

    def test_sparse_matmul_matches_dense(self, rng):
        matrix = sp.random(6, 6, density=0.4, random_state=10, format="csr")
        data = rng.normal(size=(6, 4))
        out = sparse_matmul(matrix, Tensor(data))
        np.testing.assert_allclose(out.data, matrix.toarray() @ data, atol=1e-12)

    def test_sparse_matmul_rejects_dense_matrix(self, rng):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(3), Tensor(np.ones((3, 2))))

    def test_sparse_matmul_respects_no_grad(self, rng):
        from repro.nn.tensor import no_grad

        matrix = sp.identity(3, format="csr")
        with no_grad():
            out = sparse_matmul(matrix, Tensor(np.ones((3, 2)), requires_grad=True))
        assert out.requires_grad is False


class TestFunctionalComposites:
    def test_softmax(self, rng):
        gradcheck(lambda a: F.softmax(a, axis=-1), [rng.normal(size=(3, 5))])

    def test_log_softmax(self, rng):
        gradcheck(lambda a: F.log_softmax(a, axis=-1), [rng.normal(size=(3, 5))])

    def test_cross_entropy(self, rng):
        targets = np.array([0, 2, 1])
        gradcheck(lambda a: F.cross_entropy(a, targets), [rng.normal(size=(3, 4))])

    def test_binary_cross_entropy_with_logits(self, rng):
        targets = np.array([[0.0, 1.0], [1.0, 0.0]])
        gradcheck(
            lambda a: F.binary_cross_entropy_with_logits(a, targets),
            [away_from_zero(rng, (2, 2))],  # |x| has a kink at 0
        )

    def test_bce_gradient_is_sigmoid_minus_target(self, rng):
        logits = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        targets = (rng.random((3, 2)) < 0.5).astype(np.float64)
        F.binary_cross_entropy_with_logits(logits, targets).backward()
        expected = (1.0 / (1.0 + np.exp(-logits.data)) - targets) / logits.size
        np.testing.assert_allclose(logits.grad, expected, atol=1e-12)

    def test_l2_normalize(self, rng):
        gradcheck(lambda a: F.l2_normalize(a, axis=-1), [rng.normal(size=(3, 4))])

    def test_segment_softmax_1d(self, rng):
        segments = np.array([0, 0, 1, 2, 2, 2])
        gradcheck(
            lambda a: F.segment_softmax(a, segments, 3), [rng.normal(size=(6,))]
        )

    def test_segment_softmax_2d(self, rng):
        segments = np.array([0, 0, 1, 2, 2, 2])
        gradcheck(
            lambda a: F.segment_softmax(a, segments, 3), [rng.normal(size=(6, 2))]
        )

    def test_pairwise_cosine_similarity(self, rng):
        gradcheck(lambda a: F.pairwise_cosine_similarity(a), [rng.normal(size=(4, 3))])
