"""Tests for the composite differentiable functions in repro.nn.functional."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)
        assert (probs > 0).all()

    def test_shift_invariance(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        p1 = F.softmax(Tensor(logits)).data
        p2 = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(p1, p2, atol=1e-10)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(2).normal(size=(4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10
        )

    def test_numerical_stability_large_values(self):
        logits = Tensor(np.array([[1000.0, 1000.5, 999.0]]))
        probs = F.softmax(logits).data
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs.sum(), 1.0)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        rng = np.random.default_rng(3)
        logits_np = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(Tensor(logits_np), targets).item()
        shifted = logits_np - logits_np.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert loss == pytest.approx(expected, abs=1e-10)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((3, 3), -20.0)
        logits[np.arange(3), np.arange(3)] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.arange(3)).item()
        assert loss < 1e-8

    def test_gradient_direction(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        targets = np.array([0, 2])
        F.cross_entropy(logits, targets).backward()
        # Gradient is (softmax - onehot)/n: negative at the target entries.
        assert logits.grad[0, 0] < 0
        assert logits.grad[1, 2] < 0
        assert logits.grad[0, 1] > 0

    def test_reductions(self):
        logits = Tensor(np.random.default_rng(4).normal(size=(5, 3)))
        targets = np.array([0, 1, 2, 0, 1])
        per_sample = F.cross_entropy(logits, targets, reduction="none")
        assert per_sample.shape == (5,)
        total = F.cross_entropy(logits, targets, reduction="sum").item()
        assert total == pytest.approx(per_sample.data.sum())

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((3, 2))), np.array([0, 1]))


class TestBinaryCrossEntropy:
    def test_matches_reference(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=8)
        targets = rng.integers(0, 2, size=8).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss == pytest.approx(expected, abs=1e-8)


class TestL2Normalize:
    def test_unit_norm_rows(self):
        x = Tensor(np.random.default_rng(6).normal(size=(7, 5)))
        normalized = F.l2_normalize(x).data
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), np.ones(7), atol=1e-9)

    def test_zero_row_is_safe(self):
        x = Tensor(np.zeros((2, 3)))
        normalized = F.l2_normalize(x).data
        assert np.isfinite(normalized).all()

    def test_gradient_flows(self):
        x = Tensor(np.random.default_rng(7).normal(size=(3, 4)), requires_grad=True)
        F.l2_normalize(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_training_mode_scales_survivors(self):
        rng = np.random.default_rng(8)
        x = Tensor(np.ones((200, 10)))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 2.0)
        # Roughly half the entries survive.
        assert 0.4 < (out > 0).mean() < 0.6

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_zero_rate_identity(self):
        x = Tensor(np.ones(5))
        np.testing.assert_array_equal(F.dropout(x, 0.0, training=True).data, x.data)


class TestSegmentSoftmax:
    def test_segments_sum_to_one(self):
        scores = Tensor(np.random.default_rng(9).normal(size=8))
        segments = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        out = F.segment_softmax(scores, segments, num_segments=3).data
        for segment in range(3):
            np.testing.assert_allclose(out[segments == segment].sum(), 1.0, atol=1e-9)

    def test_single_edge_segment_gets_probability_one(self):
        scores = Tensor(np.array([3.0, -1.0]))
        segments = np.array([0, 1])
        out = F.segment_softmax(scores, segments, num_segments=2).data
        np.testing.assert_allclose(out, [1.0, 1.0], atol=1e-9)

    def test_multihead_scores(self):
        scores = Tensor(np.random.default_rng(10).normal(size=(6, 2)))
        segments = np.array([0, 0, 1, 1, 1, 1])
        out = F.segment_softmax(scores, segments, num_segments=2).data
        np.testing.assert_allclose(out[:2].sum(axis=0), np.ones(2), atol=1e-9)
        np.testing.assert_allclose(out[2:].sum(axis=0), np.ones(2), atol=1e-9)

    def test_gradient_flows(self):
        scores = Tensor(np.random.default_rng(11).normal(size=5), requires_grad=True)
        segments = np.array([0, 0, 1, 1, 1])
        out = F.segment_softmax(scores, segments, num_segments=2)
        (out * out).sum().backward()
        assert scores.grad is not None
        assert np.isfinite(scores.grad).all()


class TestPairwiseCosine:
    def test_diagonal_is_one(self):
        x = Tensor(np.random.default_rng(12).normal(size=(6, 4)))
        sims = F.pairwise_cosine_similarity(x).data
        np.testing.assert_allclose(np.diag(sims), np.ones(6), atol=1e-9)

    def test_symmetric_and_bounded(self):
        x = Tensor(np.random.default_rng(13).normal(size=(5, 3)))
        sims = F.pairwise_cosine_similarity(x).data
        np.testing.assert_allclose(sims, sims.T, atol=1e-10)
        assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()


class TestPropertyBased:
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_always_sum_to_one(self, n, c):
        rng = np.random.default_rng(n * 13 + c)
        probs = F.softmax(Tensor(rng.normal(size=(n, c)) * 5)).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(n), atol=1e-9)

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_cross_entropy_nonnegative(self, n):
        rng = np.random.default_rng(n)
        logits = Tensor(rng.normal(size=(n, 4)))
        targets = rng.integers(0, 4, size=n)
        assert F.cross_entropy(logits, targets).item() >= 0.0
