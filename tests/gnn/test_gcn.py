"""Tests for the GCN encoder."""

from __future__ import annotations

import numpy as np

from repro.gnn.gcn import GCNEncoder, GCNLayer
from repro.graphs.graph import Graph
from repro.graphs.utils import normalized_adjacency
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


def cycle_graph(num_nodes=8, num_features=5, seed=0):
    rng = np.random.default_rng(seed)
    src = np.arange(num_nodes)
    dst = (np.arange(num_nodes) + 1) % num_nodes
    edge_index = np.hstack([np.vstack([src, dst]), np.vstack([dst, src])])
    return Graph(features=rng.normal(size=(num_nodes, num_features)), edge_index=edge_index)


class TestGCNLayer:
    def test_shape_and_gradients(self):
        graph = cycle_graph()
        propagation = normalized_adjacency(graph).toarray()
        layer = GCNLayer(5, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(graph.features), propagation)
        assert out.shape == (8, 3)
        (out * out).sum().backward()
        assert layer.linear.weight.grad is not None
        assert np.isfinite(layer.linear.weight.grad).all()

    def test_propagation_mixes_neighbours(self):
        graph = cycle_graph()
        propagation = normalized_adjacency(graph).toarray()
        layer = GCNLayer(5, 5, rng=np.random.default_rng(1))
        # Using an identity weight approximation: check output depends on neighbours.
        layer.linear.weight.data = np.eye(5)
        layer.linear.bias.data = np.zeros(5)
        out = layer(Tensor(graph.features), propagation).data
        expected = propagation @ graph.features
        np.testing.assert_allclose(out, expected, atol=1e-10)


class TestGCNEncoder:
    def test_embedding_shape(self):
        graph = cycle_graph()
        encoder = GCNEncoder(5, hidden_dim=8, out_dim=4, dropout=0.0,
                             rng=np.random.default_rng(0))
        embeddings = encoder.embed(graph)
        assert embeddings.shape == (8, 4)
        assert np.isfinite(embeddings).all()

    def test_propagation_cache_reused(self):
        graph = cycle_graph()
        encoder = GCNEncoder(5, hidden_dim=8, out_dim=4, rng=np.random.default_rng(0))
        encoder.embed(graph)
        first_cache = encoder._cached_propagation
        encoder.embed(graph)
        assert encoder._cached_propagation is first_cache

    def test_cache_invalidated_for_new_graph(self):
        graph_a = cycle_graph(seed=0)
        graph_b = cycle_graph(seed=1)
        encoder = GCNEncoder(5, hidden_dim=8, out_dim=4, rng=np.random.default_rng(0))
        encoder.embed(graph_a)
        cache_a = encoder._cached_propagation
        encoder.embed(graph_b)
        assert encoder._cached_propagation is not cache_a

    def test_training_reduces_reconstruction_loss(self):
        graph = cycle_graph(num_nodes=12, seed=2)
        target = np.random.default_rng(3).normal(size=(12, 4))
        encoder = GCNEncoder(5, hidden_dim=8, out_dim=4, dropout=0.0,
                             rng=np.random.default_rng(0))
        optimizer = Adam(encoder.parameters(), lr=0.05)
        encoder.train()

        def loss_value():
            out = encoder(graph)
            return ((out - Tensor(target)) ** 2).mean()

        initial = float(loss_value().data)
        for _ in range(30):
            optimizer.zero_grad()
            loss = loss_value()
            loss.backward()
            optimizer.step()
        final = float(loss_value().data)
        assert final < initial

    def test_dropout_views_differ_in_train_mode(self):
        graph = cycle_graph()
        encoder = GCNEncoder(5, hidden_dim=8, out_dim=4, dropout=0.5,
                             rng=np.random.default_rng(0))
        encoder.train()
        assert not np.allclose(encoder(graph).data, encoder(graph).data)
