"""Tests for the classification / projection heads and the encoder factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import build_encoder
from repro.gnn.gat import GATEncoder
from repro.gnn.gcn import GCNEncoder
from repro.gnn.heads import ClassificationHead, ProjectionHead
from repro.nn.tensor import Tensor


class TestClassificationHead:
    def test_logit_shape(self):
        head = ClassificationHead(8, 5, rng=np.random.default_rng(0))
        logits = head(Tensor(np.ones((3, 8))))
        assert logits.shape == (3, 5)

    def test_normalized_logits_have_unit_norm(self):
        head = ClassificationHead(8, 5, rng=np.random.default_rng(0))
        normalized = head.normalized_logits(Tensor(np.random.default_rng(1).normal(size=(4, 8))))
        norms = np.linalg.norm(normalized.data, axis=1)
        np.testing.assert_allclose(norms, np.ones(4), atol=1e-9)

    def test_predict_matches_argmax(self):
        head = ClassificationHead(6, 4, rng=np.random.default_rng(2))
        embeddings = np.random.default_rng(3).normal(size=(10, 6))
        predictions = head.predict(embeddings)
        manual = (embeddings @ head.linear.weight.data).argmax(axis=1)
        np.testing.assert_array_equal(predictions, manual)

    def test_predict_with_bias(self):
        head = ClassificationHead(4, 3, bias=True, rng=np.random.default_rng(4))
        head.linear.bias.data = np.array([100.0, 0.0, 0.0])
        predictions = head.predict(np.zeros((5, 4)))
        np.testing.assert_array_equal(predictions, np.zeros(5))

    def test_gradients_flow(self):
        head = ClassificationHead(4, 3, rng=np.random.default_rng(5))
        out = head(Tensor(np.ones((2, 4)), requires_grad=True))
        out.sum().backward()
        assert head.linear.weight.grad is not None


class TestProjectionHead:
    def test_shape(self):
        head = ProjectionHead(8, 16, 4, rng=np.random.default_rng(0))
        out = head(Tensor(np.ones((5, 8))))
        assert out.shape == (5, 4)


class TestEncoderFactory:
    def test_builds_gat(self):
        encoder = build_encoder("gat", in_features=8, hidden_dim=8, out_dim=4, num_heads=2)
        assert isinstance(encoder, GATEncoder)

    def test_builds_gcn(self):
        encoder = build_encoder("gcn", in_features=8, hidden_dim=8, out_dim=4)
        assert isinstance(encoder, GCNEncoder)

    def test_case_insensitive(self):
        assert isinstance(build_encoder("GAT", in_features=4), GATEncoder)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            build_encoder("transformer", in_features=4)
