"""Tests for the GAT encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn.gat import GATEncoder, GATLayer
from repro.graphs.graph import Graph
from repro.graphs.utils import add_self_loops
from repro.nn.tensor import Tensor


def path_graph(num_nodes=6, num_features=4, seed=0):
    rng = np.random.default_rng(seed)
    src = np.arange(num_nodes - 1)
    dst = np.arange(1, num_nodes)
    edge_index = np.hstack([np.vstack([src, dst]), np.vstack([dst, src])])
    return Graph(features=rng.normal(size=(num_nodes, num_features)), edge_index=edge_index)


class TestGATLayer:
    def test_output_shape_concat(self):
        layer = GATLayer(4, 3, num_heads=2, concat_heads=True, dropout=0.0,
                         rng=np.random.default_rng(0))
        graph = path_graph()
        edges = add_self_loops(graph.edge_index, graph.num_nodes)
        out = layer(Tensor(graph.features), edges, graph.num_nodes)
        assert out.shape == (6, 6)
        assert layer.output_dim == 6

    def test_output_shape_average(self):
        layer = GATLayer(4, 3, num_heads=2, concat_heads=False, dropout=0.0,
                         rng=np.random.default_rng(0))
        graph = path_graph()
        edges = add_self_loops(graph.edge_index, graph.num_nodes)
        out = layer(Tensor(graph.features), edges, graph.num_nodes)
        assert out.shape == (6, 3)
        assert layer.output_dim == 3

    def test_gradients_flow_to_all_parameters(self):
        layer = GATLayer(4, 3, num_heads=2, dropout=0.0, rng=np.random.default_rng(1))
        graph = path_graph()
        edges = add_self_loops(graph.edge_index, graph.num_nodes)
        out = layer(Tensor(graph.features), edges, graph.num_nodes)
        (out * out).sum().backward()
        for param in layer.parameters():
            assert param.grad is not None
            assert np.isfinite(param.grad).all()

    def test_isolated_node_keeps_self_information(self):
        # A graph with an isolated node (only the self loop we add).
        features = np.eye(3)
        edge_index = np.array([[0, 1], [1, 0]])
        graph = Graph(features=features, edge_index=edge_index)
        layer = GATLayer(3, 2, num_heads=1, dropout=0.0, rng=np.random.default_rng(2))
        edges = add_self_loops(graph.edge_index, graph.num_nodes)
        out = layer(Tensor(graph.features), edges, graph.num_nodes)
        assert np.isfinite(out.data).all()


class TestGATEncoder:
    def test_embedding_shape(self):
        graph = path_graph(num_nodes=10)
        encoder = GATEncoder(4, hidden_dim=8, out_dim=5, num_heads=2, dropout=0.0,
                             rng=np.random.default_rng(0))
        embeddings = encoder.embed(graph)
        assert embeddings.shape == (10, 5)
        assert np.isfinite(embeddings).all()

    def test_eval_embeddings_are_deterministic(self):
        graph = path_graph(num_nodes=8)
        encoder = GATEncoder(4, hidden_dim=8, out_dim=4, num_heads=2, dropout=0.5,
                             rng=np.random.default_rng(0))
        np.testing.assert_allclose(encoder.embed(graph), encoder.embed(graph))

    def test_train_mode_dropout_produces_stochastic_views(self):
        graph = path_graph(num_nodes=8)
        encoder = GATEncoder(4, hidden_dim=8, out_dim=4, num_heads=2, dropout=0.5,
                             rng=np.random.default_rng(0))
        encoder.train()
        view1 = encoder(graph).data
        view2 = encoder(graph).data
        assert not np.allclose(view1, view2)

    def test_embed_preserves_training_mode(self):
        graph = path_graph()
        encoder = GATEncoder(4, hidden_dim=8, out_dim=4, num_heads=2,
                             rng=np.random.default_rng(0))
        encoder.train()
        encoder.embed(graph)
        assert encoder.training is True

    def test_training_step_changes_output(self):
        from repro.nn.optim import Adam

        graph = path_graph(num_nodes=12, seed=3)
        encoder = GATEncoder(4, hidden_dim=8, out_dim=4, num_heads=2, dropout=0.0,
                             rng=np.random.default_rng(0))
        optimizer = Adam(encoder.parameters(), lr=0.05)
        before = encoder.embed(graph).copy()
        encoder.train()
        loss = (encoder(graph) ** 2).sum()
        loss.backward()
        optimizer.step()
        after = encoder.embed(graph)
        assert not np.allclose(before, after)

    def test_per_head_hidden_dimension(self):
        encoder = GATEncoder(4, hidden_dim=16, out_dim=4, num_heads=4,
                             rng=np.random.default_rng(0))
        assert encoder.layer1.out_features == 4
        assert encoder.layer1.output_dim == 16
