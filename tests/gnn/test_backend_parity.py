"""Sparse-vs-dense backend parity for the GNN encoders.

The sparse backend (CSR propagation for GCN, vectorized edge-list attention
for GAT) must compute exactly the same function as the dense O(N^2)
reference: forward outputs and every parameter gradient agree to 1e-8 on
random graphs.  Dropout is disabled so both passes are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gnn import build_encoder
from repro.gnn.gcn import GCNEncoder
from repro.graphs.graph import Graph
from repro.graphs.utils import symmetrize_edges

ATOL = 1e-8


def random_graph(num_nodes=40, num_features=7, avg_degree=4.0, seed=0):
    rng = np.random.default_rng(seed)
    num_edges = int(num_nodes * avg_degree)
    src = rng.integers(num_nodes, size=num_edges)
    dst = rng.integers(num_nodes, size=num_edges)
    edge_index = symmetrize_edges(np.vstack([src, dst]))
    return Graph(features=rng.normal(size=(num_nodes, num_features)), edge_index=edge_index)


def paired_encoders(kind, graph, seed=0, **kwargs):
    """Two encoders of ``kind`` with identical weights, one per backend."""
    sparse = build_encoder(kind, in_features=graph.num_features, backend="sparse",
                           dropout=0.0, rng=np.random.default_rng(seed), **kwargs)
    dense = build_encoder(kind, in_features=graph.num_features, backend="dense",
                          dropout=0.0, rng=np.random.default_rng(seed), **kwargs)
    dense.load_state_dict(sparse.state_dict())
    return sparse, dense


def forward_backward(encoder, graph):
    """Deterministic forward + a quadratic loss backward; returns output, grads."""
    encoder.eval()  # dropout off; the graph is still recorded
    encoder.zero_grad()
    out = encoder(graph)
    (out * out).sum().backward()
    grads = {name: param.grad.copy() for name, param in encoder.named_parameters()}
    return out.data, grads


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gcn_forward_and_gradient_parity(seed):
    graph = random_graph(seed=seed)
    sparse, dense = paired_encoders("gcn", graph, seed=seed, hidden_dim=16, out_dim=8)
    out_sparse, grads_sparse = forward_backward(sparse, graph)
    out_dense, grads_dense = forward_backward(dense, graph)
    np.testing.assert_allclose(out_sparse, out_dense, atol=ATOL)
    assert grads_sparse.keys() == grads_dense.keys()
    for name in grads_sparse:
        np.testing.assert_allclose(
            grads_sparse[name], grads_dense[name], atol=ATOL, err_msg=name
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_gat_forward_and_gradient_parity(seed):
    graph = random_graph(num_nodes=25, seed=seed)
    sparse, dense = paired_encoders(
        "gat", graph, seed=seed, hidden_dim=8, out_dim=6, num_heads=2
    )
    out_sparse, grads_sparse = forward_backward(sparse, graph)
    out_dense, grads_dense = forward_backward(dense, graph)
    np.testing.assert_allclose(out_sparse, out_dense, atol=ATOL)
    assert grads_sparse.keys() == grads_dense.keys()
    for name in grads_sparse:
        np.testing.assert_allclose(
            grads_sparse[name], grads_dense[name], atol=ATOL, err_msg=name
        )


def test_gat_layer_parity_with_sink_only_node():
    """A node with no incoming edges gets a zero row on both backends.

    GATLayer is public and does not add self loops itself; the dense masked
    softmax must not emit NaN for the unreached node.
    """
    from repro.gnn.gat import GATLayer
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(0)
    features = rng.normal(size=(4, 5))
    edge_index = np.array([[3, 1, 2], [0, 0, 1]])  # node 3 has no incoming edge

    sparse = GATLayer(5, 3, num_heads=2, dropout=0.0, backend="sparse",
                      rng=np.random.default_rng(1))
    dense = GATLayer(5, 3, num_heads=2, dropout=0.0, backend="dense",
                     rng=np.random.default_rng(1))
    dense.load_state_dict(sparse.state_dict())

    out_sparse = sparse(Tensor(features), edge_index, 4)
    out_dense = dense(Tensor(features), edge_index, 4)
    assert np.isfinite(out_dense.data).all()
    np.testing.assert_allclose(out_sparse.data, out_dense.data, atol=ATOL)
    np.testing.assert_allclose(out_dense.data[3], 0.0, atol=ATOL)

    (out_dense * out_dense).sum().backward()
    for param in dense.parameters():
        assert np.isfinite(param.grad).all()


def test_gat_layer_parity_with_duplicate_directed_edges():
    """A duplicated edge carries double attention mass on both backends."""
    from repro.gnn.gat import GATLayer
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(3)
    features = rng.normal(size=(4, 5))
    # Edge 2->0 listed twice; self loops keep every row reachable.
    edge_index = np.array([[0, 1, 2, 3, 2, 2, 1], [0, 1, 2, 3, 0, 0, 3]])

    sparse = GATLayer(5, 3, num_heads=2, dropout=0.0, backend="sparse",
                      rng=np.random.default_rng(4))
    dense = GATLayer(5, 3, num_heads=2, dropout=0.0, backend="dense",
                     rng=np.random.default_rng(4))
    dense.load_state_dict(sparse.state_dict())

    out_sparse = sparse(Tensor(features), edge_index, 4)
    out_dense = dense(Tensor(features), edge_index, 4)
    np.testing.assert_allclose(out_sparse.data, out_dense.data, atol=ATOL)


@pytest.mark.parametrize("backend", ["sparse", "dense"])
def test_gcn_propagation_cache_keyed_by_graph_identity(backend):
    """Fresh graphs at recycled addresses must never see a stale cache."""
    encoder = GCNEncoder(7, hidden_dim=8, out_dim=4, dropout=0.0, backend=backend,
                         rng=np.random.default_rng(0))
    for seed in range(6):
        graph = random_graph(seed=seed)  # prior graph freed each iteration
        fresh = GCNEncoder(7, hidden_dim=8, out_dim=4, dropout=0.0, backend=backend,
                           rng=np.random.default_rng(0))
        np.testing.assert_allclose(encoder.embed(graph), fresh.embed(graph), atol=ATOL)


def test_gcn_dense_cache_does_not_pin_graph():
    import gc
    import weakref

    encoder = GCNEncoder(7, hidden_dim=8, out_dim=4, dropout=0.0, backend="dense",
                         rng=np.random.default_rng(0))
    graph = random_graph()
    ref = weakref.ref(graph)
    encoder.embed(graph)
    del graph
    gc.collect()
    assert ref() is None  # the encoder holds only a weak reference


def test_gcn_sparse_is_default_and_keeps_propagation_sparse():
    import scipy.sparse as sp

    graph = random_graph()
    encoder = GCNEncoder(graph.num_features, hidden_dim=8, out_dim=4)
    assert encoder.backend == "sparse"
    encoder.embed(graph)
    assert sp.issparse(encoder._cached_propagation)


def test_dense_backend_densifies_propagation():
    graph = random_graph()
    encoder = GCNEncoder(graph.num_features, hidden_dim=8, out_dim=4, backend="dense")
    encoder.embed(graph)
    assert isinstance(encoder._cached_propagation, np.ndarray)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        GCNEncoder(4, backend="blocked")
    with pytest.raises(ValueError, match="unknown backend"):
        build_encoder("gat", in_features=4, backend="nope")


def test_propagation_cache_shared_across_encoders():
    graph = random_graph()
    first = GCNEncoder(graph.num_features, hidden_dim=8, out_dim=4)
    second = GCNEncoder(graph.num_features, hidden_dim=8, out_dim=4)
    first.embed(graph)
    second.embed(graph)
    assert first._cached_propagation is second._cached_propagation


def test_trainer_respects_backend_config(small_dataset):
    from dataclasses import replace

    from repro.core.config import fast_config
    from repro.core.trainer import GraphTrainer

    config = fast_config(max_epochs=1, encoder_kind="gcn")
    trainer = GraphTrainer(small_dataset, config)
    assert trainer.encoder.backend == "sparse"

    dense_config = config.with_updates(encoder=replace(config.encoder, backend="dense"))
    dense_trainer = GraphTrainer(small_dataset, dense_config)
    assert dense_trainer.encoder.backend == "dense"
