"""Tests for the C+1 open-world node classification baselines (OODGAT†, OpenWGL†)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.oodgat import OODGATTrainer
from repro.baselines.openwgl import OpenWGLTrainer
from repro.core.config import fast_config


@pytest.fixture()
def config():
    return fast_config(max_epochs=2, encoder_kind="gcn", batch_size=160)


class TestOODGAT:
    def test_trains_and_predicts(self, small_dataset, config):
        trainer = OODGATTrainer(small_dataset, config)
        history = trainer.fit()
        assert np.isfinite(history.losses).all()
        result = trainer.predict()
        assert result.predictions.shape[0] == small_dataset.graph.num_nodes
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0

    def test_ood_nodes_receive_novel_ids(self, small_dataset, config):
        trainer = OODGATTrainer(small_dataset, config, ood_quantile=0.5)
        trainer.fit()
        result = trainer.predict()
        test_predictions = result.predictions[small_dataset.split.test_nodes]
        seen = set(small_dataset.split.seen_classes.tolist())
        novel_fraction = np.mean([p not in seen for p in test_predictions])
        # Roughly half the unlabeled nodes are flagged as OOD.
        assert 0.2 < novel_fraction < 0.8

    def test_train_nodes_never_flagged_ood(self, small_dataset, config):
        trainer = OODGATTrainer(small_dataset, config)
        trainer.fit()
        result = trainer.predict()
        train_predictions = result.predictions[small_dataset.split.train_nodes]
        seen = set(small_dataset.split.seen_classes.tolist())
        assert all(p in seen for p in train_predictions)

    def test_unlabeled_only_batch_is_handled(self, small_dataset, config):
        trainer = OODGATTrainer(small_dataset, config)
        batch = small_dataset.split.test_nodes[:10]
        view = trainer.encoder(small_dataset.graph).gather_rows(batch)
        loss = trainer.compute_loss(view, view, batch)
        assert np.isfinite(loss.item())


class TestOpenWGL:
    def test_trains_and_predicts(self, small_dataset, config):
        trainer = OpenWGLTrainer(small_dataset, config, num_uncertainty_samples=2)
        history = trainer.fit()
        assert np.isfinite(history.losses).all()
        result = trainer.predict()
        assert result.predictions.shape[0] == small_dataset.graph.num_nodes

    def test_mean_confidence_in_unit_interval(self, small_dataset, config):
        trainer = OpenWGLTrainer(small_dataset, config, num_uncertainty_samples=2)
        trainer.fit()
        confidence = trainer._mean_confidence(2)
        assert confidence.shape[0] == small_dataset.graph.num_nodes
        assert (confidence > 0).all() and (confidence <= 1.0).all()

    def test_rejection_quantile_controls_ood_rate(self, small_dataset, config):
        conservative = OpenWGLTrainer(small_dataset, config, rejection_quantile=0.2,
                                      num_uncertainty_samples=2)
        aggressive = OpenWGLTrainer(small_dataset, config, rejection_quantile=0.8,
                                    num_uncertainty_samples=2)
        seen = set(small_dataset.split.seen_classes.tolist())
        rates = []
        for trainer in (conservative, aggressive):
            trainer.fit()
            predictions = trainer.predict().predictions[small_dataset.split.test_nodes]
            rates.append(np.mean([p not in seen for p in predictions]))
        assert rates[1] > rates[0]
