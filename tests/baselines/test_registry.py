"""Tests for the baseline registry/factory."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    available_baselines,
    build_baseline,
)
from repro.core.trainer import GraphTrainer


PAPER_TABLE3_BASELINES = [
    "oodgat",
    "openwgl",
    "orca-zm",
    "orca",
    "simgcd",
    "openldn",
    "opencon",
    "opencon-two-stage",
    "infonce",
    "infonce+supcon",
    "infonce+supcon+ce",
]


class TestRegistry:
    def test_all_table3_baselines_available(self):
        for name in PAPER_TABLE3_BASELINES:
            assert name in BASELINE_REGISTRY

    def test_available_baselines_sorted(self):
        names = available_baselines()
        assert names == sorted(names)

    def test_build_baseline_case_insensitive(self, small_dataset, tiny_trainer_config):
        trainer = build_baseline("ORCA", small_dataset, tiny_trainer_config)
        assert isinstance(trainer, GraphTrainer)
        assert trainer.method_name == "ORCA"

    def test_unknown_baseline_raises(self, small_dataset, tiny_trainer_config):
        with pytest.raises(KeyError, match="available"):
            build_baseline("gcd", small_dataset, tiny_trainer_config)

    def test_num_novel_override_propagates(self, small_dataset, tiny_trainer_config):
        trainer = build_baseline("infonce", small_dataset, tiny_trainer_config,
                                 num_novel_classes=7)
        assert trainer.label_space.num_novel == 7

    def test_method_names_are_distinct(self, small_dataset, tiny_trainer_config):
        names = set()
        for key in PAPER_TABLE3_BASELINES:
            trainer = build_baseline(key, small_dataset, tiny_trainer_config)
            names.add(trainer.method_name)
        assert len(names) == len(PAPER_TABLE3_BASELINES)
