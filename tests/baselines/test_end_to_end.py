"""Tests for the end-to-end open-world SSL baselines (ORCA, SimGCD, OpenLDN, OpenCon)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.opencon import OpenConTrainer, OpenConTwoStageTrainer
from repro.baselines.openldn import OpenLDNTrainer
from repro.baselines.orca import ORCATrainer, ORCAZMTrainer
from repro.baselines.simgcd import SimGCDTrainer
from repro.core.config import fast_config


@pytest.fixture()
def config():
    return fast_config(max_epochs=2, encoder_kind="gcn", batch_size=128)


ALL_END_TO_END = [ORCATrainer, ORCAZMTrainer, SimGCDTrainer, OpenLDNTrainer, OpenConTrainer]


class TestTrainingLoop:
    @pytest.mark.parametrize("trainer_cls", ALL_END_TO_END)
    def test_trains_with_finite_losses(self, small_dataset, config, trainer_cls):
        trainer = trainer_cls(small_dataset, config)
        history = trainer.fit()
        assert len(history.losses) == config.max_epochs
        assert np.isfinite(history.losses).all()

    @pytest.mark.parametrize("trainer_cls", ALL_END_TO_END)
    def test_predictions_cover_graph_and_accuracy_valid(self, small_dataset, config, trainer_cls):
        trainer = trainer_cls(small_dataset, config)
        trainer.fit()
        result = trainer.predict()
        assert result.predictions.shape[0] == small_dataset.graph.num_nodes
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0

    @pytest.mark.parametrize("trainer_cls", ALL_END_TO_END)
    def test_head_is_trained(self, small_dataset, config, trainer_cls):
        trainer = trainer_cls(small_dataset, config)
        before = trainer.head.linear.weight.data.copy()
        trainer.fit()
        assert not np.allclose(before, trainer.head.linear.weight.data)


class TestORCA:
    def test_margin_uses_uncertainty(self, small_dataset, config):
        trainer = ORCATrainer(small_dataset, config)
        trainer.on_epoch_start(0)
        assert 0.0 <= trainer._current_uncertainty <= 1.0

    def test_zero_margin_variant(self, small_dataset, config):
        trainer = ORCAZMTrainer(small_dataset, config)
        trainer.on_epoch_start(0)
        assert trainer._current_uncertainty == 0.0
        assert trainer.method_name == "ORCA-ZM"

    def test_margin_changes_loss(self, small_dataset, config):
        orca = ORCATrainer(small_dataset, config)
        orca_zm = ORCAZMTrainer(small_dataset, config)
        batch = np.concatenate([
            small_dataset.split.train_nodes[:8], small_dataset.split.test_nodes[:8]
        ])
        for trainer in (orca, orca_zm):
            trainer.encoder.eval()
            trainer.on_epoch_start(0)
        view_a = orca.encoder(small_dataset.graph).gather_rows(batch)
        loss_margin = orca.compute_loss(view_a, view_a, batch).item()
        view_b = orca_zm.encoder(small_dataset.graph).gather_rows(batch)
        loss_plain = orca_zm.compute_loss(view_b, view_b, batch).item()
        # The margin makes the supervised term harder, so the loss is larger
        # (both models start from the same seed / initial weights).
        assert loss_margin >= loss_plain


class TestOpenCon:
    def test_prototypes_initialized_on_epoch_start(self, small_dataset, config):
        trainer = OpenConTrainer(small_dataset, config)
        assert not trainer._prototypes_initialized
        trainer.on_epoch_start(0)
        assert trainer._prototypes_initialized
        assert trainer.prototypes.shape == (
            trainer.label_space.num_total, config.encoder.out_dim
        )

    def test_prototype_pseudo_labels_in_range(self, small_dataset, config):
        trainer = OpenConTrainer(small_dataset, config)
        trainer.on_epoch_start(0)
        pseudo = trainer._prototype_pseudo_labels(trainer.node_embeddings())
        assert pseudo.min() >= 0
        assert pseudo.max() < trainer.label_space.num_total

    def test_two_stage_variant_uses_kmeans_prediction(self, small_dataset, config):
        end_to_end = OpenConTrainer(small_dataset, config)
        two_stage = OpenConTwoStageTrainer(small_dataset, config)
        assert two_stage.method_name == "OpenCon-TwoStage"
        end_to_end.fit()
        two_stage.fit()
        # Both produce valid predictions; the two-stage path clusters instead
        # of using the head.
        result = two_stage.predict()
        assert result.predictions.shape[0] == small_dataset.graph.num_nodes


class TestSimGCDAndOpenLDN:
    def test_simgcd_entropy_weight_influences_loss(self, small_dataset, config):
        low = SimGCDTrainer(small_dataset, config, entropy_weight=0.0)
        high = SimGCDTrainer(small_dataset, config, entropy_weight=5.0)
        batch = small_dataset.split.train_nodes[:10]
        for trainer in (low, high):
            trainer.encoder.eval()
        view_low = low.encoder(small_dataset.graph).gather_rows(batch)
        view_high = high.encoder(small_dataset.graph).gather_rows(batch)
        assert low.compute_loss(view_low, view_low, batch).item() != pytest.approx(
            high.compute_loss(view_high, view_high, batch).item()
        )

    def test_openldn_confidence_threshold_extremes(self, small_dataset, config):
        strict = OpenLDNTrainer(small_dataset, config, confidence_threshold=1.01)
        lenient = OpenLDNTrainer(small_dataset, config, confidence_threshold=0.0)
        batch = np.concatenate([
            small_dataset.split.train_nodes[:8], small_dataset.split.test_nodes[:8]
        ])
        for trainer in (strict, lenient):
            trainer.encoder.eval()
        view_s = strict.encoder(small_dataset.graph).gather_rows(batch)
        view_l = lenient.encoder(small_dataset.graph).gather_rows(batch)
        loss_strict = strict.compute_loss(view_s, view_s, batch).item()
        loss_lenient = lenient.compute_loss(view_l, view_l, batch).item()
        # With an unreachable threshold no pseudo-label CE is added.
        assert np.isfinite(loss_strict) and np.isfinite(loss_lenient)
        assert loss_lenient >= loss_strict
