"""Tests for the two-stage contrastive baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.two_stage import (
    InfoNCESupConCETrainer,
    InfoNCESupConTrainer,
    InfoNCETrainer,
)
from repro.core.config import fast_config


@pytest.fixture()
def config():
    return fast_config(max_epochs=2, encoder_kind="gcn", batch_size=128)


class TestGroupIds:
    def test_infonce_ignores_labels(self, small_dataset, config):
        trainer = InfoNCETrainer(small_dataset, config)
        batch = small_dataset.split.train_nodes[:6]
        group_ids = trainer._group_ids(batch)
        assert (group_ids == -1).all()

    def test_supcon_uses_labels(self, small_dataset, config):
        trainer = InfoNCESupConTrainer(small_dataset, config)
        batch = np.concatenate([
            small_dataset.split.train_nodes[:6], small_dataset.split.test_nodes[:6]
        ])
        group_ids = trainer._group_ids(batch)
        assert (group_ids[:6] >= 0).all()
        assert (group_ids[6:12] == -1).all()


class TestTraining:
    @pytest.mark.parametrize("trainer_cls", [InfoNCETrainer, InfoNCESupConTrainer,
                                             InfoNCESupConCETrainer])
    def test_each_variant_trains_and_evaluates(self, small_dataset, config, trainer_cls):
        trainer = trainer_cls(small_dataset, config)
        history = trainer.fit()
        assert np.isfinite(history.losses).all()
        accuracy = trainer.evaluate()
        assert 0.0 <= accuracy.overall <= 1.0

    def test_method_names(self, small_dataset, config):
        assert InfoNCETrainer(small_dataset, config).method_name == "InfoNCE"
        assert InfoNCESupConTrainer(small_dataset, config).method_name == "InfoNCE+SupCon"
        assert InfoNCESupConCETrainer(
            small_dataset, config
        ).method_name == "InfoNCE+SupCon+CE"

    def test_ce_variant_trains_the_head(self, small_dataset, config):
        trainer = InfoNCESupConCETrainer(small_dataset, config)
        before = trainer.head.linear.weight.data.copy()
        trainer.fit()
        assert not np.allclose(before, trainer.head.linear.weight.data)

    def test_infonce_does_not_touch_the_head(self, small_dataset, config):
        trainer = InfoNCETrainer(small_dataset, config)
        before = trainer.head.linear.weight.data.copy()
        trainer.fit()
        # Only weight decay could change it, which Adam skips without grads.
        np.testing.assert_allclose(before, trainer.head.linear.weight.data)
