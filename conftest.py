"""Repo-root conftest: loads the sanitizer pytest plugin.

``pytest_plugins`` must live in the rootdir conftest (pytest refuses it in
nested ones).  The plugin is inert unless ``REPRO_SANITIZE=1`` is set or
``--sanitize`` is passed — see ``repro.analysis.pytest_plugin``.
"""

pytest_plugins = ("repro.analysis.pytest_plugin",)
