"""OpenWGL† baseline (Wu, Pan & Zhu, KAIS 2021), extended for open-world SSL.

OpenWGL performs open-world graph learning with an uncertainty-aware
(variational) node representation: nodes whose class probabilities stay low
and uncertain across stochastic forward passes are rejected as belonging to
unseen classes.  We reproduce its character with a GAT classifier over the
seen classes trained with cross-entropy plus a class-uncertainty loss, and
detect novel-class nodes by thresholding the maximum softmax probability
averaged over several dropout-perturbed forward passes.  As in the paper's
evaluation, the detected OOD nodes are post-clustered with K-Means into the
required number of novel classes (the † extension).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import TrainerConfig
from ..core.inference import InferenceResult, two_stage_predict
from ..core.losses import cross_entropy_loss
from ..core.registry import register_method
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from ..nn import functional as F
from ..nn.tensor import Tensor


@register_method(
    "openwgl",
    end_to_end=True,
    default_epochs=100,
    description="Uncertain-node rejection via multi-sample dropout confidence",
)
class OpenWGLTrainer(GraphTrainer):
    """OpenWGL†: uncertainty-aware seen-class classifier + OOD post-clustering."""

    method_name = "OpenWGL"

    def __init__(self, dataset: OpenWorldDataset, config: Optional[TrainerConfig] = None,
                 uncertainty_weight: float = 0.1, num_uncertainty_samples: int = 4,
                 rejection_quantile: float = 0.5,
                 num_novel_classes: Optional[int] = None):
        config = config if config is not None else TrainerConfig()
        super().__init__(dataset, config, num_novel_classes=num_novel_classes)
        self.uncertainty_weight = uncertainty_weight
        self.num_uncertainty_samples = num_uncertainty_samples
        self.rejection_quantile = rejection_quantile

    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        manual = self.batch_manual_labels(batch_nodes)
        labeled_positions = np.where(manual >= 0)[0]
        unlabeled_positions = np.where(manual < 0)[0]

        logits = self.head(view1)
        seen_logits = logits[:, : self.label_space.num_seen]
        loss = None
        if labeled_positions.shape[0] > 0:
            loss = cross_entropy_loss(
                seen_logits.gather_rows(labeled_positions), manual[labeled_positions]
            )

        # Class-uncertainty loss: minimize the maximum probability of
        # unlabeled nodes so that unseen-class nodes keep low confidence.
        if unlabeled_positions.shape[0] > 0 and self.uncertainty_weight > 0:
            probabilities = F.softmax(seen_logits.gather_rows(unlabeled_positions), axis=-1)
            uncertainty_term = probabilities.max(axis=1).mean() * self.uncertainty_weight
            loss = uncertainty_term if loss is None else loss + uncertainty_term
        if loss is None:
            loss = (seen_logits * 0.0).sum()
        return loss

    def _mean_confidence(self, num_samples: int) -> np.ndarray:
        """Maximum seen-class probability averaged over stochastic passes."""
        from ..nn.tensor import no_grad

        self.encoder.train()  # keep dropout active for uncertainty sampling
        accumulated = None
        with no_grad():
            for _ in range(num_samples):
                embeddings = self.encoder(self.dataset.graph).numpy()
                logits = embeddings @ self.head.linear.weight.data
                seen = logits[:, : self.label_space.num_seen]
                probabilities = _softmax_np(seen)
                confidence = probabilities.max(axis=1)
                accumulated = confidence if accumulated is None else accumulated + confidence
        self.encoder.eval()
        return accumulated / num_samples

    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        if embeddings is None:
            embeddings = self.node_embeddings()
        num_novel = (
            num_novel_classes if num_novel_classes is not None else self.label_space.num_novel
        )
        seed = self.config.seed if seed is None else seed

        confidence = self._mean_confidence(self.num_uncertainty_samples)
        test_nodes = self.dataset.split.test_nodes
        threshold = np.quantile(confidence[test_nodes], self.rejection_quantile)
        is_ood = confidence < threshold
        is_ood[self.dataset.split.train_nodes] = False
        is_ood[self.dataset.split.val_nodes] = False

        logits = embeddings @ self.head.linear.weight.data
        internal = logits[:, : self.label_space.num_seen].argmax(axis=1)
        ood_nodes = np.where(is_ood)[0]
        if ood_nodes.shape[0] >= num_novel and num_novel > 0:
            # n_init=1 / mini_batch=False pin the historical direct KMeans
            # call for the exact strategy.
            clusters = self.clustering_engine.cluster(
                embeddings[ood_nodes], num_novel, seed=seed,
                n_init=1, mini_batch=False).labels
            internal[ood_nodes] = self.label_space.num_seen + clusters
        predictions = self.label_space.to_original(internal)

        two_stage = two_stage_predict(
            embeddings, self.dataset, num_novel_classes=num_novel, seed=seed,
            engine=self.clustering_engine,
        )
        return InferenceResult(
            predictions=predictions,
            cluster_result=two_stage.cluster_result,
            alignment=two_stage.alignment,
            label_space=self.label_space,
        )


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
