"""Two-stage contrastive baselines: InfoNCE, InfoNCE+SupCon, InfoNCE+SupCon+CE.

These are the representation-learning baselines of Figure 1b and Table III.
Each trains the GAT encoder with a (combination of) contrastive and
cross-entropy losses and then predicts with the shared two-stage procedure
(K-Means + Hungarian alignment).  They differ from OpenIMA only in the lack
of bias-reduced pseudo labels and the logit-level objective.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.splits import OpenWorldDataset
from ..nn.tensor import Tensor
from ..core.config import TrainerConfig
from ..core.losses import cross_entropy_loss, supervised_contrastive_loss
from ..core.registry import register_method
from ..core.trainer import GraphTrainer


@register_method(
    "infonce",
    end_to_end=False,
    default_epochs=20,
    description="Unsupervised InfoNCE over dropout views",
)
class InfoNCETrainer(GraphTrainer):
    """Unsupervised InfoNCE on every node (labels ignored)."""

    method_name = "InfoNCE"
    use_supcon = False
    use_cross_entropy = False
    cross_entropy_weight = 1.0

    def __init__(self, dataset: OpenWorldDataset, config: Optional[TrainerConfig] = None,
                 num_novel_classes: Optional[int] = None):
        config = config if config is not None else TrainerConfig()
        super().__init__(dataset, config, num_novel_classes=num_novel_classes)

    def _group_ids(self, batch_nodes: np.ndarray) -> np.ndarray:
        if self.use_supcon:
            manual = self.batch_manual_labels(batch_nodes)
        else:
            manual = -np.ones(batch_nodes.shape[0], dtype=np.int64)
        return np.concatenate([manual, manual])

    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        features = self.normalized_views(view1, view2)
        group_ids = self._group_ids(batch_nodes)
        loss = supervised_contrastive_loss(features, group_ids, self.config.temperature)
        if self.use_cross_entropy:
            manual = self.batch_manual_labels(batch_nodes)
            labeled_positions = np.where(manual >= 0)[0]
            if labeled_positions.shape[0] > 0:
                logits = self.head(view1.gather_rows(labeled_positions))
                loss = loss + cross_entropy_loss(logits, manual[labeled_positions]) * \
                    self.cross_entropy_weight
        return loss


@register_method(
    "infonce+supcon",
    end_to_end=False,
    default_epochs=20,
    description="InfoNCE plus supervised-contrastive positives on labeled nodes",
)
class InfoNCESupConTrainer(InfoNCETrainer):
    """InfoNCE for all nodes plus SupCon positives on the labeled nodes."""

    method_name = "InfoNCE+SupCon"
    use_supcon = True
    use_cross_entropy = False


@register_method(
    "infonce+supcon+ce",
    end_to_end=False,
    default_epochs=20,
    description="InfoNCE + SupCon + cross-entropy on labeled nodes",
)
class InfoNCESupConCETrainer(InfoNCETrainer):
    """InfoNCE + SupCon + cross-entropy on the labeled nodes."""

    method_name = "InfoNCE+SupCon+CE"
    use_supcon = True
    use_cross_entropy = True
