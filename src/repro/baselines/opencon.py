"""OpenCon baseline (Sun & Li, TMLR 2023) and its two-stage variant OpenCon‡.

OpenCon learns class prototypes and assigns pseudo labels to out-of-
distribution samples by nearest-prototype matching; contrastive learning
with these pseudo labels shapes the representation space, and cross-entropy
on labeled samples anchors the seen classes.  The original method relies on
a pre-trained vision encoder; here the GAT encoder is trained from scratch
as in the paper's adaptation.

* ``OpenConTrainer`` predicts with the classification head (end-to-end).
* ``OpenConTwoStageTrainer`` (OpenCon‡ in Table III) reuses the learned
  representations but predicts with K-Means + Hungarian alignment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import TrainerConfig
from ..core.inference import InferenceResult, head_predict, two_stage_predict
from ..core.losses import cross_entropy_loss, supervised_contrastive_loss
from ..core.registry import register_method
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from ..nn.tensor import Tensor


@register_method(
    "opencon",
    end_to_end=True,
    default_epochs=100,
    description="Prototype-based contrastive learning with OOD split",
)
class OpenConTrainer(GraphTrainer):
    """OpenCon: prototype-based pseudo labels + contrastive learning + CE."""

    method_name = "OpenCon"

    def __init__(self, dataset: OpenWorldDataset, config: Optional[TrainerConfig] = None,
                 ood_threshold: float = 0.5, prototype_momentum: float = 0.9,
                 supervised_weight: float = 1.0,
                 num_novel_classes: Optional[int] = None):
        config = config if config is not None else TrainerConfig()
        super().__init__(dataset, config, num_novel_classes=num_novel_classes)
        self.ood_threshold = ood_threshold
        self.prototype_momentum = prototype_momentum
        self.supervised_weight = supervised_weight
        self.prototypes = np.zeros((self.label_space.num_total, config.encoder.out_dim))
        self._prototypes_initialized = False

    # ------------------------------------------------------------------
    # Persistence hooks (prototypes are EMA state carried across epochs)
    # ------------------------------------------------------------------
    def extra_state(self) -> dict:
        return {
            "prototypes": self.prototypes.copy(),
            "prototypes_initialized": np.array(int(self._prototypes_initialized)),
        }

    def load_extra_state(self, state: dict) -> None:
        if "prototypes" in state:
            self.prototypes = np.asarray(state["prototypes"], dtype=np.float64).copy()
        if "prototypes_initialized" in state:
            self._prototypes_initialized = bool(int(state["prototypes_initialized"]))

    # ------------------------------------------------------------------
    # Prototype maintenance
    # ------------------------------------------------------------------
    def on_epoch_start(self, epoch: int) -> None:
        """Initialize / refresh prototypes from current embeddings."""
        embeddings = self.node_embeddings()
        normalized = _l2_rows(embeddings)
        split = self.dataset.split
        new_prototypes = self.prototypes.copy()

        # Seen-class prototypes from labeled nodes.
        for internal in range(self.label_space.num_seen):
            members = split.train_nodes[self._train_internal == internal]
            if members.shape[0]:
                new_prototypes[internal] = normalized[members].mean(axis=0)

        # Novel prototypes from clustering the unlabeled embeddings far from
        # the seen prototypes (through the configured clustering strategy;
        # the stateless path keeps the per-epoch refresh deterministic).
        if self.label_space.num_novel > 0:
            unlabeled = split.test_nodes
            if unlabeled.shape[0] >= self.label_space.num_novel:
                seen_protos = _l2_rows(new_prototypes[: self.label_space.num_seen])
                scores = normalized[unlabeled] @ seen_protos.T
                ood_mask = scores.max(axis=1) < self.ood_threshold
                candidates = unlabeled[ood_mask]
                if candidates.shape[0] < self.label_space.num_novel:
                    candidates = unlabeled
                # n_init=1 / mini_batch=False pin the historical direct
                # KMeans call for the exact strategy.
                result = self.clustering_engine.cluster(
                    normalized[candidates], self.label_space.num_novel,
                    n_init=1, mini_batch=False)
                new_prototypes[self.label_space.num_seen:] = result.centers

        if self._prototypes_initialized:
            momentum = self.prototype_momentum
            self.prototypes = momentum * self.prototypes + (1 - momentum) * new_prototypes
        else:
            self.prototypes = new_prototypes
            self._prototypes_initialized = True

    def _prototype_pseudo_labels(self, embeddings: np.ndarray) -> np.ndarray:
        """Nearest-prototype assignment in cosine space."""
        normalized = _l2_rows(embeddings)
        prototypes = _l2_rows(self.prototypes)
        return (normalized @ prototypes.T).argmax(axis=1)

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        manual = self.batch_manual_labels(batch_nodes)
        pseudo = self._prototype_pseudo_labels(view1.numpy())
        combined = np.where(manual >= 0, manual, pseudo)
        group_ids = np.concatenate([combined, combined])

        features = self.normalized_views(view1, view2)
        loss = supervised_contrastive_loss(features, group_ids, self.config.temperature)

        labeled_positions = np.where(manual >= 0)[0]
        if labeled_positions.shape[0] > 0:
            logits = self.head(view1.gather_rows(labeled_positions))
            loss = loss + cross_entropy_loss(logits, manual[labeled_positions]) * \
                self.supervised_weight
        return loss

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        if embeddings is None:
            embeddings = self.node_embeddings()
        predictions = head_predict(
            embeddings,
            self.head.linear.weight.data,
            self.label_space,
            head_bias=None if self.head.linear.bias is None else self.head.linear.bias.data,
        )
        two_stage = two_stage_predict(
            embeddings,
            self.dataset,
            num_novel_classes=(
                num_novel_classes if num_novel_classes is not None
                else self.label_space.num_novel
            ),
            seed=self.config.seed if seed is None else seed,
            engine=self.clustering_engine,
        )
        return InferenceResult(
            predictions=predictions,
            cluster_result=two_stage.cluster_result,
            alignment=two_stage.alignment,
            label_space=self.label_space,
        )


@register_method(
    "opencon-two-stage",
    end_to_end=True,
    default_epochs=100,
    description="OpenCon trained end-to-end but evaluated with two-stage inference",
)
class OpenConTwoStageTrainer(OpenConTrainer):
    """OpenCon‡: identical training, two-stage (K-Means) prediction."""

    method_name = "OpenCon-TwoStage"

    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        return GraphTrainer.predict(self, num_novel_classes=num_novel_classes,
                                    seed=seed, embeddings=embeddings)


def _l2_rows(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.maximum(norms, eps)
