"""SimGCD baseline (Wen, Zhao & Qi, ICCV 2023).

SimGCD is a parametric generalized-category-discovery method: a classifier
over seen + novel classes is trained with (1) supervised cross-entropy on
labeled samples, (2) self-distillation between the two augmented views of
every sample (the sharpened prediction of one view supervises the other),
and (3) a mean-entropy maximization regularizer that prevents collapse onto
the seen classes.  Prediction uses the classification head (end-to-end).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import TrainerConfig
from ..core.inference import InferenceResult, head_predict, two_stage_predict
from ..core.losses import (
    cross_entropy_loss,
    entropy_regularization,
    self_distillation_loss,
    supervised_contrastive_loss,
)
from ..core.registry import register_method
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from ..nn import functional as F
from ..nn.tensor import Tensor


@register_method(
    "simgcd",
    end_to_end=True,
    default_epochs=50,
    description="Self-distillation with entropy regularization (GCD family)",
)
class SimGCDTrainer(GraphTrainer):
    """SimGCD with the GAT encoder in place of the pre-trained ViT."""

    method_name = "SimGCD"

    def __init__(self, dataset: OpenWorldDataset, config: Optional[TrainerConfig] = None,
                 distill_temperature: float = 0.1, entropy_weight: float = 1.0,
                 supervised_weight: float = 1.0, contrastive_weight: float = 0.35,
                 num_novel_classes: Optional[int] = None):
        config = config if config is not None else TrainerConfig()
        super().__init__(dataset, config, num_novel_classes=num_novel_classes)
        self.distill_temperature = distill_temperature
        self.entropy_weight = entropy_weight
        self.supervised_weight = supervised_weight
        self.contrastive_weight = contrastive_weight

    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        manual = self.batch_manual_labels(batch_nodes)
        labeled_positions = np.where(manual >= 0)[0]

        logits1 = self.head(view1)
        logits2 = self.head(view2)

        # Self-distillation: view2's sharpened (detached) prediction teaches view1.
        teacher = F.softmax(logits2, axis=-1).numpy()
        loss = self_distillation_loss(logits1, teacher, temperature=self.distill_temperature)

        # Representation-level unsupervised contrastive term.
        if self.contrastive_weight > 0:
            features = self.normalized_views(view1, view2)
            group_ids = -np.ones(2 * batch_nodes.shape[0], dtype=np.int64)
            loss = loss + supervised_contrastive_loss(
                features, group_ids, self.config.temperature
            ) * self.contrastive_weight

        if labeled_positions.shape[0] > 0:
            supervised = cross_entropy_loss(
                logits1.gather_rows(labeled_positions), manual[labeled_positions]
            )
            loss = loss + supervised * self.supervised_weight

        probabilities = F.softmax(logits1, axis=-1)
        loss = loss + entropy_regularization(probabilities) * self.entropy_weight
        return loss

    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        if embeddings is None:
            embeddings = self.node_embeddings()
        predictions = head_predict(
            embeddings,
            self.head.linear.weight.data,
            self.label_space,
            head_bias=None if self.head.linear.bias is None else self.head.linear.bias.data,
        )
        two_stage = two_stage_predict(
            embeddings,
            self.dataset,
            num_novel_classes=(
                num_novel_classes if num_novel_classes is not None
                else self.label_space.num_novel
            ),
            seed=self.config.seed if seed is None else seed,
            engine=self.clustering_engine,
        )
        return InferenceResult(
            predictions=predictions,
            cluster_result=two_stage.cluster_result,
            alignment=two_stage.alignment,
            label_space=self.label_space,
        )
