"""OpenLDN baseline (Rizve et al., ECCV 2022).

OpenLDN trains a classifier over seen + novel classes with (1) cross-entropy
on labeled samples, (2) a pairwise-similarity objective that decides, for
pairs of unlabeled samples, whether they belong to the same class (driven by
embedding similarity), and (3) cross-entropy on *classifier-generated* pseudo
labels whose confidence exceeds a threshold.  Because the pseudo labels come
from a classifier trained mostly on seen classes, they are biased toward the
seen classes — exactly the failure mode OpenIMA's bias-reduced pseudo labels
address.  Prediction uses the classification head.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import TrainerConfig
from ..core.inference import InferenceResult, head_predict, two_stage_predict
from ..core.losses import (
    confidence_pseudo_label_loss,
    cross_entropy_loss,
    pairwise_similarity_loss,
)
from ..core.registry import register_method
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from ..nn import functional as F
from ..nn.tensor import Tensor


@register_method(
    "openldn",
    end_to_end=True,
    default_epochs=100,
    description="Pairwise-similarity pseudo labels with bi-level style weighting",
)
class OpenLDNTrainer(GraphTrainer):
    """OpenLDN with the GAT encoder and classifier-generated pseudo labels."""

    method_name = "OpenLDN"

    def __init__(self, dataset: OpenWorldDataset, config: Optional[TrainerConfig] = None,
                 confidence_threshold: float = 0.7, pairwise_weight: float = 1.0,
                 pseudo_weight: float = 1.0,
                 num_novel_classes: Optional[int] = None):
        config = config if config is not None else TrainerConfig()
        super().__init__(dataset, config, num_novel_classes=num_novel_classes)
        self.confidence_threshold = confidence_threshold
        self.pairwise_weight = pairwise_weight
        self.pseudo_weight = pseudo_weight

    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        manual = self.batch_manual_labels(batch_nodes)
        labeled_positions = np.where(manual >= 0)[0]
        unlabeled_positions = np.where(manual < 0)[0]

        logits1 = self.head(view1)
        probabilities = F.softmax(logits1, axis=-1)

        # Pairwise similarity objective on the batch.
        similarities = F.pairwise_cosine_similarity(view1).numpy().copy()
        np.fill_diagonal(similarities, -np.inf)
        nearest = similarities.argmax(axis=1)
        loss = pairwise_similarity_loss(probabilities, nearest) * self.pairwise_weight

        if labeled_positions.shape[0] > 0:
            loss = loss + cross_entropy_loss(
                logits1.gather_rows(labeled_positions), manual[labeled_positions]
            )

        # Classifier-based pseudo labels on confident unlabeled nodes
        # (computed from the second view, used to supervise the first).
        if unlabeled_positions.shape[0] > 0 and self.pseudo_weight > 0:
            with_probabilities = F.softmax(self.head(view2), axis=-1).numpy()
            pseudo = with_probabilities.argmax(axis=1)
            confident = with_probabilities.max(axis=1) >= self.confidence_threshold
            mask = np.zeros(batch_nodes.shape[0], dtype=bool)
            mask[unlabeled_positions] = confident[unlabeled_positions]
            pseudo_term = confidence_pseudo_label_loss(logits1, pseudo, mask)
            loss = loss + pseudo_term * self.pseudo_weight
        return loss

    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        if embeddings is None:
            embeddings = self.node_embeddings()
        predictions = head_predict(
            embeddings,
            self.head.linear.weight.data,
            self.label_space,
            head_bias=None if self.head.linear.bias is None else self.head.linear.bias.data,
        )
        two_stage = two_stage_predict(
            embeddings,
            self.dataset,
            num_novel_classes=(
                num_novel_classes if num_novel_classes is not None
                else self.label_space.num_novel
            ),
            seed=self.config.seed if seed is None else seed,
            engine=self.clustering_engine,
        )
        return InferenceResult(
            predictions=predictions,
            cluster_result=two_stage.cluster_result,
            alignment=two_stage.alignment,
            label_space=self.label_space,
        )
