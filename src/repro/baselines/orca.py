"""ORCA and ORCA-ZM baselines (Cao, Brbic & Leskovec, ICLR 2022).

ORCA is an end-to-end open-world SSL method built on three terms:

1. a supervised cross-entropy on labeled samples with an
   *uncertainty-adaptive margin* that slows down the learning of seen classes
   so their intra-class variance stays comparable to novel classes;
2. a pairwise objective that pulls each sample toward its most similar batch
   neighbour in probability space (pseudo-positive pairs); and
3. a regularization term that discourages assigning every unlabeled sample to
   seen classes (implemented as maximum-entropy regularization of the mean
   prediction).

ORCA-ZM removes the margin (Zero Margin).  As in the paper, the vision
encoder is replaced by the GAT encoder and prediction uses the classification
head (an end-to-end method).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import TrainerConfig
from ..core.inference import InferenceResult, head_predict, two_stage_predict
from ..core.losses import (
    entropy_regularization,
    margin_cross_entropy_loss,
    pairwise_similarity_loss,
)
from ..core.registry import register_method
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from ..nn import functional as F
from ..nn.tensor import Tensor


@register_method(
    "orca",
    end_to_end=True,
    default_epochs=50,
    description="Uncertainty-adaptive margin + pairwise objective (ICLR 2022)",
)
class ORCATrainer(GraphTrainer):
    """ORCA with the uncertainty-adaptive margin."""

    method_name = "ORCA"
    use_margin = True

    def __init__(self, dataset: OpenWorldDataset, config: Optional[TrainerConfig] = None,
                 margin_scale: float = 1.0, entropy_weight: float = 0.1,
                 pairwise_weight: float = 1.0,
                 num_novel_classes: Optional[int] = None):
        config = config if config is not None else TrainerConfig()
        super().__init__(dataset, config, num_novel_classes=num_novel_classes)
        self.margin_scale = margin_scale
        self.entropy_weight = entropy_weight
        self.pairwise_weight = pairwise_weight
        self._current_uncertainty = 1.0

    def on_epoch_start(self, epoch: int) -> None:
        """Estimate the unlabeled-data uncertainty that controls the margin."""
        if not self.use_margin:
            self._current_uncertainty = 0.0
            return
        logits = self.head_logits()
        test_nodes = self.dataset.split.test_nodes
        probs = _softmax_np(logits[test_nodes])
        # Uncertainty = 1 - mean max probability over unlabeled nodes.
        self._current_uncertainty = float(1.0 - probs.max(axis=1).mean())

    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        manual = self.batch_manual_labels(batch_nodes)
        labeled_positions = np.where(manual >= 0)[0]

        logits1 = self.head(view1)
        probabilities = F.softmax(logits1, axis=-1)

        # Pairwise objective on every batch node (pseudo-positive = nearest
        # neighbour by embedding cosine similarity).
        similarities = F.pairwise_cosine_similarity(view1).numpy().copy()
        np.fill_diagonal(similarities, -np.inf)
        nearest = similarities.argmax(axis=1)
        loss = pairwise_similarity_loss(probabilities, nearest) * self.pairwise_weight

        if labeled_positions.shape[0] > 0:
            margin = self.margin_scale * self._current_uncertainty if self.use_margin else 0.0
            supervised = margin_cross_entropy_loss(
                logits1.gather_rows(labeled_positions), manual[labeled_positions], margin
            )
            loss = loss + supervised

        if self.entropy_weight > 0:
            loss = loss + entropy_regularization(probabilities) * self.entropy_weight
        return loss

    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        """End-to-end prediction with the classification head."""
        if embeddings is None:
            embeddings = self.node_embeddings()
        predictions = head_predict(
            embeddings,
            self.head.linear.weight.data,
            self.label_space,
            head_bias=None if self.head.linear.bias is None else self.head.linear.bias.data,
        )
        two_stage = two_stage_predict(
            embeddings,
            self.dataset,
            num_novel_classes=(
                num_novel_classes if num_novel_classes is not None
                else self.label_space.num_novel
            ),
            seed=self.config.seed if seed is None else seed,
            engine=self.clustering_engine,
        )
        return InferenceResult(
            predictions=predictions,
            cluster_result=two_stage.cluster_result,
            alignment=two_stage.alignment,
            label_space=self.label_space,
        )


@register_method(
    "orca-zm",
    end_to_end=True,
    default_epochs=50,
    description="ORCA without the uncertainty-adaptive margin (zero margin)",
)
class ORCAZMTrainer(ORCATrainer):
    """ORCA with the margin mechanism removed (Zero Margin)."""

    method_name = "ORCA-ZM"
    use_margin = False


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
