"""OODGAT† baseline (Song & Wang, KDD 2022), extended for open-world SSL.

OODGAT is a C+1 open-world *node classification* method: it trains a GAT
classifier over the seen classes while encouraging a bimodal entropy
distribution so that out-of-distribution (OOD) nodes — those belonging to
novel classes — can be detected by their high prediction entropy.  As in the
paper's evaluation, we extend it to the open-world SSL setting (the †
variant) by clustering the detected OOD nodes with K-Means into the required
number of novel classes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import TrainerConfig
from ..core.inference import InferenceResult, two_stage_predict
from ..core.losses import cross_entropy_loss
from ..core.registry import register_method
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from ..nn import functional as F
from ..nn.tensor import Tensor


@register_method(
    "oodgat",
    end_to_end=True,
    default_epochs=100,
    description="Entropy-separated OOD detection + clustering of detected outliers",
)
class OODGATTrainer(GraphTrainer):
    """OODGAT†: entropy-separated C+1 classifier + post-clustering of OOD nodes."""

    method_name = "OODGAT"

    def __init__(self, dataset: OpenWorldDataset, config: Optional[TrainerConfig] = None,
                 entropy_weight: float = 0.1, ood_quantile: float = 0.5,
                 num_novel_classes: Optional[int] = None):
        config = config if config is not None else TrainerConfig()
        super().__init__(dataset, config, num_novel_classes=num_novel_classes)
        self.entropy_weight = entropy_weight
        self.ood_quantile = ood_quantile

    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        manual = self.batch_manual_labels(batch_nodes)
        labeled_positions = np.where(manual >= 0)[0]
        unlabeled_positions = np.where(manual < 0)[0]

        # Classification over seen classes only (the head's first S outputs).
        logits = self.head(view1)
        seen_logits = logits[:, : self.label_space.num_seen]

        # Entropy separation: low entropy for labeled (in-distribution) nodes,
        # high entropy for unlabeled nodes, sharpening the OOD signal.
        probabilities = F.softmax(seen_logits, axis=-1)
        entropy = -(probabilities * (probabilities + 1e-12).log()).sum(axis=1)
        loss = None
        if labeled_positions.shape[0] > 0:
            loss = cross_entropy_loss(
                seen_logits.gather_rows(labeled_positions), manual[labeled_positions]
            )
            loss = loss + entropy.gather_rows(labeled_positions).mean() * self.entropy_weight
        if unlabeled_positions.shape[0] > 0:
            unlabeled_term = -entropy.gather_rows(unlabeled_positions).mean() * self.entropy_weight
            loss = unlabeled_term if loss is None else loss + unlabeled_term
        if loss is None:
            loss = (seen_logits * 0.0).sum()
        return loss

    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        """Seen-class prediction by the head; OOD nodes clustered by K-Means."""
        if embeddings is None:
            embeddings = self.node_embeddings()
        num_novel = (
            num_novel_classes if num_novel_classes is not None else self.label_space.num_novel
        )
        seed = self.config.seed if seed is None else seed

        logits = embeddings @ self.head.linear.weight.data
        seen_logits = logits[:, : self.label_space.num_seen]
        probabilities = _softmax_np(seen_logits)
        entropy = -(probabilities * np.log(probabilities + 1e-12)).sum(axis=1)

        # Nodes above the entropy quantile (computed on unlabeled nodes) are OOD.
        test_nodes = self.dataset.split.test_nodes
        threshold = np.quantile(entropy[test_nodes], 1.0 - self.ood_quantile)
        is_ood = entropy > threshold
        is_ood[self.dataset.split.train_nodes] = False
        is_ood[self.dataset.split.val_nodes] = False

        internal = probabilities.argmax(axis=1)
        ood_nodes = np.where(is_ood)[0]
        if ood_nodes.shape[0] >= num_novel and num_novel > 0:
            # n_init=1 / mini_batch=False pin the historical direct KMeans
            # call for the exact strategy.
            clusters = self.clustering_engine.cluster(
                embeddings[ood_nodes], num_novel, seed=seed,
                n_init=1, mini_batch=False).labels
            internal[ood_nodes] = self.label_space.num_seen + clusters
        predictions = self.label_space.to_original(internal)

        two_stage = two_stage_predict(
            embeddings, self.dataset, num_novel_classes=num_novel, seed=seed,
            engine=self.clustering_engine,
        )
        return InferenceResult(
            predictions=predictions,
            cluster_result=two_stage.cluster_result,
            alignment=two_stage.alignment,
            label_space=self.label_space,
        )


def _softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
