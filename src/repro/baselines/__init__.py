"""Baseline methods compared against OpenIMA in the paper's evaluation.

Every baseline is a :class:`~repro.core.trainer.GraphTrainer` subclass that
registers itself (with metadata) in the unified method registry
:data:`repro.core.registry.METHODS` via the ``@register_method`` decorator.
The legacy :data:`BASELINE_REGISTRY` / :func:`build_baseline` API is kept as
a thin view over that registry for backwards compatibility — OpenIMA and the
baselines are all constructed the same way now
(``repro.core.registry.build_method``).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..core.config import TrainerConfig
from ..core.registry import METHODS
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from .oodgat import OODGATTrainer
from .opencon import OpenConTrainer, OpenConTwoStageTrainer
from .openldn import OpenLDNTrainer
from .openwgl import OpenWGLTrainer
from .orca import ORCATrainer, ORCAZMTrainer
from .simgcd import SimGCDTrainer
from .two_stage import InfoNCESupConCETrainer, InfoNCESupConTrainer, InfoNCETrainer

#: Compatibility view over the unified registry (everything but OpenIMA).
#: The imports above ran every ``@register_method`` decorator, so the specs
#: are present without triggering the registry's lazy self-import.
BASELINE_REGISTRY: Dict[str, Type[GraphTrainer]] = {
    spec.name: spec.trainer_cls
    for spec in METHODS.specs()
    if spec.name != "openima"
}


def available_baselines() -> list[str]:
    """Names accepted by :func:`build_baseline` (lower-case)."""
    return sorted(BASELINE_REGISTRY)


def build_baseline(name: str, dataset: OpenWorldDataset,
                   config: Optional[TrainerConfig] = None,
                   num_novel_classes: Optional[int] = None, **kwargs) -> GraphTrainer:
    """Instantiate a baseline trainer by its (case-insensitive) name."""
    key = name.lower()
    if key not in BASELINE_REGISTRY:
        raise KeyError(f"unknown baseline {name!r}; available: {available_baselines()}")
    return METHODS.build(key, dataset, config=config,
                         num_novel_classes=num_novel_classes, **kwargs)


__all__ = [
    "OODGATTrainer",
    "OpenWGLTrainer",
    "ORCATrainer",
    "ORCAZMTrainer",
    "SimGCDTrainer",
    "OpenLDNTrainer",
    "OpenConTrainer",
    "OpenConTwoStageTrainer",
    "InfoNCETrainer",
    "InfoNCESupConTrainer",
    "InfoNCESupConCETrainer",
    "BASELINE_REGISTRY",
    "available_baselines",
    "build_baseline",
]
