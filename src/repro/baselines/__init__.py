"""Baseline methods compared against OpenIMA in the paper's evaluation.

Every baseline is a :class:`~repro.core.trainer.GraphTrainer` subclass; the
:func:`build_baseline` factory maps the method names used in the paper's
tables to trainer classes so the experiment harness can iterate over them.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..core.config import TrainerConfig
from ..core.trainer import GraphTrainer
from ..datasets.splits import OpenWorldDataset
from .oodgat import OODGATTrainer
from .opencon import OpenConTrainer, OpenConTwoStageTrainer
from .openldn import OpenLDNTrainer
from .openwgl import OpenWGLTrainer
from .orca import ORCATrainer, ORCAZMTrainer
from .simgcd import SimGCDTrainer
from .two_stage import InfoNCESupConCETrainer, InfoNCESupConTrainer, InfoNCETrainer

BASELINE_REGISTRY: Dict[str, Type[GraphTrainer]] = {
    "oodgat": OODGATTrainer,
    "openwgl": OpenWGLTrainer,
    "orca-zm": ORCAZMTrainer,
    "orca": ORCATrainer,
    "simgcd": SimGCDTrainer,
    "openldn": OpenLDNTrainer,
    "opencon": OpenConTrainer,
    "opencon-two-stage": OpenConTwoStageTrainer,
    "infonce": InfoNCETrainer,
    "infonce+supcon": InfoNCESupConTrainer,
    "infonce+supcon+ce": InfoNCESupConCETrainer,
}


def available_baselines() -> list[str]:
    """Names accepted by :func:`build_baseline` (lower-case)."""
    return sorted(BASELINE_REGISTRY)


def build_baseline(name: str, dataset: OpenWorldDataset,
                   config: Optional[TrainerConfig] = None,
                   num_novel_classes: Optional[int] = None, **kwargs) -> GraphTrainer:
    """Instantiate a baseline trainer by its (case-insensitive) name."""
    key = name.lower()
    if key not in BASELINE_REGISTRY:
        raise KeyError(f"unknown baseline {name!r}; available: {available_baselines()}")
    trainer_cls = BASELINE_REGISTRY[key]
    return trainer_cls(dataset, config, num_novel_classes=num_novel_classes, **kwargs)


__all__ = [
    "OODGATTrainer",
    "OpenWGLTrainer",
    "ORCATrainer",
    "ORCAZMTrainer",
    "SimGCDTrainer",
    "OpenLDNTrainer",
    "OpenConTrainer",
    "OpenConTwoStageTrainer",
    "InfoNCETrainer",
    "InfoNCESupConTrainer",
    "InfoNCESupConCETrainer",
    "BASELINE_REGISTRY",
    "available_baselines",
    "build_baseline",
]
