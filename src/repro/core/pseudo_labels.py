"""Bias-reduced pseudo-label generation (Section IV-C).

Instead of training a classifier for pseudo-labeling (which would be biased
toward the seen classes, since only they have labels), OpenIMA clusters the
current node embeddings with unsupervised K-Means, ranks cluster assignments
by confidence (inverse distance to the assigned centroid), keeps the top-rho%
most confident assignments, and aligns clusters with seen classes using the
Hungarian algorithm on the labeled nodes.  Pseudo labels are only attached to
*unlabeled* nodes; clusters that match no seen class keep unordered novel ids
that only the contrastive losses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..assignment.alignment import ClusterAlignment, align_clusters_to_classes
from ..clustering.engine import ClusteringEngine, ClusteringOutcome
from ..clustering.kmeans import KMeansResult, cluster_embeddings


@dataclass
class PseudoLabels:
    """Bias-reduced pseudo labels for one refresh step.

    Attributes
    ----------
    node_indices:
        Indices of unlabeled nodes that received a pseudo label.
    labels:
        Internal class indices (seen classes 0..S-1; novel ids >= S) for those
        nodes.
    cluster_result:
        The underlying K-Means result (all nodes).
    alignment:
        The cluster-to-class alignment computed on the labeled nodes.
    confidence:
        Confidence value of every node (not just selected ones); higher means
        closer to its cluster centroid.
    clustering:
        The engine outcome behind ``cluster_result`` (strategy, whether the
        refresh re-fitted or only reassigned, parameter-version drift);
        ``None`` when the clustering was produced outside the engine.
    """

    node_indices: np.ndarray
    labels: np.ndarray
    cluster_result: KMeansResult
    alignment: ClusterAlignment
    confidence: np.ndarray
    clustering: Optional[ClusteringOutcome] = None

    @property
    def num_selected(self) -> int:
        return int(self.node_indices.shape[0])

    def label_lookup(self, num_nodes: int) -> np.ndarray:
        """Dense array of length ``num_nodes`` with -1 where no pseudo label."""
        dense = -np.ones(num_nodes, dtype=np.int64)
        dense[self.node_indices] = self.labels
        return dense


def generate_pseudo_labels(
    embeddings: np.ndarray,
    labeled_indices: np.ndarray,
    labeled_internal_labels: np.ndarray,
    num_seen_classes: int,
    num_clusters: int,
    rho: float = 75.0,
    seed: int = 0,
    mini_batch: bool = False,
    kmeans_batch_size: int = 1024,
    cluster_result: Optional[KMeansResult] = None,
    engine: Optional[ClusteringEngine] = None,
    parameter_version: Optional[int] = None,
) -> PseudoLabels:
    """Produce bias-reduced pseudo labels from the current embeddings.

    Parameters
    ----------
    embeddings:
        Current node representations, shape (num_nodes, d).
    labeled_indices:
        Indices of the labeled (training) nodes.
    labeled_internal_labels:
        Internal seen-class indices (0..num_seen_classes-1) of those nodes.
    num_seen_classes:
        Number of seen classes S.
    num_clusters:
        Number of clusters K = S + number of novel classes.
    rho:
        Selection rate in percent: the top-rho% most confident cluster
        assignments (over all nodes) define the reliable set; pseudo labels
        are attached to unlabeled nodes inside it.
    cluster_result:
        Optionally reuse a precomputed clustering of ``embeddings``.
    engine:
        Optional :class:`~repro.clustering.engine.ClusteringEngine`; when
        given (and no ``cluster_result``), the refresh runs through the
        engine's stateful path — configured strategy, warm-started
        centroids, and the ``refresh_tolerance`` short-circuit keyed on
        ``parameter_version`` — and the outcome is recorded on the returned
        :class:`PseudoLabels`.  ``seed``/``mini_batch``/``kmeans_batch_size``
        only apply to the legacy engine-less path.
    """
    if not 0 < rho <= 100:
        raise ValueError("rho must be in (0, 100]")
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labeled_indices = np.asarray(labeled_indices, dtype=np.int64)
    labeled_internal_labels = np.asarray(labeled_internal_labels, dtype=np.int64)
    num_nodes = embeddings.shape[0]

    outcome: Optional[ClusteringOutcome] = None
    if cluster_result is None:
        if engine is not None:
            outcome = engine.refresh(embeddings, num_clusters,
                                     parameter_version=parameter_version)
            cluster_result = outcome.result
        else:
            cluster_result = cluster_embeddings(
                embeddings, num_clusters, seed=seed, mini_batch=mini_batch,
                batch_size=kmeans_batch_size,
            )

    # Confidence: inversely proportional to the distance to the assigned centroid.
    distances = cluster_result.distances_to_center(embeddings)
    confidence = -distances

    # Keep the top-rho% most confident assignments over all nodes.
    num_reliable = max(1, int(np.ceil(num_nodes * rho / 100.0)))
    reliable = np.argsort(-confidence)[:num_reliable]
    reliable_mask = np.zeros(num_nodes, dtype=bool)
    reliable_mask[reliable] = True

    # Align clusters with seen classes using only the labeled nodes.
    alignment = align_clusters_to_classes(
        cluster_result.labels[labeled_indices],
        labeled_internal_labels,
        num_clusters=num_clusters,
        known_classes=np.arange(num_seen_classes),
        total_num_classes=num_seen_classes,
    )
    aligned_labels = alignment.apply(cluster_result.labels)

    # Pseudo labels only supplement unlabeled nodes inside the reliable set.
    labeled_mask = np.zeros(num_nodes, dtype=bool)
    labeled_mask[labeled_indices] = True
    selected = np.where(reliable_mask & ~labeled_mask)[0]

    return PseudoLabels(
        node_indices=selected,
        labels=aligned_labels[selected],
        cluster_result=cluster_result,
        alignment=alignment,
        confidence=confidence,
        clustering=outcome,
    )
