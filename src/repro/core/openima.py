"""The OpenIMA method (Section IV of the paper).

OpenIMA trains a GAT encoder and a linear classification head from scratch
with the objective

    L_OpenIMA = L_BPCL + eta * L_CE                      (Eq. 6)
    L_BPCL    = L_BPCL^emb + L_BPCL^logit                (Eq. 9)

where the BPCL losses are supervised-contrastive objectives whose positive
pairs come from manual labels *and* bias-reduced pseudo labels (unsupervised
K-Means + Hungarian alignment + confidence-based selection).  Inference is
two-stage: K-Means over the final embeddings followed by cluster-class
alignment; on large graphs the paper instead predicts with the classification
head and adds a pairwise loss to combat over-fitting of seen classes — both
refinements are implemented behind ``OpenIMAConfig.large_scale``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from typing import Dict

from ..datasets.splits import OpenWorldDataset
from ..nn import functional as F
from ..nn.tensor import Tensor
from .config import OpenIMAConfig, TrainerConfig
from .inference import InferenceResult, head_predict, two_stage_predict
from .losses import (
    bpcl_loss,
    cross_entropy_loss,
    pairwise_similarity_loss,
)
from .pseudo_labels import PseudoLabels, generate_pseudo_labels
from .registry import register_method
from .trainer import GraphTrainer


def build_openima(dataset: OpenWorldDataset, config=None,
                  num_novel_classes: Optional[int] = None,
                  **overrides) -> "OpenIMATrainer":
    """Registry builder: construct OpenIMA from any config flavour.

    ``config`` may be ``None``, a :class:`TrainerConfig` (wrapped into an
    :class:`OpenIMAConfig`), or a full :class:`OpenIMAConfig`.  ``overrides``
    are OpenIMAConfig fields.  Unless ``large_scale`` is explicitly given,
    it defaults from the dataset's profile metadata (ogbn-Arxiv/Products).
    """
    if config is None:
        config = OpenIMAConfig()
    elif isinstance(config, TrainerConfig):
        config = OpenIMAConfig(trainer=config)
    elif not isinstance(config, OpenIMAConfig):
        raise TypeError(
            f"openima expects a TrainerConfig or OpenIMAConfig, got {type(config).__name__}"
        )
    if "large_scale" not in overrides and not config.large_scale:
        if bool(dataset.metadata.get("large_scale", False)):
            overrides["large_scale"] = True
    if num_novel_classes is not None:
        overrides["num_novel_classes"] = int(num_novel_classes)
    if overrides:
        config = config.with_updates(**overrides)
    return OpenIMATrainer(dataset, config)


@register_method(
    "openima",
    display_name="OpenIMA",
    end_to_end=False,
    default_epochs=20,
    config_cls=OpenIMAConfig,
    builder=build_openima,
    description="BPCL + CE with bias-reduced pseudo labels (the paper's method)",
)
class OpenIMATrainer(GraphTrainer):
    """Trainer implementing the full OpenIMA objective and inference."""

    method_name = "OpenIMA"

    def __init__(self, dataset: OpenWorldDataset, config: Optional[OpenIMAConfig] = None):
        config = config if config is not None else OpenIMAConfig()
        super().__init__(dataset, config.trainer,
                         num_novel_classes=config.num_novel_classes)
        self.openima_config = config
        self.pseudo_labels: Optional[PseudoLabels] = None
        self._pseudo_lookup = -np.ones(dataset.graph.num_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    # Persistence hooks
    # ------------------------------------------------------------------
    @property
    def full_config(self) -> OpenIMAConfig:
        return self.openima_config

    def configure_inference(self, inference) -> None:
        super().configure_inference(inference)
        # Keep the nested trainer section in sync so checkpoints written
        # after the swap persist the new inference settings.
        self.openima_config = self.openima_config.with_updates(trainer=self.config)

    def configure_clustering(self, clustering) -> None:
        super().configure_clustering(clustering)
        self.openima_config = self.openima_config.with_updates(trainer=self.config)

    def configure_parallel(self, parallel) -> None:
        super().configure_parallel(parallel)
        self.openima_config = self.openima_config.with_updates(trainer=self.config)

    def extra_state(self) -> Dict[str, np.ndarray]:
        # The pseudo-label lookup is the only cross-epoch state the loss
        # depends on; persisting it keeps resumed runs exact even when
        # ``pseudo_label_refresh > 1`` (no refresh at the resume epoch).
        return {"pseudo_lookup": self._pseudo_lookup.copy()}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        if "pseudo_lookup" in state:
            self._pseudo_lookup = np.asarray(state["pseudo_lookup"], dtype=np.int64).copy()

    # ------------------------------------------------------------------
    # Pseudo labels
    # ------------------------------------------------------------------
    def refresh_pseudo_labels(self) -> Optional[PseudoLabels]:
        """Recompute bias-reduced pseudo labels from the current embeddings."""
        if not self.openima_config.use_pseudo_labels:
            return None
        embeddings = self.node_embeddings()
        split = self.dataset.split
        self.pseudo_labels = generate_pseudo_labels(
            embeddings,
            labeled_indices=split.train_nodes,
            labeled_internal_labels=self._train_internal,
            num_seen_classes=self.label_space.num_seen,
            num_clusters=self.label_space.num_total,
            rho=self.openima_config.rho,
            engine=self.clustering_engine,
            parameter_version=self.encoder.parameter_version(),
        )
        self._pseudo_lookup = self.pseudo_labels.label_lookup(self.dataset.graph.num_nodes)
        return self.pseudo_labels

    def on_epoch_start(self, epoch: int) -> None:
        if not self.openima_config.use_pseudo_labels:
            return
        warmup = max(0, self.openima_config.pseudo_label_warmup)
        if epoch < warmup:
            return
        refresh = max(1, self.openima_config.pseudo_label_refresh)
        if (epoch - warmup) % refresh == 0:
            self.refresh_pseudo_labels()

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def batch_group_ids(self, batch_nodes: np.ndarray) -> np.ndarray:
        """Combine manual labels and pseudo labels into contrastive group ids.

        Manual labels take precedence; nodes with neither get -1 (their only
        positive is their second dropout view).  The returned array has
        length 2N to match the stacked two-view batch layout.
        """
        manual = self.batch_manual_labels(batch_nodes)
        pseudo = self._pseudo_lookup[batch_nodes]
        combined = np.where(manual >= 0, manual, pseudo)
        return np.concatenate([combined, combined])

    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        config = self.openima_config
        if not (config.use_embedding_bpcl or config.use_logit_bpcl
                or config.use_cross_entropy or config.large_scale):
            raise ValueError("OpenIMA configuration disables every loss term")
        group_ids = self.batch_group_ids(batch_nodes)

        use_bpcl = config.use_embedding_bpcl or config.use_logit_bpcl
        loss: Optional[Tensor] = None
        if use_bpcl:
            embeddings = self.normalized_views(view1, view2)
            logits = (
                self.normalized_logit_views(view1, view2)
                if config.use_logit_bpcl
                else None
            )
            loss = bpcl_loss(
                embeddings,
                logits,
                group_ids,
                temperature=self.config.temperature,
                use_embedding_level=config.use_embedding_bpcl,
                use_logit_level=config.use_logit_bpcl,
            )

        if config.use_cross_entropy:
            manual = self.batch_manual_labels(batch_nodes)
            labeled_positions = np.where(manual >= 0)[0]
            if labeled_positions.shape[0] > 0:
                logits_labeled = self.head(view1.gather_rows(labeled_positions))
                ce = cross_entropy_loss(logits_labeled, manual[labeled_positions])
                scaled = ce * config.eta
                loss = scaled if loss is None else loss + scaled

        if config.large_scale and config.pairwise_loss_weight > 0:
            loss_pairwise = self._pairwise_loss(view1, view2) * config.pairwise_loss_weight
            loss = loss_pairwise if loss is None else loss + loss_pairwise

        if loss is None:
            # Every enabled term was inapplicable to this batch (e.g. a
            # CE-only ablation hit a batch without labeled nodes).  Return a
            # zero loss connected to the graph so the training step is a
            # harmless no-op.
            loss = (view1 * 0.0).sum()
        return loss

    def _pairwise_loss(self, view1: Tensor, view2: Tensor) -> Tensor:
        """ORCA-style pairwise loss used by the large-graph refinement.

        Each node in the batch is paired with its most similar node (cosine
        similarity of the first view, excluding itself) and their head
        probability vectors are pulled together.
        """
        similarities = F.pairwise_cosine_similarity(view1).numpy().copy()
        np.fill_diagonal(similarities, -np.inf)
        nearest = similarities.argmax(axis=1)
        probabilities = F.softmax(self.head(view2), axis=-1)
        return pairwise_similarity_loss(probabilities, nearest)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        """Two-stage inference (default) or head-based inference (large graphs)."""
        if not self.openima_config.large_scale:
            return super().predict(num_novel_classes=num_novel_classes, seed=seed,
                                   embeddings=embeddings)
        if embeddings is None:
            embeddings = self.node_embeddings()
        predictions = head_predict(
            embeddings,
            self.head.linear.weight.data,
            self.label_space,
            head_bias=None if self.head.linear.bias is None else self.head.linear.bias.data,
        )
        # Keep the clustering/alignment structures from the two-stage path so
        # downstream consumers (e.g. SC&ACC) still have cluster labels.
        two_stage = two_stage_predict(
            embeddings,
            self.dataset,
            num_novel_classes=(
                num_novel_classes if num_novel_classes is not None
                else self.label_space.num_novel
            ),
            seed=self.config.seed if seed is None else seed,
            # The large-scale profile always clusters with MiniBatch-KMeans
            # regardless of the trainer's legacy flag (paper Section V).
            mini_batch=True,
            engine=self.clustering_engine,
        )
        return InferenceResult(
            predictions=predictions,
            cluster_result=two_stage.cluster_result,
            alignment=two_stage.alignment,
            label_space=self.label_space,
        )

def train_openima(dataset: OpenWorldDataset, config: Optional[OpenIMAConfig] = None
                  ) -> OpenIMATrainer:
    """Convenience helper: construct, fit, and return an OpenIMA trainer."""
    trainer = OpenIMATrainer(dataset, config)
    trainer.fit()
    return trainer
