"""Training objectives: BPCL, InfoNCE, SupCon, cross-entropy, and the
auxiliary losses used by the end-to-end baselines (ORCA margin CE, pairwise
similarity, entropy regularization, self-distillation).

All losses take autodiff :class:`~repro.nn.tensor.Tensor` inputs for model
outputs and plain numpy arrays for labels/masks (constants in the graph).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor, cat


def _positive_mask(group_ids: np.ndarray) -> np.ndarray:
    """Positive-pair mask for a batch of 2N augmented points.

    ``group_ids`` has length 2N; the two views of node ``i`` occupy rows
    ``i`` and ``i + N``.  Two rows are positives if they share a non-negative
    group id, or if they are the two views of the same node (always).  The
    diagonal is excluded.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    total = group_ids.shape[0]
    if total % 2 != 0:
        raise ValueError("expected an even number of augmented samples (2N)")
    half = total // 2
    same_group = (group_ids[:, None] == group_ids[None, :]) & (group_ids[:, None] >= 0)
    # The two dropout views of the same node are always positives (SimCSE).
    view_pair = np.zeros((total, total), dtype=bool)
    idx = np.arange(half)
    view_pair[idx, idx + half] = True
    view_pair[idx + half, idx] = True
    mask = same_group | view_pair
    np.fill_diagonal(mask, False)
    return mask


def supervised_contrastive_loss(
    features: Tensor,
    group_ids: np.ndarray,
    temperature: float = 0.7,
) -> Tensor:
    """Generalized SupCon/InfoNCE loss over 2N augmented, normalized features.

    This single function implements Eq. 7 and Eq. 8 of the paper (and plain
    InfoNCE / SupCon as special cases):

    * rows with ``group_id >= 0`` treat every other row with the same id as a
      positive (manual or pseudo label available);
    * rows with ``group_id < 0`` only have their own second view as positive
      (InfoNCE behaviour).

    ``features`` must already be L2-normalized; pass embeddings for the
    embedding-level loss or normalized logits for the logit-level loss.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    total = features.shape[0]
    mask = _positive_mask(group_ids)
    positive_counts = mask.sum(axis=1)
    if (positive_counts == 0).any():
        raise RuntimeError("every sample must have at least one positive (its other view)")

    similarities = features.matmul(features.transpose()) * (1.0 / temperature)
    # Exclude self-similarity from the softmax denominator.
    diag_mask = np.zeros((total, total))
    np.fill_diagonal(diag_mask, -1e9)
    logits = similarities + Tensor(diag_mask)
    log_prob = F.log_softmax(logits, axis=1)

    positives = (log_prob * Tensor(mask.astype(np.float64))).sum(axis=1)
    per_sample = positives * Tensor(1.0 / positive_counts)
    return -per_sample.mean()


def info_nce_loss(features: Tensor, temperature: float = 0.7) -> Tensor:
    """Unsupervised InfoNCE: only the paired dropout view is positive."""
    total = features.shape[0]
    group_ids = -np.ones(total, dtype=np.int64)
    return supervised_contrastive_loss(features, group_ids, temperature)


def cross_entropy_loss(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy over integer ``targets`` (re-exported for symmetry)."""
    return F.cross_entropy(logits, targets)


def margin_cross_entropy_loss(logits: Tensor, targets: np.ndarray, margin: float) -> Tensor:
    """ORCA's uncertainty-adaptive margin cross-entropy.

    The margin is subtracted from the logit of the ground-truth class, which
    slows down the learning of seen classes so their intra-class variance
    stays comparable to the novel classes'.  ``margin = 0`` recovers plain
    cross-entropy (ORCA-ZM).
    """
    targets = np.asarray(targets, dtype=np.int64)
    if margin == 0.0:
        return F.cross_entropy(logits, targets)
    adjustment = np.zeros(logits.shape)
    adjustment[np.arange(targets.shape[0]), targets] = -margin
    return F.cross_entropy(logits + Tensor(adjustment), targets)


def pairwise_similarity_loss(probabilities: Tensor, target_pairs: np.ndarray) -> Tensor:
    """ORCA-style pairwise objective.

    ``probabilities`` are softmax outputs of shape (n, c); ``target_pairs`` is
    an (n,) array giving, for each row, the index of its most similar row in
    the batch (its pseudo-positive).  The loss is the negative log inner
    product of the probability vectors of each pair, pulling paired samples
    toward the same class distribution.
    """
    target_pairs = np.asarray(target_pairs, dtype=np.int64)
    paired = probabilities.gather_rows(target_pairs)
    inner = (probabilities * paired).sum(axis=1)
    return -(inner + 1e-8).log().mean()


def entropy_regularization(probabilities: Tensor) -> Tensor:
    """Negative entropy of the *mean* prediction (SimGCD regularizer).

    Minimizing this term maximizes the entropy of the average class
    distribution, preventing the classifier from collapsing all unlabeled
    nodes onto the seen classes.
    """
    mean_prob = probabilities.mean(axis=0)
    entropy = -(mean_prob * (mean_prob + 1e-12).log()).sum()
    return -entropy


def self_distillation_loss(student_logits: Tensor, teacher_probs: np.ndarray,
                           temperature: float = 0.1) -> Tensor:
    """SimGCD self-distillation: CE between sharpened teacher and student.

    ``teacher_probs`` are detached probabilities from the other augmented
    view, sharpened with ``temperature`` before being used as soft targets.
    """
    teacher = np.asarray(teacher_probs, dtype=np.float64)
    sharpened = teacher ** (1.0 / temperature)
    sharpened = sharpened / sharpened.sum(axis=1, keepdims=True)
    log_student = F.log_softmax(student_logits, axis=1)
    return -(log_student * Tensor(sharpened)).sum(axis=1).mean()


def confidence_pseudo_label_loss(logits: Tensor, pseudo_labels: np.ndarray,
                                 confidence_mask: np.ndarray) -> Tensor:
    """OpenLDN-style CE on classifier pseudo labels above a confidence threshold."""
    confidence_mask = np.asarray(confidence_mask, dtype=bool)
    if not confidence_mask.any():
        return Tensor(0.0)
    selected = np.where(confidence_mask)[0]
    return F.cross_entropy(logits.gather_rows(selected), np.asarray(pseudo_labels)[selected])


def bpcl_loss(
    embeddings_two_views: Tensor,
    normalized_logits_two_views: Optional[Tensor],
    group_ids: np.ndarray,
    temperature: float = 0.7,
    use_embedding_level: bool = True,
    use_logit_level: bool = True,
) -> Tensor:
    """Full BPCL objective (Eq. 9): embedding-level + logit-level contrastive.

    Parameters
    ----------
    embeddings_two_views:
        L2-normalized embeddings of the 2N augmented batch points.
    normalized_logits_two_views:
        L2-normalized logits of the same points (may be None if the logit
        level is disabled).
    group_ids:
        Length-2N class ids combining manual labels and bias-reduced pseudo
        labels; -1 for nodes with neither.
    """
    if not use_embedding_level and not use_logit_level:
        raise ValueError("at least one BPCL level must be enabled")
    terms = []
    if use_embedding_level:
        terms.append(supervised_contrastive_loss(embeddings_two_views, group_ids, temperature))
    if use_logit_level:
        if normalized_logits_two_views is None:
            raise ValueError("logit-level BPCL requires normalized logits")
        terms.append(
            supervised_contrastive_loss(normalized_logits_two_views, group_ids, temperature)
        )
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return total


def concat_views(view1: Tensor, view2: Tensor) -> Tensor:
    """Stack two augmented views row-wise into the 2N-point batch layout."""
    return cat([view1, view2], axis=0)
