"""Callback hooks for :meth:`GraphTrainer.fit`.

The trainer calls ``on_fit_start``, ``on_epoch_start``, ``on_epoch_end`` and
``on_fit_end`` on every callback; ``on_epoch_end`` receives a ``logs`` dict
(``{"epoch": int, "loss": float}``) that callbacks may extend for callbacks
running after them.  A callback stops training by setting
``trainer.stop_training = True`` — the loop exits at the end of the current
epoch, so a checkpoint written afterwards resumes cleanly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from ..obs import REGISTRY
from ..obs.clock import monotonic as _monotonic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trainer import GraphTrainer, TrainingHistory


class Callback:
    """Base class; override any subset of the hooks."""

    def on_fit_start(self, trainer: "GraphTrainer") -> None:
        """Called once before the first epoch of a ``fit`` call."""

    def on_epoch_start(self, trainer: "GraphTrainer", epoch: int) -> None:
        """Called at the start of every epoch (after the trainer's own hook)."""

    def on_epoch_end(self, trainer: "GraphTrainer", epoch: int, logs: dict) -> None:
        """Called after every epoch with the epoch's aggregated logs."""

    def on_fit_end(self, trainer: "GraphTrainer", history: "TrainingHistory") -> None:
        """Called once when the ``fit`` call finishes (normally or early)."""


class CallbackList(Callback):
    """Dispatch every hook to an ordered list of callbacks."""

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None):
        self.callbacks: List[Callback] = list(callbacks or [])

    def on_fit_start(self, trainer) -> None:
        for callback in self.callbacks:
            callback.on_fit_start(trainer)

    def on_epoch_start(self, trainer, epoch) -> None:
        for callback in self.callbacks:
            callback.on_epoch_start(trainer, epoch)

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(trainer, epoch, logs)

    def on_fit_end(self, trainer, history) -> None:
        for callback in self.callbacks:
            callback.on_fit_end(trainer, history)


class LossLogger(Callback):
    """Print (or collect) the mean training loss every ``every`` epochs."""

    def __init__(self, every: int = 1, print_fn: Callable[[str], None] = print):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.print_fn = print_fn

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        if (epoch + 1) % self.every == 0:
            loss = logs.get("loss")
            loss_repr = f"{loss:.4f}" if isinstance(loss, float) else str(loss)
            self.print_fn(f"[{trainer.method_name}] epoch {epoch + 1}  loss {loss_repr}")


class EarlyStopping(Callback):
    """Stop training when a monitored log value stops improving.

    Monitors ``logs[monitor]`` (default: the epoch loss).  Training stops
    after ``patience`` consecutive epochs without an improvement of at least
    ``min_delta``.
    """

    def __init__(self, monitor: str = "loss", patience: int = 3,
                 min_delta: float = 0.0, mode: str = "min"):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: float = math.inf if mode == "min" else -math.inf
        self.stopped_epoch: Optional[int] = None
        self._bad_epochs = 0

    def _improved(self, value: float) -> bool:
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_fit_start(self, trainer) -> None:
        self.best = math.inf if self.mode == "min" else -math.inf
        self.stopped_epoch = None
        self._bad_epochs = 0

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        value = logs.get(self.monitor)
        if value is None or not math.isfinite(value):
            return
        if self._improved(value):
            self.best = float(value)
            self._bad_epochs = 0
            return
        self._bad_epochs += 1
        if self._bad_epochs >= self.patience:
            self.stopped_epoch = epoch
            trainer.stop_training = True


class EvaluationCallback(Callback):
    """Record open-world accuracy every ``every`` epochs.

    This is the callback form of the legacy ``TrainerConfig.eval_every``
    setting; the trainer installs it automatically when ``eval_every > 0``.
    The node embeddings are computed once and passed through explicitly, so
    an evaluation epoch costs a single encoder forward even when the
    trainer's embedding cache is disabled; the engine's forward/cache
    counters are exposed to later callbacks as ``logs["inference"]``.
    """

    def __init__(self, every: int):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        if (epoch + 1) % self.every == 0:
            embeddings = trainer.node_embeddings()
            accuracy = trainer.evaluate(embeddings=embeddings)
            trainer.history.record_evaluation(epoch, accuracy)
            logs["accuracy"] = accuracy.overall
            logs["inference"] = trainer.inference_engine.stats()


class MetricsCallback(Callback):
    """Publish per-epoch training telemetry to :data:`repro.obs.REGISTRY`.

    Per epoch: the mean loss and the post-step gradient norm as gauges
    (``repro_train_loss`` / ``repro_train_grad_norm``, labelled by method),
    an epoch counter, and an epoch-duration histogram.  The gradient norm is
    readable at epoch end because ``_train_step`` zeroes gradients at the
    *start* of the next step, so the last batch's gradients persist on the
    optimizer's parameters.

    Purely additive — it never mutates the trainer or ``logs`` keys other
    callbacks rely on, so it can be appended to any callback stack.
    """

    _LOSS = REGISTRY.gauge(
        "repro_train_loss",
        "Mean training loss of the most recent epoch, by method.",
        labelnames=("method",))
    _GRAD_NORM = REGISTRY.gauge(
        "repro_train_grad_norm",
        "Global L2 gradient norm after the last step of the epoch, by method.",
        labelnames=("method",))
    _EPOCHS = REGISTRY.counter(
        "repro_train_epochs_total",
        "Training epochs completed, by method.",
        labelnames=("method",))
    _EPOCH_SECONDS = REGISTRY.histogram(
        "repro_train_epoch_seconds",
        "Wall time of one training epoch.")

    def __init__(self):
        self._epoch_started: Optional[float] = None

    @staticmethod
    def grad_norm(trainer: "GraphTrainer") -> Optional[float]:
        """Global L2 norm over every parameter gradient (None if all unset)."""
        total = 0.0
        seen = False
        for parameter in trainer.optimizer.parameters:
            grad = getattr(parameter, "grad", None)
            if grad is None:
                continue
            seen = True
            total += float((grad ** 2).sum())
        return math.sqrt(total) if seen else None

    def on_epoch_start(self, trainer, epoch) -> None:
        self._epoch_started = _monotonic()

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        method = trainer.method_name
        loss = logs.get("loss")
        if isinstance(loss, float) and math.isfinite(loss):
            self._LOSS.set(loss, method=method)
        norm = self.grad_norm(trainer)
        if norm is not None:
            self._GRAD_NORM.set(norm, method=method)
        self._EPOCHS.inc(method=method)
        if self._epoch_started is not None:
            self._EPOCH_SECONDS.observe(_monotonic() - self._epoch_started)
            self._epoch_started = None
        logs["grad_norm"] = norm


class PeriodicCheckpoint(Callback):
    """Write a resumable checkpoint every ``every`` epochs.

    ``path`` may contain an ``{epoch}`` placeholder to keep one checkpoint
    per epoch; otherwise the same path is overwritten (a rolling "latest"
    checkpoint).  Checkpoints are written with
    :func:`repro.api.checkpoint.save_trainer_checkpoint`, so they can be
    reloaded with ``OpenWorldClassifier.load`` or the CLI ``resume`` command.
    """

    def __init__(self, path: str, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = str(path)
        self.every = every
        self.saved_paths: List[str] = []

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        if (epoch + 1) % self.every != 0:
            return
        from ..api.checkpoint import save_trainer_checkpoint

        target = self.path.format(epoch=epoch + 1)
        save_trainer_checkpoint(trainer, target)
        self.saved_paths.append(target)
