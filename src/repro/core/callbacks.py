"""Callback hooks for :meth:`GraphTrainer.fit`.

The trainer calls ``on_fit_start``, ``on_epoch_start``, ``on_epoch_end`` and
``on_fit_end`` on every callback; ``on_epoch_end`` receives a ``logs`` dict
(``{"epoch": int, "loss": float}``) that callbacks may extend for callbacks
running after them.  A callback stops training by setting
``trainer.stop_training = True`` — the loop exits at the end of the current
epoch, so a checkpoint written afterwards resumes cleanly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .trainer import GraphTrainer, TrainingHistory


class Callback:
    """Base class; override any subset of the hooks."""

    def on_fit_start(self, trainer: "GraphTrainer") -> None:
        """Called once before the first epoch of a ``fit`` call."""

    def on_epoch_start(self, trainer: "GraphTrainer", epoch: int) -> None:
        """Called at the start of every epoch (after the trainer's own hook)."""

    def on_epoch_end(self, trainer: "GraphTrainer", epoch: int, logs: dict) -> None:
        """Called after every epoch with the epoch's aggregated logs."""

    def on_fit_end(self, trainer: "GraphTrainer", history: "TrainingHistory") -> None:
        """Called once when the ``fit`` call finishes (normally or early)."""


class CallbackList(Callback):
    """Dispatch every hook to an ordered list of callbacks."""

    def __init__(self, callbacks: Optional[Iterable[Callback]] = None):
        self.callbacks: List[Callback] = list(callbacks or [])

    def on_fit_start(self, trainer) -> None:
        for callback in self.callbacks:
            callback.on_fit_start(trainer)

    def on_epoch_start(self, trainer, epoch) -> None:
        for callback in self.callbacks:
            callback.on_epoch_start(trainer, epoch)

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        for callback in self.callbacks:
            callback.on_epoch_end(trainer, epoch, logs)

    def on_fit_end(self, trainer, history) -> None:
        for callback in self.callbacks:
            callback.on_fit_end(trainer, history)


class LossLogger(Callback):
    """Print (or collect) the mean training loss every ``every`` epochs."""

    def __init__(self, every: int = 1, print_fn: Callable[[str], None] = print):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.print_fn = print_fn

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        if (epoch + 1) % self.every == 0:
            loss = logs.get("loss")
            loss_repr = f"{loss:.4f}" if isinstance(loss, float) else str(loss)
            self.print_fn(f"[{trainer.method_name}] epoch {epoch + 1}  loss {loss_repr}")


class EarlyStopping(Callback):
    """Stop training when a monitored log value stops improving.

    Monitors ``logs[monitor]`` (default: the epoch loss).  Training stops
    after ``patience`` consecutive epochs without an improvement of at least
    ``min_delta``.
    """

    def __init__(self, monitor: str = "loss", patience: int = 3,
                 min_delta: float = 0.0, mode: str = "min"):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: float = math.inf if mode == "min" else -math.inf
        self.stopped_epoch: Optional[int] = None
        self._bad_epochs = 0

    def _improved(self, value: float) -> bool:
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_fit_start(self, trainer) -> None:
        self.best = math.inf if self.mode == "min" else -math.inf
        self.stopped_epoch = None
        self._bad_epochs = 0

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        value = logs.get(self.monitor)
        if value is None or not math.isfinite(value):
            return
        if self._improved(value):
            self.best = float(value)
            self._bad_epochs = 0
            return
        self._bad_epochs += 1
        if self._bad_epochs >= self.patience:
            self.stopped_epoch = epoch
            trainer.stop_training = True


class EvaluationCallback(Callback):
    """Record open-world accuracy every ``every`` epochs.

    This is the callback form of the legacy ``TrainerConfig.eval_every``
    setting; the trainer installs it automatically when ``eval_every > 0``.
    The node embeddings are computed once and passed through explicitly, so
    an evaluation epoch costs a single encoder forward even when the
    trainer's embedding cache is disabled; the engine's forward/cache
    counters are exposed to later callbacks as ``logs["inference"]``.
    """

    def __init__(self, every: int):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        if (epoch + 1) % self.every == 0:
            embeddings = trainer.node_embeddings()
            accuracy = trainer.evaluate(embeddings=embeddings)
            trainer.history.record_evaluation(epoch, accuracy)
            logs["accuracy"] = accuracy.overall
            logs["inference"] = trainer.inference_engine.stats()


class PeriodicCheckpoint(Callback):
    """Write a resumable checkpoint every ``every`` epochs.

    ``path`` may contain an ``{epoch}`` placeholder to keep one checkpoint
    per epoch; otherwise the same path is overwritten (a rolling "latest"
    checkpoint).  Checkpoints are written with
    :func:`repro.api.checkpoint.save_trainer_checkpoint`, so they can be
    reloaded with ``OpenWorldClassifier.load`` or the CLI ``resume`` command.
    """

    def __init__(self, path: str, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = str(path)
        self.every = every
        self.saved_paths: List[str] = []

    def on_epoch_end(self, trainer, epoch, logs) -> None:
        if (epoch + 1) % self.every != 0:
            return
        from ..api.checkpoint import save_trainer_checkpoint

        target = self.path.format(epoch=epoch + 1)
        save_trainer_checkpoint(trainer, target)
        self.saved_paths.append(target)
