"""Two-stage inference: K-Means over embeddings + cluster-class alignment.

This is the prediction procedure shared by OpenIMA and the two-stage
baselines (Section IV-B): embed all nodes, cluster into ``|C_l| + |C_n|``
clusters, align clusters with seen classes via the Hungarian algorithm on the
labeled nodes (Eq. 5), and read off class predictions for the unlabeled
nodes.  Unaligned clusters become novel-class predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..assignment.alignment import ClusterAlignment, align_clusters_to_classes
from ..clustering.engine import ClusteringEngine
from ..clustering.kmeans import KMeansResult, cluster_embeddings
from ..datasets.splits import OpenWorldDataset
from .labels import LabelSpace


@dataclass
class InferenceResult:
    """Predictions produced by the two-stage inference procedure.

    ``predictions`` contains a class id per node (all nodes of the graph):
    original seen class ids for clusters aligned with seen classes, and
    synthetic novel ids (>= max class id + 1) for the rest.
    """

    predictions: np.ndarray
    cluster_result: KMeansResult
    alignment: ClusterAlignment
    label_space: LabelSpace

    def test_predictions(self, dataset: OpenWorldDataset) -> np.ndarray:
        """Predictions restricted to the dataset's test nodes."""
        return self.predictions[dataset.split.test_nodes]


def two_stage_predict(
    embeddings: np.ndarray,
    dataset: OpenWorldDataset,
    num_novel_classes: Optional[int] = None,
    seed: int = 0,
    mini_batch: Optional[bool] = None,
    kmeans_batch_size: int = 1024,
    engine: Optional[ClusteringEngine] = None,
) -> InferenceResult:
    """Run the full two-stage inference on precomputed embeddings.

    Parameters
    ----------
    embeddings:
        Node representations of every node in ``dataset.graph``.
    dataset:
        Provides the labeled nodes for alignment and the seen classes.
    num_novel_classes:
        Number of novel classes assumed at inference; defaults to the ground
        truth ``|C_n|`` (the main-table protocol).  Table VI passes an
        estimate instead.
    engine:
        Optional :class:`~repro.clustering.engine.ClusteringEngine`; when
        given, the clustering step runs through its stateless
        :meth:`~repro.clustering.engine.ClusteringEngine.cluster` path under
        the configured strategy (``mini_batch`` then acts as an override of
        the engine's legacy MiniBatch flag, ``None`` meaning "engine
        default", and ``kmeans_batch_size`` is ignored in favor of the
        engine's configured batch size).  Without an engine the historical
        direct K-Means call is used and ``mini_batch=None`` means ``False``.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.shape[0] != dataset.graph.num_nodes:
        raise ValueError("embeddings must cover every node of the graph")

    split = dataset.split
    num_novel = split.num_novel if num_novel_classes is None else int(num_novel_classes)
    if num_novel < 1:
        raise ValueError("need at least one novel class")
    label_space = LabelSpace(seen_classes=split.seen_classes, num_novel=num_novel)
    num_clusters = label_space.num_total

    if engine is not None:
        cluster_result = engine.cluster(
            embeddings, num_clusters, seed=seed, mini_batch=mini_batch,
        )
    else:
        cluster_result = cluster_embeddings(
            embeddings, num_clusters, seed=seed, mini_batch=bool(mini_batch),
            batch_size=kmeans_batch_size,
        )

    train_internal = label_space.to_internal(dataset.labels[split.train_nodes])
    alignment = align_clusters_to_classes(
        cluster_result.labels[split.train_nodes],
        train_internal,
        num_clusters=num_clusters,
        known_classes=np.arange(label_space.num_seen),
        total_num_classes=label_space.num_seen,
    )
    internal_predictions = alignment.apply(cluster_result.labels)
    predictions = label_space.to_original(internal_predictions)
    return InferenceResult(
        predictions=predictions,
        cluster_result=cluster_result,
        alignment=alignment,
        label_space=label_space,
    )


def head_predict(
    embeddings: np.ndarray,
    head_weight: np.ndarray,
    label_space: LabelSpace,
    head_bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Predict with the classification head (large-graph refinement, Table IV).

    The head outputs internal indices which are converted back to original
    class ids / synthetic novel ids via ``label_space``.
    """
    logits = np.asarray(embeddings) @ np.asarray(head_weight)
    if head_bias is not None:
        logits = logits + head_bias
    internal = logits.argmax(axis=1)
    return label_space.to_original(internal)
