"""Shared training-loop infrastructure for OpenIMA and every baseline.

:class:`GraphTrainer` owns the GNN encoder, the classification head, the Adam
optimizer, mini-batch sampling, and the evaluation helpers.  Subclasses only
implement :meth:`compute_loss`, which receives the two augmented views of the
current batch (dropout applied twice to the same input, the SimCSE recipe the
paper follows) and returns a scalar loss tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from ..clustering.engine import ClusteringEngine
from ..datasets.splits import OpenWorldDataset
from ..gnn import ClassificationHead, build_encoder
from ..graphs.sampling import NeighborSampler
from ..inference import InferenceEngine
from ..metrics.accuracy import OpenWorldAccuracy, open_world_accuracy
from ..nn import functional as F
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad
from ..obs import span as _obs_span
from .callbacks import Callback, CallbackList, EvaluationCallback
from ..parallel import ParallelExecutor
from .config import (
    ClusteringConfig,
    InferenceConfig,
    ParallelConfig,
    SerializableConfig,
    TrainerConfig,
)
from .inference import InferenceResult, two_stage_predict
from .labels import LabelSpace


@dataclass
class TrainingHistory:
    """Per-epoch loss values and optional evaluation snapshots."""

    losses: List[float] = field(default_factory=list)
    evaluations: List[dict] = field(default_factory=list)

    def record_loss(self, value: float) -> None:
        self.losses.append(float(value))

    def record_evaluation(self, epoch: int, accuracy: OpenWorldAccuracy) -> None:
        self.evaluations.append({"epoch": epoch, **accuracy.as_dict()})

    @property
    def final_loss(self) -> Optional[float]:
        return self.losses[-1] if self.losses else None


class GraphTrainer:
    """Base class handling the encoder/head/optimizer and the epoch loop."""

    #: Human-readable method name, overridden by subclasses (used in tables).
    method_name = "base"

    def __init__(self, dataset: OpenWorldDataset, config: TrainerConfig,
                 num_novel_classes: Optional[int] = None):
        self.dataset = dataset
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        split = dataset.split
        num_novel = split.num_novel if num_novel_classes is None else int(num_novel_classes)
        self.label_space = LabelSpace(seen_classes=split.seen_classes, num_novel=num_novel)

        self.encoder = build_encoder(
            config.encoder.kind,
            in_features=dataset.graph.num_features,
            hidden_dim=config.encoder.hidden_dim,
            out_dim=config.encoder.out_dim,
            dropout=config.encoder.dropout,
            num_heads=config.encoder.num_heads,
            backend=config.encoder.backend,
            rng=self.rng,
        )
        self.head = ClassificationHead(
            config.encoder.out_dim, self.label_space.num_total, rng=self.rng
        )
        self.optimizer = Adam(
            self.encoder.parameters() + self.head.parameters(),
            lr=config.optimizer.learning_rate,
            weight_decay=config.optimizer.weight_decay,
        )
        # Neighborhood sampling: in "khop"/"sampled" mode each training step
        # runs the encoder on the batch's receptive-field subgraph instead of
        # the full graph (see SamplingConfig and repro.graphs.sampling).
        sampling = config.sampling
        self._sampling_rng: Optional[np.random.Generator] = (
            None if sampling.seed is None else np.random.default_rng(sampling.seed)
        )
        self._sampler: Optional[NeighborSampler] = None
        if sampling.mode != "full":
            depth = getattr(self.encoder, "num_message_passing_layers", None)
            if sampling.mode == "khop" and depth is not None and sampling.num_hops < depth:
                raise ValueError(
                    f"sampling.num_hops={sampling.num_hops} does not cover the "
                    f"encoder's {depth} message-passing layers; khop mode would "
                    "silently train on truncated receptive fields — raise "
                    "num_hops or use mode='sampled' for approximate expansion"
                )
            self._sampler = NeighborSampler(
                dataset.graph,
                num_hops=sampling.num_hops,
                fanouts=sampling.fanouts if sampling.mode == "sampled" else None,
                rng=self._sampling_rng if self._sampling_rng is not None else self.rng,
            )

        #: Multi-core dispatcher shared by the inference and clustering
        #: engines (see repro.parallel); serial by default, so existing
        #: configs behave exactly as before.
        self.parallel_executor = ParallelExecutor(config.parallel)

        #: Deterministic all-node inference: layerwise/full mode selection
        #: plus the parameter-version-keyed embedding cache, so pseudo-label
        #: refresh, evaluation, and prediction against unchanged parameters
        #: share a single encoder forward (see repro.inference).
        self.inference_engine = InferenceEngine(config.inference,
                                                parallel=self.parallel_executor)

        #: Strategy-based clustering (see repro.clustering.engine): the
        #: pseudo-label refresh runs through its stateful path (warm-started
        #: centroids, parameter-version refresh tolerance) and two-stage
        #: prediction through its stateless one.
        self.clustering_engine = self._build_clustering_engine(config.clustering)

        self.history = TrainingHistory()
        #: Number of completed training epochs (advanced by :meth:`fit`,
        #: restored by the checkpoint loader so ``fit`` resumes seamlessly).
        self.epochs_trained = 0
        #: Callbacks set this to end training at the current epoch boundary.
        self.stop_training = False

        # Internal-label lookup for the labeled training nodes.
        self._train_internal = self.label_space.to_internal(
            dataset.labels[split.train_nodes]
        )
        self._train_label_lookup = -np.ones(dataset.graph.num_nodes, dtype=np.int64)
        self._train_label_lookup[split.train_nodes] = self._train_internal

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def compute_loss(self, view1: Tensor, view2: Tensor, batch_nodes: np.ndarray) -> Tensor:
        """Return the scalar training loss for one batch (subclass hook)."""
        raise NotImplementedError

    def on_epoch_start(self, epoch: int) -> None:
        """Called before each epoch (pseudo-label refresh lives here)."""

    # ------------------------------------------------------------------
    # Persistence hooks
    # ------------------------------------------------------------------
    @property
    def full_config(self) -> SerializableConfig:
        """The complete config this trainer was built from.

        Subclasses with a richer config (OpenIMA) override this so
        checkpoints capture every hyper-parameter.
        """
        return self.config

    def extra_state(self) -> Dict[str, np.ndarray]:
        """Method-specific arrays that must survive a checkpoint/resume.

        Subclasses with cross-epoch state (pseudo-label lookups, EMA
        prototypes, ...) override this together with
        :meth:`load_extra_state`.
        """
        return {}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore arrays produced by :meth:`extra_state`."""

    def rng_state(self) -> dict:
        """JSON-serializable state of the trainer's random generators.

        Returns ``{"trainer": <state>}`` plus a ``"sampling"`` entry when a
        dedicated fanout-sampling generator exists (``sampling.seed`` set).
        """
        state = {"trainer": self.rng.bit_generator.state}
        if self._sampling_rng is not None:
            state["sampling"] = self._sampling_rng.bit_generator.state
        return state

    def set_rng_state(self, state: dict) -> None:
        """Restore the generator state captured by :meth:`rng_state`.

        Encoder dropout layers (and, unless ``sampling.seed`` is set, the
        neighborhood sampler) share the trainer generator, so restoring it
        makes a resumed run draw the exact noise an uninterrupted run would
        have drawn.  Accepts both the current ``{"trainer": ...}`` layout
        and the bare numpy state stored by pre-sampling checkpoints.
        """
        if "trainer" in state:
            self.rng.bit_generator.state = state["trainer"]
            sampling_state = state.get("sampling")
            if sampling_state is not None and self._sampling_rng is not None:
                self._sampling_rng.bit_generator.state = sampling_state
        else:
            self.rng.bit_generator.state = state

    def clustering_state(self) -> tuple:
        """Checkpointable clustering-engine state ``(meta, arrays)``.

        ``meta`` is JSON-serializable (RNG state, counters, and the last-fit
        parameter version expressed *relative* to the encoder's current
        version, since absolute version counters restart on load);
        ``arrays`` holds the carried centroids / online counts.
        """
        return self.clustering_engine.state_dict(self.encoder.parameter_version())

    def load_clustering_state(self, meta: dict, arrays: Optional[dict] = None) -> None:
        """Restore the state captured by :meth:`clustering_state`.

        Must be called after the encoder weights are loaded, so the relative
        parameter version anchors to the final counter value.
        """
        self.clustering_engine.load_state_dict(
            meta, arrays, self.encoder.parameter_version())

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def _iterate_batches(self) -> Iterator[np.ndarray]:
        num_nodes = self.dataset.graph.num_nodes
        if num_nodes < 2:
            # A lone node cannot form a dropout-contrastive pair.
            return
        order = self.rng.permutation(num_nodes)
        batch_size = max(2, min(self.config.batch_size, num_nodes))
        start = 0
        while start < num_nodes:
            end = start + batch_size
            if num_nodes - end < 2:
                # Fold a trailing remainder that is too small to stand alone
                # into this batch, so every node gets gradient signal every
                # epoch (a lone leftover node used to be dropped silently).
                end = num_nodes
            yield order[start:end]
            start = end

    def fit(self, callbacks: Optional[Iterable[Callback]] = None,
            max_epochs: Optional[int] = None) -> TrainingHistory:
        """Train up to ``max_epochs`` total epochs and return the history.

        Training continues from ``self.epochs_trained``, so calling ``fit``
        on a trainer restored from a checkpoint resumes exactly where it
        left off.  ``max_epochs`` overrides ``config.max_epochs`` as the
        *total* epoch target (useful for "train 3 epochs, checkpoint, resume
        to 10").  ``callbacks`` receive the epoch hooks documented in
        :mod:`repro.core.callbacks`; a positive ``config.eval_every``
        installs an :class:`EvaluationCallback` automatically.
        """
        target_epochs = self.config.max_epochs if max_epochs is None else int(max_epochs)
        callback_stack = list(callbacks or [])
        if self.config.eval_every:
            # Dispatch order is list order: run the evaluation first so its
            # logs["accuracy"] extension is visible to user callbacks (e.g.
            # EarlyStopping(monitor="accuracy")).
            callback_stack.insert(0, EvaluationCallback(self.config.eval_every))
        dispatcher = CallbackList(callback_stack)

        self.encoder.train()
        self.head.train()
        self.stop_training = False
        dispatcher.on_fit_start(self)
        with _obs_span("train.fit", method=self.method_name):
            for epoch in range(self.epochs_trained, target_epochs):
                with _obs_span("train.epoch", epoch=epoch):
                    self.on_epoch_start(epoch)
                    dispatcher.on_epoch_start(self, epoch)
                    epoch_losses = []
                    for batch_nodes in self._iterate_batches():
                        loss = self._train_step(batch_nodes)
                        epoch_losses.append(loss)
                    mean_loss = (float(np.mean(epoch_losses))
                                 if epoch_losses else float("nan"))
                    if epoch_losses:
                        self.history.record_loss(mean_loss)
                    self.epochs_trained = epoch + 1
                    logs = {"epoch": epoch, "loss": mean_loss}
                    dispatcher.on_epoch_end(self, epoch, logs)
                if self.stop_training:
                    break
        dispatcher.on_fit_end(self, self.history)
        return self.history

    def _train_step(self, batch_nodes: np.ndarray) -> float:
        with _obs_span("train.step", batch=len(batch_nodes)):
            self.optimizer.zero_grad()
            view1, view2 = self._batch_views(batch_nodes)
            loss = self.compute_loss(view1, view2, batch_nodes)
            loss.backward()
            self.optimizer.step()
            return float(loss.data)

    def _batch_views(self, batch_nodes: np.ndarray) -> tuple:
        """Two stochastic encoder views of the batch rows.

        The two dropout-noised forward passes provide the positive pairs
        (SimCSE / paper Section IV-C).  In ``"full"`` sampling mode both
        passes cover the whole graph; in ``"khop"``/``"sampled"`` mode the
        encoder runs on the batch's receptive-field subgraph and the batch
        rows are gathered through the local node-id mapping.  Either way
        ``compute_loss`` receives rows aligned with the *global*
        ``batch_nodes`` ids, so subclass label/pseudo-label lookups are
        sampling-agnostic.
        """
        if self._sampler is None:
            full_view1 = self.encoder(self.dataset.graph)
            full_view2 = self.encoder(self.dataset.graph)
            return (full_view1.gather_rows(batch_nodes),
                    full_view2.gather_rows(batch_nodes))
        batch = self._sampler.sample(batch_nodes)
        sub_view1 = self.encoder(batch.graph)
        sub_view2 = self.encoder(batch.graph)
        return (sub_view1.gather_rows(batch.seed_local),
                sub_view2.gather_rows(batch.seed_local))

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def node_embeddings(self) -> np.ndarray:
        """Deterministic (dropout-free) embeddings of every node.

        Served by the :class:`~repro.inference.InferenceEngine`: the
        configured mode (``full``/``layerwise``/``auto``) decides how the
        pass is computed, and the parameter-version-keyed cache returns the
        same (read-only) array to every caller until the next parameter
        update.  Copy before mutating.
        """
        return self.inference_engine.embeddings(self.encoder, self.dataset.graph)

    def head_logits(self, embeddings: Optional[np.ndarray] = None) -> np.ndarray:
        """Head logits for all nodes, computed without recording gradients."""
        if embeddings is None:
            embeddings = self.node_embeddings()
        with no_grad():
            logits = self.head(Tensor(embeddings))
        return logits.numpy()

    def configure_inference(self, inference: InferenceConfig) -> None:
        """Swap the inference settings (mode, chunk size, caching) in place.

        Rebuilds the engine (dropping any cached embeddings) and records the
        new section in ``self.config`` so subsequent checkpoints persist it.
        """
        self.config = self.config.with_updates(inference=inference)
        self.inference_engine = InferenceEngine(inference,
                                                parallel=self.parallel_executor)

    def _build_clustering_engine(self, clustering: ClusteringConfig) -> ClusteringEngine:
        """One engine-wiring site for construction and reconfiguration.

        The legacy mini_batch_kmeans/kmeans_batch_size flags keep the
        "exact" strategy bit-identical to the pre-engine behavior.
        """
        return ClusteringEngine(
            clustering,
            seed=self.config.seed,
            mini_batch=self.config.mini_batch_kmeans,
            batch_size=self.config.kmeans_batch_size,
            parallel=self.parallel_executor,
        )

    def configure_parallel(self, parallel: ParallelConfig) -> None:
        """Swap the parallel-execution settings (backend, worker count).

        The executor is stateless, so it is replaced in place on both
        engines — no embedding cache is dropped and no clustering
        warm-start state is lost — and the new section is recorded in
        ``self.config`` so subsequent checkpoints persist it.  Results are
        unchanged by construction (the executor's bit-parity contract);
        only the wall-clock changes.
        """
        self.config = self.config.with_updates(parallel=parallel)
        self.parallel_executor = ParallelExecutor(parallel)
        self.inference_engine.parallel = self.parallel_executor
        self.clustering_engine.parallel = self.parallel_executor

    def configure_clustering(self, clustering: ClusteringConfig) -> None:
        """Swap the clustering settings (strategy, sampling, warm start).

        Rebuilds the engine — dropping any warm-start state — and records
        the new section in ``self.config`` so subsequent checkpoints
        persist it.
        """
        self.config = self.config.with_updates(clustering=clustering)
        self.clustering_engine = self._build_clustering_engine(clustering)

    def predict(self, num_novel_classes: Optional[int] = None,
                seed: Optional[int] = None,
                embeddings: Optional[np.ndarray] = None) -> InferenceResult:
        """Two-stage prediction over the current (or provided) embeddings."""
        if embeddings is None:
            embeddings = self.node_embeddings()
        return two_stage_predict(
            embeddings,
            self.dataset,
            num_novel_classes=(
                num_novel_classes if num_novel_classes is not None else self.label_space.num_novel
            ),
            seed=self.config.seed if seed is None else seed,
            engine=self.clustering_engine,
        )

    def accuracy_of(self, result: InferenceResult) -> OpenWorldAccuracy:
        """Open-world accuracy of an inference result on the test nodes.

        The one place the test-node accuracy protocol is written down;
        :meth:`evaluate`, the experiment runner, and the ``predict`` CLI all
        score through it.
        """
        test_nodes = self.dataset.split.test_nodes
        return open_world_accuracy(
            result.predictions[test_nodes],
            self.dataset.labels[test_nodes],
            self.dataset.split.seen_classes,
        )

    def evaluate(self, num_novel_classes: Optional[int] = None,
                 embeddings: Optional[np.ndarray] = None) -> OpenWorldAccuracy:
        """Open-world accuracy on the test nodes.

        ``embeddings`` short-circuits the encoder forward with a precomputed
        pass (the cache already de-duplicates repeat forwards, so this is
        only needed when caching is disabled or embeddings were edited).
        """
        return self.accuracy_of(self.predict(num_novel_classes=num_novel_classes,
                                             embeddings=embeddings))

    def validation_accuracy(self, embeddings: Optional[np.ndarray] = None) -> float:
        """Clustering accuracy on the validation nodes (used by SC&ACC)."""
        result = self.predict(embeddings=embeddings)
        val_nodes = self.dataset.split.val_nodes
        accuracy = open_world_accuracy(
            result.predictions[val_nodes],
            self.dataset.labels[val_nodes],
            self.dataset.split.seen_classes,
        )
        return accuracy.overall

    # ------------------------------------------------------------------
    # Shared building blocks for subclasses
    # ------------------------------------------------------------------
    def batch_manual_labels(self, batch_nodes: np.ndarray) -> np.ndarray:
        """Internal labels of the batch's labeled nodes, -1 elsewhere."""
        return self._train_label_lookup[batch_nodes]

    def normalized_views(self, view1: Tensor, view2: Tensor) -> Tensor:
        """L2-normalize and stack the two views into the 2N contrastive layout."""
        from .losses import concat_views

        normalized1 = F.l2_normalize(view1, axis=-1)
        normalized2 = F.l2_normalize(view2, axis=-1)
        return concat_views(normalized1, normalized2)

    def normalized_logit_views(self, view1: Tensor, view2: Tensor) -> Tensor:
        """L2-normalized head logits for both views (Eq. 8 inputs)."""
        from .losses import concat_views

        logits1 = self.head.normalized_logits(view1)
        logits2 = self.head.normalized_logits(view2)
        return concat_views(logits1, logits2)
