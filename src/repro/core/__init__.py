"""OpenIMA core: configuration, losses, pseudo labels, trainer, inference,
the unified method registry, and the training callback system."""

from .callbacks import (
    Callback,
    CallbackList,
    EarlyStopping,
    EvaluationCallback,
    LossLogger,
    MetricsCallback,
    PeriodicCheckpoint,
)
from .config import (
    ClusteringConfig,
    EncoderConfig,
    InferenceConfig,
    OpenIMAConfig,
    OptimizerConfig,
    SamplingConfig,
    SerializableConfig,
    TrainerConfig,
    fast_config,
)
from .inference import InferenceResult, head_predict, two_stage_predict
from .labels import LabelSpace
from .losses import (
    bpcl_loss,
    confidence_pseudo_label_loss,
    cross_entropy_loss,
    entropy_regularization,
    info_nce_loss,
    margin_cross_entropy_loss,
    pairwise_similarity_loss,
    self_distillation_loss,
    supervised_contrastive_loss,
)
from .openima import OpenIMATrainer, train_openima
from .pseudo_labels import PseudoLabels, generate_pseudo_labels
from .registry import (
    METHODS,
    MethodRegistry,
    MethodSpec,
    available_methods,
    build_method,
    get_method,
    register_method,
)
from .trainer import GraphTrainer, TrainingHistory

__all__ = [
    "ClusteringConfig",
    "EncoderConfig",
    "InferenceConfig",
    "OptimizerConfig",
    "SamplingConfig",
    "TrainerConfig",
    "OpenIMAConfig",
    "SerializableConfig",
    "fast_config",
    "METHODS",
    "MethodRegistry",
    "MethodSpec",
    "register_method",
    "available_methods",
    "get_method",
    "build_method",
    "Callback",
    "CallbackList",
    "LossLogger",
    "EarlyStopping",
    "EvaluationCallback",
    "MetricsCallback",
    "PeriodicCheckpoint",
    "LabelSpace",
    "supervised_contrastive_loss",
    "info_nce_loss",
    "cross_entropy_loss",
    "margin_cross_entropy_loss",
    "pairwise_similarity_loss",
    "entropy_regularization",
    "self_distillation_loss",
    "confidence_pseudo_label_loss",
    "bpcl_loss",
    "PseudoLabels",
    "generate_pseudo_labels",
    "GraphTrainer",
    "TrainingHistory",
    "InferenceResult",
    "two_stage_predict",
    "head_predict",
    "OpenIMATrainer",
    "train_openima",
]
