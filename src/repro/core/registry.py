"""Unified method registry for OpenIMA and every baseline.

All twelve trainers register themselves with :data:`METHODS` through the
:func:`register_method` class decorator, carrying per-method metadata
(display name, paper epoch budget, two-stage vs end-to-end).  The experiment
runner, the CLI, and the :mod:`repro.api` facade all construct trainers
through :meth:`MethodRegistry.build`, so no caller needs to special-case any
method.

Methods whose configuration is richer than a plain
:class:`~repro.core.config.TrainerConfig` (OpenIMA) register a custom
``builder`` that knows how to wrap/extend the config; everyone else gets the
default ``trainer_cls(dataset, config, num_novel_classes=...)`` construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Type

from .config import TrainerConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..datasets.splits import OpenWorldDataset
    from .trainer import GraphTrainer


@dataclass(frozen=True)
class MethodSpec:
    """Registry entry: a trainer class plus the metadata the harness needs.

    Attributes
    ----------
    name:
        Registry key (lower-case, e.g. ``"orca-zm"``).
    trainer_cls:
        The :class:`~repro.core.trainer.GraphTrainer` subclass.
    display_name:
        Human-readable name used in tables and ``list-methods``.
    end_to_end:
        ``True`` for methods that train a classifier end-to-end; the paper
        gives them a larger epoch budget than the two-stage methods.
    default_epochs:
        The paper's epoch budget for this method (Section VII).
    config_cls:
        The configuration dataclass the method is built from.  Used by the
        checkpoint loader to deserialize the saved config.
    builder:
        Optional custom constructor ``builder(dataset, config=...,
        num_novel_classes=..., **overrides)`` for methods whose config is not
        a bare :class:`TrainerConfig`.
    description:
        One-line summary shown by ``list-methods``.
    """

    name: str
    trainer_cls: Type["GraphTrainer"]
    display_name: str
    end_to_end: bool = False
    default_epochs: int = 20
    config_cls: type = TrainerConfig
    builder: Optional[Callable[..., "GraphTrainer"]] = None
    description: str = ""

    @property
    def kind(self) -> str:
        return "end-to-end" if self.end_to_end else "two-stage"


class MethodRegistry:
    """Name -> :class:`MethodSpec` mapping with construction helpers."""

    def __init__(self):
        self._specs: Dict[str, MethodSpec] = {}

    # -- registration ----------------------------------------------------
    def register(self, spec: MethodSpec, overwrite: bool = False) -> MethodSpec:
        # Lookups lowercase the query, so keys must be lower-case too —
        # normalize here so directly-registered mixed-case specs stay
        # reachable and case-colliding duplicates are caught.
        if spec.name != spec.name.lower():
            spec = dataclasses.replace(spec, name=spec.name.lower())
        if spec.name in self._specs and not overwrite:
            raise ValueError(f"method {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    # -- lookup ----------------------------------------------------------
    def _ensure_registered(self) -> None:
        """Import the modules whose decorators populate the registry."""
        from .. import baselines  # noqa: F401
        from . import openima  # noqa: F401

    def names(self) -> List[str]:
        self._ensure_registered()
        return sorted(self._specs)

    def specs(self) -> List[MethodSpec]:
        """Currently registered specs (does not trigger imports)."""
        return [self._specs[name] for name in sorted(self._specs)]

    def __contains__(self, name: str) -> bool:
        self._ensure_registered()
        return name.lower() in self._specs

    def get(self, name: str) -> MethodSpec:
        self._ensure_registered()
        key = name.lower()
        if key not in self._specs:
            raise KeyError(f"unknown method {name!r}; available: {self.names()}")
        return self._specs[key]

    def end_to_end_names(self) -> List[str]:
        self._ensure_registered()
        return [spec.name for spec in self.specs() if spec.end_to_end]

    # -- construction ----------------------------------------------------
    def build(
        self,
        name: str,
        dataset: "OpenWorldDataset",
        config=None,
        num_novel_classes: Optional[int] = None,
        **overrides,
    ) -> "GraphTrainer":
        """Construct any registered method by name.

        ``config`` may be ``None`` (method defaults), a :class:`TrainerConfig`,
        or the method's own config class (e.g. ``OpenIMAConfig``).
        ``overrides`` are method-specific keyword arguments: config fields for
        methods with a custom builder, constructor kwargs otherwise.
        """
        spec = self.get(name)
        if spec.builder is not None:
            trainer = spec.builder(
                dataset, config=config, num_novel_classes=num_novel_classes, **overrides
            )
            method_kwargs: dict = {}
        else:
            trainer_config = config if config is not None else TrainerConfig()
            if not isinstance(trainer_config, TrainerConfig):
                raise TypeError(
                    f"method {spec.name!r} expects a TrainerConfig, "
                    f"got {type(trainer_config).__name__}"
                )
            trainer = spec.trainer_cls(
                dataset, trainer_config, num_novel_classes=num_novel_classes, **overrides
            )
            method_kwargs = dict(overrides)
        # Remember how the trainer was built so checkpoints can rebuild it.
        trainer._method_key = spec.name
        trainer._method_kwargs = method_kwargs
        return trainer


#: The process-wide registry all trainers register into.
METHODS = MethodRegistry()


def register_method(
    name: str,
    *,
    display_name: Optional[str] = None,
    end_to_end: bool = False,
    default_epochs: Optional[int] = None,
    config_cls: type = TrainerConfig,
    builder: Optional[Callable[..., "GraphTrainer"]] = None,
    description: str = "",
    overwrite: bool = False,
) -> Callable[[type], type]:
    """Class decorator registering a trainer under ``name`` in :data:`METHODS`."""

    def decorator(trainer_cls: type) -> type:
        resolved_display = display_name or getattr(trainer_cls, "method_name", name)
        resolved_epochs = default_epochs if default_epochs is not None else (
            100 if end_to_end else 20
        )
        METHODS.register(
            MethodSpec(
                name=name.lower(),
                trainer_cls=trainer_cls,
                display_name=resolved_display,
                end_to_end=end_to_end,
                default_epochs=resolved_epochs,
                config_cls=config_cls,
                builder=builder,
                description=description,
            ),
            overwrite=overwrite,
        )
        trainer_cls.method_key = name.lower()
        return trainer_cls

    return decorator


def available_methods() -> List[str]:
    """Names of every registered method (OpenIMA + all baselines)."""
    return METHODS.names()


def get_method(name: str) -> MethodSpec:
    """Look up a method spec by (case-insensitive) name."""
    return METHODS.get(name)


def build_method(
    name: str,
    dataset: "OpenWorldDataset",
    config=None,
    num_novel_classes: Optional[int] = None,
    **overrides,
) -> "GraphTrainer":
    """Construct any registered method by name (see :meth:`MethodRegistry.build`)."""
    return METHODS.build(
        name, dataset, config=config, num_novel_classes=num_novel_classes, **overrides
    )
