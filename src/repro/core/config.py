"""Configuration objects for OpenIMA and the shared trainer infrastructure.

Every config dataclass serializes to plain JSON-compatible dicts through
:class:`SerializableConfig` (``to_dict`` / ``from_dict`` / ``to_json`` /
``from_json``).  ``from_dict`` validates keys strictly: unknown keys raise a
``ValueError`` naming the valid fields, so a typo in a checkpoint manifest or
a ``--set`` override fails loudly instead of being silently dropped.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, get_type_hints


class SerializableConfig:
    """Mixin adding strict dict/JSON round-tripping to config dataclasses.

    Nested config fields (e.g. ``TrainerConfig.encoder``) are recursed into,
    so ``from_dict`` accepts either a nested dict or an already-constructed
    config object for those fields.
    """

    @classmethod
    def _field_types(cls) -> Dict[str, Any]:
        return get_type_hints(cls)

    def to_dict(self) -> dict:
        """Plain-dict representation (nested configs become nested dicts)."""
        result: dict = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, SerializableConfig):
                value = value.to_dict()
            result[f.name] = value
        return result

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SerializableConfig":
        """Build a config from a (possibly partial) dict.

        Missing keys fall back to the dataclass defaults; unknown keys raise
        ``ValueError``.
        """
        if not isinstance(data, Mapping):
            raise TypeError(f"{cls.__name__}.from_dict expects a mapping, got "
                            f"{type(data).__name__}")
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} keys {unknown}; valid keys: {sorted(valid)}"
            )
        types = cls._field_types()
        kwargs: dict = {}
        for f in dataclasses.fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            field_type = types.get(f.name)
            if (isinstance(field_type, type)
                    and issubclass(field_type, SerializableConfig)
                    and isinstance(value, Mapping)):
                value = field_type.from_dict(value)
            kwargs[f.name] = value
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SerializableConfig":
        return cls.from_dict(json.loads(text))

    def with_updates(self, **kwargs):
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class EncoderConfig(SerializableConfig):
    """GNN encoder hyper-parameters (paper Section VII defaults).

    ``backend`` picks the message-passing implementation: ``"sparse"``
    (default; CSR propagation for GCN, vectorized edge-list attention for
    GAT) or ``"dense"`` (O(N^2) reference used by the parity tests).
    """

    kind: str = "gat"
    hidden_dim: int = 128
    out_dim: int = 64
    num_heads: int = 8
    dropout: float = 0.5
    backend: str = "sparse"


#: Valid ``SamplingConfig.mode`` values.
SAMPLING_MODES = ("full", "khop", "sampled")


@dataclass(frozen=True)
class SamplingConfig(SerializableConfig):
    """Mini-batch neighborhood-sampling settings (``repro.graphs.sampling``).

    Attributes
    ----------
    mode:
        ``"full"`` (default) runs the encoder on the whole graph every batch
        and gathers the batch rows — O(num_batches x full forward) per
        epoch.  ``"khop"`` extracts the exact ``num_hops``-hop receptive
        field of each batch and runs the encoder on that subgraph only; with
        dropout disabled it reproduces full-graph batch losses to 1e-8.
        ``"sampled"`` additionally caps the expansion with per-hop
        ``fanouts`` (GraphSAGE-style), trading exactness for a bounded
        per-step cost on huge or scale-free graphs.
    num_hops:
        Receptive-field depth; must cover the encoder's message-passing
        depth (both in-repo encoders are 2-layer, hence the default).
    fanouts:
        Per-hop neighbor caps for ``mode="sampled"`` (one per hop).  ``None``
        defaults to 10 neighbors per hop; ignored by the other modes.
    seed:
        Optional dedicated seed for the fanout RNG.  ``None`` (default)
        draws from the trainer's generator, whose state checkpoints already
        persist; a dedicated generator's state is checkpointed separately.
    """

    mode: str = "full"
    num_hops: int = 2
    fanouts: Optional[list] = None
    seed: Optional[int] = None

    def __post_init__(self):
        from ..graphs.sampling import validate_fanouts

        if self.mode not in SAMPLING_MODES:
            raise ValueError(
                f"unknown sampling mode {self.mode!r}; expected one of {SAMPLING_MODES}"
            )
        _, fanouts = validate_fanouts(self.num_hops, self.fanouts)
        if fanouts is None and self.mode == "sampled":
            fanouts = [10] * self.num_hops
        object.__setattr__(self, "fanouts", fanouts)


#: Valid ``ClusteringConfig.strategy`` values.
CLUSTERING_STRATEGIES = ("exact", "minibatch", "online")


@dataclass(frozen=True)
class ClusteringConfig(SerializableConfig):
    """Pseudo-label / two-stage clustering settings (``repro.clustering.engine``).

    Attributes
    ----------
    strategy:
        ``"exact"`` (default) runs the full Lloyd K-Means path used so far —
        bit-identical to the pre-engine refresh at the same seed.
        ``"minibatch"`` fits MiniBatch-KMeans on at most ``sample_size``
        sampled embeddings and finishes with one full chunked assignment
        pass.  ``"online"`` streams one pass of Sculley-style centroid
        updates over embedding chunks and carries centroids (and running
        cluster counts) across refreshes, so each refresh only refines the
        previous one.
    sample_size:
        Number of embeddings sampled for the ``minibatch`` fit (and for the
        ``online`` strategy's k-means++ cold start).
    reassign_chunk_size:
        Row-chunk size of the final full assignment pass (and of the online
        streaming updates); bounds peak memory at O(chunk x k), mirroring
        the layer-wise inference chunking.
    warm_start:
        Carry the previous refresh's centroids into the next fit (``exact``
        and ``minibatch``; ``online`` always carries its streaming state).
        Off by default so ``exact`` stays bit-identical to the historical
        refresh.
    refresh_tolerance:
        Short-circuit threshold on the encoder's parameter-version drift
        since the last full fit (``Module.parameter_version()`` units: one
        optimizer step advances the version once per parameter tensor).
        When carried centroids exist and the drift is within the tolerance,
        the refresh only reassigns points to the existing centroids and
        skips the re-fit.  ``0`` (default) disables the short-circuit; a
        positive tolerance requires ``warm_start`` (or the ``online``
        strategy) so it cannot be silently inert.
    seed:
        Optional dedicated seed for the clustering RNG; ``None`` (default)
        uses the trainer's seed, which keeps ``exact`` refreshes identical
        to the pre-engine behavior.
    birth_threshold:
        Cluster-birth trigger for the streaming protocol (``online``
        strategy only).  After each warm refresh the engine samples
        ``birth_sample_size`` rows, computes the per-cluster mean
        silhouette, and splits the worst cluster in two when its score
        falls below this threshold (one birth per refresh) — how the model
        admits a class it has never seen.  ``None`` (default) disables
        birth, keeping the online strategy's historical behavior.
    birth_sample_size:
        Rows sampled for the silhouette birth signal (O(sample^2) cost per
        refresh, so keep it modest).
    birth_min_size:
        Minimum member count before a cluster is eligible for splitting;
        keeps noise-dominated tiny clusters from fissioning.
    max_clusters:
        Hard cap on the cluster count after births; ``None`` means
        unbounded.
    """

    strategy: str = "exact"
    sample_size: int = 8192
    reassign_chunk_size: int = 16384
    warm_start: bool = False
    refresh_tolerance: int = 0
    seed: Optional[int] = None
    birth_threshold: Optional[float] = None
    birth_sample_size: int = 1024
    birth_min_size: int = 16
    max_clusters: Optional[int] = None

    def __post_init__(self):
        if self.strategy not in CLUSTERING_STRATEGIES:
            raise ValueError(
                f"unknown clustering strategy {self.strategy!r}; "
                f"expected one of {CLUSTERING_STRATEGIES}"
            )
        if int(self.sample_size) < 1:
            raise ValueError(
                f"clustering sample_size must be >= 1, got {self.sample_size}")
        if int(self.reassign_chunk_size) < 1:
            raise ValueError(
                f"clustering reassign_chunk_size must be >= 1, "
                f"got {self.reassign_chunk_size}")
        if int(self.refresh_tolerance) < 0:
            raise ValueError(
                f"clustering refresh_tolerance must be >= 0, "
                f"got {self.refresh_tolerance}")
        if (int(self.refresh_tolerance) > 0 and not self.warm_start
                and self.strategy != "online"):
            raise ValueError(
                "clustering refresh_tolerance requires carried centroids: "
                "set warm_start=true (or use the online strategy, which "
                "always carries its streaming state), or reset "
                "refresh_tolerance=0 — without carried centroids the "
                "tolerance would be silently ignored"
            )
        if self.birth_threshold is not None:
            if self.strategy != "online":
                raise ValueError(
                    "clustering birth_threshold extends the online strategy's "
                    f"warm refresh; it is not supported with strategy="
                    f"{self.strategy!r}"
                )
            if not -1.0 <= float(self.birth_threshold) <= 1.0:
                raise ValueError(
                    f"clustering birth_threshold must be a silhouette value in "
                    f"[-1, 1], got {self.birth_threshold}")
        if int(self.birth_sample_size) < 2:
            raise ValueError(
                f"clustering birth_sample_size must be >= 2, "
                f"got {self.birth_sample_size}")
        if int(self.birth_min_size) < 2:
            raise ValueError(
                f"clustering birth_min_size must be >= 2, "
                f"got {self.birth_min_size}")
        if self.max_clusters is not None and int(self.max_clusters) < 1:
            raise ValueError(
                f"clustering max_clusters must be >= 1, got {self.max_clusters}")


#: Valid ``InferenceConfig.mode`` values.
INFERENCE_MODES = ("auto", "full", "layerwise")


@dataclass(frozen=True)
class InferenceConfig(SerializableConfig):
    """Deterministic all-node inference settings (``repro.inference``).

    Attributes
    ----------
    mode:
        ``"full"`` runs the encoder's monolithic ``embed`` forward;
        ``"layerwise"`` computes embeddings layer by layer in node chunks
        (same result to 1e-8, bounded peak memory); ``"auto"`` (default)
        picks layerwise once the graph has at least ``auto_threshold``
        nodes.
    chunk_size:
        Number of node rows computed per chunk in layerwise mode.
    cache:
        Reuse one embedding pass across pseudo-label refresh, evaluation,
        validation accuracy, and prediction while the encoder parameters are
        unchanged (keyed by the parameter version counter, so stale reuse is
        impossible).
    auto_threshold:
        Node count at which ``mode="auto"`` switches to layerwise.
    partial_refresh:
        Allow ``InferenceEngine.refresh_after_delta`` to serve a graph delta
        by recomputing only the affected receptive field and patching the
        cached array (requires ``cache``); disabling it forces every delta
        to a full recompute.
    partial_threshold:
        Affected-set fraction above which a delta falls back to a full
        recompute — once most of the graph is affected, one monolithic pass
        beats subgraph extraction plus patching.
    """

    mode: str = "auto"
    chunk_size: int = 4096
    cache: bool = True
    auto_threshold: int = 32768
    partial_refresh: bool = True
    partial_threshold: float = 0.5

    def __post_init__(self):
        if self.mode not in INFERENCE_MODES:
            raise ValueError(
                f"unknown inference mode {self.mode!r}; expected one of {INFERENCE_MODES}"
            )
        if int(self.chunk_size) < 1:
            raise ValueError(f"inference chunk_size must be >= 1, got {self.chunk_size}")
        if int(self.auto_threshold) < 0:
            raise ValueError(
                f"inference auto_threshold must be >= 0, got {self.auto_threshold}"
            )
        if not 0.0 < float(self.partial_threshold) <= 1.0:
            raise ValueError(
                f"inference partial_threshold must be in (0, 1], "
                f"got {self.partial_threshold}")


@dataclass(frozen=True)
class OptimizerConfig(SerializableConfig):
    """Adam optimizer settings (paper: Adam, weight decay 1e-4)."""

    learning_rate: float = 1e-3
    weight_decay: float = 1e-4


#: Valid ``ParallelConfig.backend`` values.
PARALLEL_BACKENDS = ("serial", "threads", "processes")


@dataclass(frozen=True)
class ParallelConfig(SerializableConfig):
    """Multi-core execution settings (``repro.parallel``).

    The executor maps a module-level worker over independent items —
    clustering-assignment row ranges, layerwise-inference node chunks, the
    experiment grid's (method, dataset, seed) cells — with **ordered
    reduction**: results are reassembled in item order, so every parallel
    result is bit-identical to the serial path regardless of worker
    scheduling.  Per-item RNG streams are spawned via
    ``np.random.SeedSequence.spawn`` from a single root, one child per
    *item* (not per dispatched chunk), which makes results independent of
    ``backend``, ``n_jobs``, and ``chunk_size`` alike.

    Attributes
    ----------
    backend:
        ``"serial"`` (default) runs in the calling thread — zero overhead,
        the historical behavior.  ``"threads"`` uses a thread pool (BLAS
        matmuls release the GIL, so the dense assignment/inference kernels
        scale).  ``"processes"`` uses a process pool; on platforms with
        ``fork`` the shared payload is inherited copy-on-write, so large
        arrays are never pickled.
    n_jobs:
        Worker count.  ``0`` means "all available cores"
        (``os.sched_getaffinity`` when present, else ``os.cpu_count``);
        ``1`` degenerates to the serial path for any backend.
    chunk_size:
        Items grouped per dispatched task.  ``0`` (default) splits the item
        list evenly across ``n_jobs`` workers.
    """

    backend: str = "serial"
    n_jobs: int = 1
    chunk_size: int = 0

    def __post_init__(self):
        if self.backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"unknown parallel backend {self.backend!r}; "
                f"expected one of {PARALLEL_BACKENDS}"
            )
        if int(self.n_jobs) < 0:
            raise ValueError(
                f"parallel n_jobs must be >= 0 (0 = all cores), got {self.n_jobs}")
        if int(self.chunk_size) < 0:
            raise ValueError(
                f"parallel chunk_size must be >= 0 (0 = auto), got {self.chunk_size}")


@dataclass(frozen=True)
class TrainerConfig(SerializableConfig):
    """Shared training-loop settings for all methods.

    The defaults follow the paper's Section VII; benchmarks shrink
    ``max_epochs`` and ``batch_size`` to keep wall-clock time reasonable on
    the synthetic profiles.
    """

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    max_epochs: int = 20
    batch_size: int = 2048
    temperature: float = 0.7
    seed: int = 0
    mini_batch_kmeans: bool = False
    kmeans_batch_size: int = 1024
    eval_every: int = 0  # 0 disables intermediate evaluation


@dataclass(frozen=True)
class OpenIMAConfig(SerializableConfig):
    """OpenIMA-specific hyper-parameters (Section IV-C and VII).

    Attributes
    ----------
    eta:
        Scaling factor on the cross-entropy term (Eq. 6).
    rho:
        Pseudo-label selection rate in percent (top-rho% most confident
        cluster assignments keep their pseudo label).
    pseudo_label_refresh:
        Recompute pseudo labels every this many epochs.
    pseudo_label_warmup:
        Number of initial epochs trained without pseudo labels, so that the
        first clustering runs on meaningful (not randomly initialized)
        embeddings.
    use_embedding_bpcl / use_logit_bpcl / use_cross_entropy:
        Toggles for the ablation study (Table V).
    use_pseudo_labels:
        Disabling this reproduces the "Ours w/o PL" ablation row.
    large_scale:
        Enables the large-graph refinements (predict with the classification
        head and add the pairwise loss) used for ogbn-Arxiv / ogbn-Products.
    num_novel_classes:
        If None, the ground-truth number of novel classes is used (the main
        tables); otherwise this overrides it (Table VI setting).
    """

    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    eta: float = 1.0
    rho: float = 75.0
    pseudo_label_refresh: int = 1
    pseudo_label_warmup: int = 1
    use_embedding_bpcl: bool = True
    use_logit_bpcl: bool = True
    use_cross_entropy: bool = True
    use_pseudo_labels: bool = True
    large_scale: bool = False
    pairwise_loss_weight: float = 1.0
    num_novel_classes: Optional[int] = None


def fast_config(max_epochs: int = 8, seed: int = 0, encoder_kind: str = "gcn",
                batch_size: int = 512, backend: str = "sparse",
                eval_every: int = 0,
                sampling: Optional[SamplingConfig] = None,
                clustering: Optional[ClusteringConfig] = None,
                parallel: Optional[ParallelConfig] = None) -> TrainerConfig:
    """A small configuration used by tests, the CLI, and the benchmark harness."""
    return TrainerConfig(
        encoder=EncoderConfig(kind=encoder_kind, hidden_dim=32, out_dim=16, num_heads=2,
                              dropout=0.3, backend=backend),
        optimizer=OptimizerConfig(learning_rate=5e-3, weight_decay=1e-4),
        sampling=sampling if sampling is not None else SamplingConfig(),
        clustering=clustering if clustering is not None else ClusteringConfig(),
        parallel=parallel if parallel is not None else ParallelConfig(),
        max_epochs=max_epochs,
        batch_size=batch_size,
        seed=seed,
        eval_every=eval_every,
    )
