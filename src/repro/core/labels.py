"""Internal label space used during training.

The head produced by every method outputs ``|C_l| + |C_n|`` logits.  Seen
classes keep stable indices ``0..|C_l|-1`` (sorted by original class id) and
the remaining indices are reserved for novel clusters, whose ids are
*unordered* — they are only ever consumed by the contrastive losses, never by
cross-entropy.  :class:`LabelSpace` converts between the dataset's original
class ids and this internal index space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LabelSpace:
    """Mapping between original class ids and internal training indices."""

    seen_classes: np.ndarray
    num_novel: int

    def __post_init__(self):
        self.seen_classes = np.sort(np.asarray(self.seen_classes, dtype=np.int64))
        self._to_internal = {int(cls): idx for idx, cls in enumerate(self.seen_classes)}

    @property
    def num_seen(self) -> int:
        return int(self.seen_classes.shape[0])

    @property
    def num_total(self) -> int:
        """Total number of head outputs (seen + novel)."""
        return self.num_seen + int(self.num_novel)

    def to_internal(self, original_labels: np.ndarray) -> np.ndarray:
        """Map original seen-class ids to internal indices (0..num_seen-1)."""
        original_labels = np.asarray(original_labels, dtype=np.int64)
        missing = set(np.unique(original_labels)) - set(self._to_internal)
        if missing:
            raise KeyError(f"labels {sorted(missing)} are not seen classes")
        return np.array([self._to_internal[int(c)] for c in original_labels], dtype=np.int64)

    def to_original(self, internal_labels: np.ndarray, novel_offset: int | None = None) -> np.ndarray:
        """Map internal indices back to original ids.

        Seen indices map to their original class id; novel indices map to
        synthetic ids starting at ``novel_offset`` (default: one past the
        largest seen class id) so that every prediction id is distinct from
        every seen class id.
        """
        internal_labels = np.asarray(internal_labels, dtype=np.int64)
        offset = int(self.seen_classes.max()) + 1 if novel_offset is None else novel_offset
        out = np.empty_like(internal_labels)
        seen_mask = internal_labels < self.num_seen
        out[seen_mask] = self.seen_classes[internal_labels[seen_mask]]
        out[~seen_mask] = internal_labels[~seen_mask] - self.num_seen + offset
        return out

    def is_seen_internal(self, internal_labels: np.ndarray) -> np.ndarray:
        """Boolean mask of internal indices that correspond to seen classes."""
        return np.asarray(internal_labels, dtype=np.int64) < self.num_seen
