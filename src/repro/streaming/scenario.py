"""Streaming open-world scenarios: replay a dataset as timestep events.

:func:`make_stream_scenario` splits an :class:`~repro.datasets.splits.OpenWorldDataset`
into a **base graph** the model trains on and a sequence of
:class:`StreamEvent` arrival batches that replay the remaining nodes (and
their induced edges) over ``num_steps`` timesteps:

* every labeled train/validation node stays in the base graph (the stream
  never removes supervision the base model was fitted on),
* one or more novel classes are **withheld entirely** from the base graph and
  begin arriving at ``entry_step`` — the open-world event the streaming
  protocol exists to measure: can the model grow a new cluster for a class it
  has never seen (cluster birth, detection delay)?
* an edge enters the stream at the first step both endpoints exist, so the
  graph grows exactly as the full dataset's topology dictates,
* ground-truth labels ride along on every delta (the graph stores them), but
  the protocol only *reveals* a configurable fraction of seen-class arrivals
  to the learner — revealed labels extend the cluster-alignment set, withheld
  ones are purely for prequential scoring.

All node ids in events are **stream ids**: base nodes occupy ``[0, n_base)``
(original order preserved) and arrivals take consecutive ids in arrival
order, matching how :meth:`Graph.apply_delta` appends rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..datasets.splits import OpenWorldDataset, OpenWorldSplit
from ..graphs.delta import GraphDelta


@dataclass(frozen=True)
class StreamEvent:
    """One timestep of arrivals.

    Attributes
    ----------
    step:
        Timestep index (0-based).
    delta:
        The graph mutation: arriving feature rows, their ground-truth labels,
        and every edge whose second endpoint just arrived (both directions).
    node_ids:
        Stream ids the arriving nodes will take (``old_num_nodes`` onward,
        in delta row order).
    labels:
        Ground-truth labels of the arriving nodes (prequential scoring).
    revealed:
        Boolean mask over the arrivals: ``True`` where the label is revealed
        to the learner after scoring (test-then-learn).
    """

    step: int
    delta: GraphDelta
    node_ids: np.ndarray
    labels: np.ndarray
    revealed: np.ndarray

    @property
    def num_arrivals(self) -> int:
        return int(self.node_ids.shape[0])


@dataclass
class StreamScenario:
    """A base dataset plus the event sequence that replays the remainder."""

    base: OpenWorldDataset
    events: List[StreamEvent]
    withheld_classes: np.ndarray
    name: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def num_steps(self) -> int:
        return len(self.events)

    @property
    def total_nodes(self) -> int:
        return self.base.graph.num_nodes + sum(e.num_arrivals for e in self.events)

    def first_withheld_step(self) -> Optional[int]:
        """First step at which a withheld-class node arrives, or ``None``."""
        withheld = set(int(c) for c in self.withheld_classes)
        for event in self.events:
            if any(int(label) in withheld for label in event.labels):
                return event.step
        return None

    def describe(self) -> dict:
        return {
            "name": self.name,
            "base_nodes": int(self.base.graph.num_nodes),
            "total_nodes": int(self.total_nodes),
            "num_steps": self.num_steps,
            "withheld_classes": [int(c) for c in self.withheld_classes],
            "first_withheld_step": self.first_withheld_step(),
            "arrivals_per_step": [e.num_arrivals for e in self.events],
        }


def make_stream_scenario(
    dataset: OpenWorldDataset,
    num_steps: int = 8,
    base_fraction: float = 0.6,
    withheld_classes: Optional[Sequence[int]] = None,
    entry_step: Optional[int] = None,
    reveal_fraction: float = 0.0,
    seed: int = 0,
) -> StreamScenario:
    """Turn a static open-world dataset into a streaming scenario.

    Parameters
    ----------
    dataset:
        The full dataset to replay.  Its graph must store both directions of
        every edge (the repository convention).
    num_steps:
        Number of arrival batches.
    base_fraction:
        Fraction of the *streamable* non-withheld nodes that stay in the
        base graph (labeled train/val nodes always stay regardless).
    withheld_classes:
        Class ids excluded from the base graph entirely.  Must be a strict
        subset of the split's novel classes (the base model still needs at
        least one in-distribution novel class to train its head against).
        Default: the last novel class.
    entry_step:
        First step at which withheld-class nodes may arrive (default:
        ``num_steps // 3``), giving the stream a clear before/after for
        detection-delay measurement.
    reveal_fraction:
        Fraction of seen-class arrivals whose label is revealed to the
        learner after prequential scoring.  Novel/withheld arrivals are
        never revealed (their classes have no supervision by definition).
    seed:
        Controls base sampling, arrival order, and label revelation.
    """
    graph = dataset.graph
    split = dataset.split
    if graph.labels is None:
        raise ValueError("streaming scenarios need a labeled graph")
    num_steps = int(num_steps)
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if not 0.0 < base_fraction < 1.0:
        raise ValueError("base_fraction must be in (0, 1)")
    if not 0.0 <= reveal_fraction <= 1.0:
        raise ValueError("reveal_fraction must be in [0, 1]")
    entry_step = num_steps // 3 if entry_step is None else int(entry_step)
    if not 0 <= entry_step < num_steps:
        raise ValueError(f"entry_step must be in [0, {num_steps})")

    if withheld_classes is None:
        withheld = split.novel_classes[-1:]
    else:
        withheld = np.unique(np.asarray(withheld_classes, dtype=np.int64))
    if not np.isin(withheld, split.novel_classes).all():
        raise ValueError(
            f"withheld classes {withheld.tolist()} must all be novel classes "
            f"{split.novel_classes.tolist()}")
    remaining_novel = np.setdiff1d(split.novel_classes, withheld)
    if remaining_novel.size == 0:
        raise ValueError(
            "at least one novel class must remain in the base graph; "
            "withholding every novel class leaves the base model nothing "
            "to train its novel head against")

    rng = np.random.default_rng(seed)
    labels = graph.labels
    withheld_mask = np.isin(labels, withheld)
    pinned = np.zeros(graph.num_nodes, dtype=bool)
    pinned[split.train_nodes] = True
    pinned[split.val_nodes] = True
    if (pinned & withheld_mask).any():
        raise ValueError("labeled train/val nodes cannot be withheld-class")

    # Base membership: pinned nodes + a sampled fraction of the remaining
    # non-withheld nodes; everything else (including every withheld-class
    # node) streams in.
    streamable = np.where(~pinned & ~withheld_mask)[0]
    num_base_extra = int(round(base_fraction * streamable.shape[0]))
    base_extra = rng.choice(streamable, size=num_base_extra, replace=False)
    in_base = pinned.copy()
    in_base[base_extra] = True

    base_nodes = np.where(in_base)[0]
    regular_arrivals = np.setdiff1d(streamable, base_extra)
    withheld_arrivals = np.where(withheld_mask)[0]

    # Assign every arrival to a step: regular arrivals spread over all
    # steps, withheld arrivals only from entry_step onward.
    arrival_step = -np.ones(graph.num_nodes, dtype=np.int64)
    regular_order = rng.permutation(regular_arrivals)
    for step, chunk in enumerate(np.array_split(regular_order, num_steps)):
        arrival_step[chunk] = step
    withheld_order = rng.permutation(withheld_arrivals)
    withheld_steps = max(1, num_steps - entry_step)
    for offset, chunk in enumerate(np.array_split(withheld_order, withheld_steps)):
        arrival_step[chunk] = min(entry_step + offset, num_steps - 1)

    # Stream ids: base nodes keep their relative order in [0, n_base);
    # arrivals are numbered consecutively in (step, shuffled-within-step)
    # order — exactly the order the deltas will append them.
    stream_id = -np.ones(graph.num_nodes, dtype=np.int64)
    stream_id[base_nodes] = np.arange(base_nodes.shape[0])
    per_step_nodes: List[np.ndarray] = []
    next_id = base_nodes.shape[0]
    for step in range(num_steps):
        nodes = np.where(arrival_step == step)[0]
        nodes = rng.permutation(nodes)
        stream_id[nodes] = np.arange(next_id, next_id + nodes.shape[0])
        next_id += nodes.shape[0]
        per_step_nodes.append(nodes)

    # An edge activates at the first step both endpoints exist (-1 = base).
    src, dst = graph.edge_index
    edge_step = np.maximum(arrival_step[src], arrival_step[dst])

    base_graph = graph.subgraph(base_nodes)
    base_graph.name = f"{graph.name}-stream-base"
    base_split = OpenWorldSplit(
        seen_classes=split.seen_classes,
        novel_classes=remaining_novel,
        train_nodes=stream_id[split.train_nodes],
        val_nodes=stream_id[split.val_nodes],
        test_nodes=stream_id[np.intersect1d(split.test_nodes, base_nodes)],
        seed=split.seed,
    )
    base = OpenWorldDataset(
        graph=base_graph,
        split=base_split,
        name=f"{dataset.name}-stream-base",
        metadata=dict(dataset.metadata),
    )

    events: List[StreamEvent] = []
    seen_set = set(int(c) for c in split.seen_classes)
    for step in range(num_steps):
        nodes = per_step_nodes[step]
        mask = edge_step == step
        delta_edges = np.vstack([stream_id[src[mask]], stream_id[dst[mask]]])
        node_labels = labels[nodes]
        revealed = np.zeros(nodes.shape[0], dtype=bool)
        if reveal_fraction > 0.0 and nodes.size:
            seen_arrival = np.isin(node_labels, split.seen_classes)
            revealed = seen_arrival & (rng.random(nodes.shape[0]) < reveal_fraction)
        delta = GraphDelta(
            add_features=graph.features[nodes],
            add_edges=delta_edges,
            add_labels=node_labels,
        )
        events.append(StreamEvent(
            step=step,
            delta=delta,
            node_ids=stream_id[nodes],
            labels=node_labels,
            revealed=revealed,
        ))

    withheld_total = int(withheld_mask.sum())
    return StreamScenario(
        base=base,
        events=events,
        withheld_classes=withheld,
        name=f"{dataset.name}-stream",
        metadata={
            "seed": int(seed),
            "entry_step": int(entry_step),
            "base_fraction": float(base_fraction),
            "reveal_fraction": float(reveal_fraction),
            "num_withheld_nodes": withheld_total,
            "seen_classes": sorted(seen_set),
        },
    )
