"""Dynamic graphs and the streaming open-world protocol.

The subsystem in four pieces:

* :class:`~repro.graphs.delta.GraphDelta` (re-exported) — a batch of arriving
  nodes/edges/labels;
* :class:`DynamicGraph` — applies deltas to a live graph while maintaining
  the CSR/degree state incrementally and reporting each delta's k-hop
  affected set (:class:`DeltaReport`);
* :func:`make_stream_scenario` / :class:`StreamScenario` — replay a static
  open-world dataset as timestep arrival events, with one or more novel
  classes withheld until mid-stream;
* :class:`StreamRunner` — prequential test-then-learn replay producing
  :class:`StreamResult` (accuracy-so-far, cluster births, detection delay,
  per-step refresh cost).
"""

from ..graphs.delta import GraphDelta
from .dynamic import DeltaReport, DynamicGraph, check_symmetric_edges
from .metrics import PrequentialAccuracy, detection_delay
from .runner import StepRecord, StreamResult, StreamRunner
from .scenario import StreamEvent, StreamScenario, make_stream_scenario

__all__ = [
    "GraphDelta",
    "DynamicGraph",
    "DeltaReport",
    "check_symmetric_edges",
    "StreamEvent",
    "StreamScenario",
    "make_stream_scenario",
    "StreamRunner",
    "StreamResult",
    "StepRecord",
    "PrequentialAccuracy",
    "detection_delay",
]
