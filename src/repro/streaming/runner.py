"""Prequential stream replay: test-then-learn over a :class:`StreamScenario`.

:class:`StreamRunner` drives a *fitted* model through a scenario's event
sequence.  Each step follows the prequential (test-then-learn) protocol:

1. **Ingest** — the event's delta is applied through a
   :class:`~repro.streaming.dynamic.DynamicGraph`, which reports the k-hop
   affected set, and the inference engine patches only that receptive field
   (:meth:`~repro.inference.engine.InferenceEngine.refresh_after_delta`).
2. **Test** — the arrivals are assigned to the *current* centroids and scored
   against their ground-truth labels before the model sees them: seen-class
   arrivals must be predicted as their exact class; arrivals outside the seen
   set (including withheld classes the model has never observed) are correct
   when flagged as any novel id.
3. **Learn** — the clustering engine refreshes on the grown embedding matrix
   (online strategies update centroids in a streaming pass; a configured
   ``birth_threshold`` may spawn a new cluster for an emerging class), the
   labeled set grows by the event's revealed labels, and the
   cluster-to-class alignment is recomputed.

The runner never backpropagates: the encoder is frozen, which isolates the
streaming protocol's own machinery (incremental inference, cluster birth,
alignment drift) from confounding parameter drift — and matches the paper's
deployment story of a trained model serving an evolving graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..assignment.alignment import ClusterAlignment, align_clusters_to_classes
from ..clustering.kmeans import _assign_labels
from ..obs import REGISTRY, span
from ..obs.clock import monotonic as _monotonic
from .dynamic import DynamicGraph
from .metrics import PrequentialAccuracy, detection_delay
from .scenario import StreamScenario

_STEPS = REGISTRY.counter(
    "repro_stream_steps_total",
    "Stream events processed by the prequential runner.")
_STEP_SECONDS = REGISTRY.histogram(
    "repro_stream_step_seconds",
    "Wall time of one prequential step, by stage (refresh vs cluster).",
    labelnames=("stage",))
_PREQUENTIAL = REGISTRY.gauge(
    "repro_stream_prequential_accuracy",
    "Running prequential accuracy after the latest step, by arrival kind.",
    labelnames=("kind",))
_CLUSTERS = REGISTRY.gauge(
    "repro_stream_clusters",
    "Clusters carried by the runner after the latest step.")


@dataclass
class StepRecord:
    """Everything observed while processing one stream event."""

    step: int
    num_arrivals: int
    num_new_edges: int
    num_affected: int
    affected_fraction: float
    partial: bool
    refresh_seconds: float
    cluster_seconds: float
    births: tuple
    num_clusters: int
    accuracy: dict

    def as_dict(self) -> dict:
        return {
            "step": self.step,
            "num_arrivals": self.num_arrivals,
            "num_new_edges": self.num_new_edges,
            "num_affected": self.num_affected,
            "affected_fraction": round(self.affected_fraction, 4),
            "partial": self.partial,
            "refresh_seconds": round(self.refresh_seconds, 6),
            "cluster_seconds": round(self.cluster_seconds, 6),
            "births": list(self.births),
            "num_clusters": self.num_clusters,
            "accuracy": self.accuracy,
        }


@dataclass
class StreamResult:
    """Outcome of a full scenario replay."""

    scenario_name: str
    records: List[StepRecord]
    accuracy: PrequentialAccuracy
    first_withheld_step: Optional[int]
    first_birth_step: Optional[int]
    num_clusters_start: int
    num_clusters_end: int
    metadata: dict = field(default_factory=dict)

    @property
    def detection_delay(self) -> Optional[int]:
        return detection_delay(self.first_withheld_step, self.first_birth_step)

    def summary(self) -> dict:
        partial_steps = sum(1 for r in self.records if r.partial)
        return {
            "scenario": self.scenario_name,
            "num_steps": len(self.records),
            "prequential": self.accuracy.as_dict(),
            "first_withheld_step": self.first_withheld_step,
            "first_birth_step": self.first_birth_step,
            "detection_delay": self.detection_delay,
            "num_clusters_start": self.num_clusters_start,
            "num_clusters_end": self.num_clusters_end,
            "partial_refresh_steps": partial_steps,
            "full_refresh_steps": len(self.records) - partial_steps,
            "mean_refresh_seconds": (
                float(np.mean([r.refresh_seconds for r in self.records]))
                if self.records else 0.0
            ),
            "mean_affected_fraction": (
                float(np.mean([r.affected_fraction for r in self.records]))
                if self.records else 0.0
            ),
        }

    def describe(self) -> dict:
        report = self.summary()
        report["steps"] = [r.as_dict() for r in self.records]
        report["metadata"] = dict(self.metadata)
        return report


class StreamRunner:
    """Replay a scenario through a fitted model, step by step.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.api.classifier.OpenWorldClassifier` (or its
        :class:`~repro.core.trainer.GraphTrainer`) whose dataset **is** the
        scenario's base dataset — the runner mutates that graph in place.
    scenario:
        The event sequence to replay.
    """

    def __init__(self, model, scenario: StreamScenario):
        trainer = getattr(model, "trainer_", model)
        if trainer is None:
            raise ValueError("the model must be fitted before streaming")
        if trainer.dataset.graph is not scenario.base.graph:
            raise ValueError(
                "the model was not fitted on this scenario's base graph; "
                "fit on scenario.base so stream ids line up")
        self.trainer = trainer
        self.scenario = scenario
        depth = getattr(trainer.encoder, "num_message_passing_layers", 2)
        self.dynamic = DynamicGraph(trainer.dataset.graph, num_hops=int(depth))
        self.accuracy = PrequentialAccuracy()
        self.records: List[StepRecord] = []
        self._next_event = 0
        self._first_birth_step: Optional[int] = None
        self._seen_classes = np.asarray(
            trainer.dataset.split.seen_classes, dtype=np.int64)
        # Labeled nodes available for alignment: the base train/val nodes,
        # grown by every revealed arrival.  All carry seen-class labels
        # (the scenario never reveals novel arrivals).
        split = trainer.dataset.split
        self._labeled = np.unique(
            np.concatenate([split.train_nodes, split.val_nodes]))
        self._alignment: Optional[ClusterAlignment] = None
        self._centers: Optional[np.ndarray] = None
        self._warm_start()
        self._clusters_start = int(self._centers.shape[0])

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _warm_start(self) -> None:
        """Fit the carried clustering + alignment on the base graph."""
        trainer = self.trainer
        embeddings = trainer.node_embeddings()
        outcome = trainer.clustering_engine.refresh(
            embeddings, trainer.label_space.num_total, allow_birth=True)
        self._publish(outcome.result)

    def _publish(self, result) -> None:
        """Adopt a clustering: keep its centers, realign clusters to classes."""
        self._centers = np.asarray(result.centers, dtype=np.float64)
        graph = self.trainer.dataset.graph
        labeled = self._labeled
        self._alignment = align_clusters_to_classes(
            result.labels[labeled],
            graph.labels[labeled],
            num_clusters=int(result.centers.shape[0]),
            known_classes=self._seen_classes,
        )

    # ------------------------------------------------------------------
    # Stream replay
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Process the next event (ingest -> test -> learn)."""
        if self._next_event >= len(self.scenario.events):
            raise IndexError("the scenario's event stream is exhausted")
        with span("stream.step", step=self._next_event):
            return self._step_inner()

    def _step_inner(self) -> StepRecord:
        event = self.scenario.events[self._next_event]
        self._next_event += 1
        trainer = self.trainer
        engine = trainer.inference_engine
        graph = trainer.dataset.graph

        # Ingest: mutate the graph, patch only the affected receptive field.
        report = self.dynamic.apply(event.delta)
        partial_before = engine.partial_refresh_count
        start = _monotonic()
        embeddings = engine.refresh_after_delta(trainer.encoder, graph, report)
        refresh_seconds = _monotonic() - start
        partial = engine.partial_refresh_count > partial_before

        # Test: score the arrivals against the pre-update clustering.
        seen_mask = np.isin(event.labels, self._seen_classes)
        if event.num_arrivals:
            assignments, _ = _assign_labels(
                embeddings[event.node_ids], self._centers)
            predicted = self._alignment.apply(assignments)
            predicted_seen = np.isin(predicted, self._seen_classes)
            # A seen-class arrival must hit its exact class; any non-seen
            # arrival (novel or withheld) is correct when flagged as novel —
            # synthetic novel ids from the alignment are not comparable to
            # ground-truth novel ids, membership outside the seen set is.
            correct = np.where(seen_mask,
                               predicted == event.labels,
                               ~predicted_seen)
        else:
            correct = np.zeros(0, dtype=bool)
        snapshot = self.accuracy.update(correct, seen_mask, step=event.step)

        # Learn: reveal labels, refresh the clustering, realign.
        if event.revealed.any():
            self._labeled = np.unique(np.concatenate(
                [self._labeled, event.node_ids[event.revealed]]))
        start = _monotonic()
        outcome = trainer.clustering_engine.refresh(
            embeddings, trainer.label_space.num_total, allow_birth=True)
        cluster_seconds = _monotonic() - start
        self._publish(outcome.result)
        if outcome.births and self._first_birth_step is None:
            self._first_birth_step = event.step

        # Publish the step as a time series: counters/histograms accumulate
        # per step, gauges track the latest prequential state.
        _STEPS.inc()
        _STEP_SECONDS.observe(refresh_seconds, stage="refresh")
        _STEP_SECONDS.observe(cluster_seconds, stage="cluster")
        for kind in ("overall", "seen", "novel"):
            value = snapshot.get(kind)
            if value is not None:
                _PREQUENTIAL.set(float(value), kind=kind)
        _CLUSTERS.set(float(outcome.result.centers.shape[0]))

        record = StepRecord(
            step=event.step,
            num_arrivals=event.num_arrivals,
            num_new_edges=report.num_new_edges,
            num_affected=report.num_affected,
            affected_fraction=report.affected_fraction,
            partial=partial,
            refresh_seconds=refresh_seconds,
            cluster_seconds=cluster_seconds,
            births=tuple(outcome.births),
            num_clusters=int(outcome.result.centers.shape[0]),
            accuracy=snapshot,
        )
        self.records.append(record)
        return record

    def run(self) -> StreamResult:
        """Replay every remaining event and summarize."""
        while self._next_event < len(self.scenario.events):
            self.step()
        return self.result()

    def result(self) -> StreamResult:
        """The replay outcome so far."""
        return StreamResult(
            scenario_name=self.scenario.name,
            records=list(self.records),
            accuracy=self.accuracy,
            first_withheld_step=self.scenario.first_withheld_step(),
            first_birth_step=self._first_birth_step,
            num_clusters_start=self._clusters_start,
            num_clusters_end=int(self._centers.shape[0]),
            metadata=dict(self.scenario.metadata),
        )
