"""Prequential (test-then-learn) metrics for the streaming protocol.

Every arrival is scored *before* the model updates on it (Gama et al.'s
prequential protocol): seen-class arrivals must be predicted as their exact
class, arrivals from classes outside the seen set — including classes the
model has never observed — must be flagged as novel.  The tracker keeps
running (accuracy-so-far) counts overall and per subset, which is the
streaming analogue of the paper's overall/seen/novel accuracy split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class PrequentialAccuracy:
    """Running test-then-learn accuracy, split into seen/novel arrivals."""

    seen_correct: int = 0
    seen_total: int = 0
    novel_correct: int = 0
    novel_total: int = 0
    history: List[dict] = field(default_factory=list)

    def update(self, correct: np.ndarray, seen_mask: np.ndarray,
               step: Optional[int] = None) -> dict:
        """Fold one step's per-arrival outcomes into the running counts."""
        correct = np.asarray(correct, dtype=bool)
        seen_mask = np.asarray(seen_mask, dtype=bool)
        if correct.shape != seen_mask.shape:
            raise ValueError("correct and seen_mask must align")
        self.seen_correct += int(correct[seen_mask].sum())
        self.seen_total += int(seen_mask.sum())
        self.novel_correct += int(correct[~seen_mask].sum())
        self.novel_total += int((~seen_mask).sum())
        snapshot = self.as_dict()
        if step is not None:
            snapshot["step"] = int(step)
            self.history.append(snapshot)
        return snapshot

    @property
    def total(self) -> int:
        return self.seen_total + self.novel_total

    @property
    def overall(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.seen_correct + self.novel_correct) / self.total

    @property
    def seen(self) -> float:
        return self.seen_correct / self.seen_total if self.seen_total else 0.0

    @property
    def novel(self) -> float:
        return self.novel_correct / self.novel_total if self.novel_total else 0.0

    def as_dict(self) -> dict:
        return {
            "overall": self.overall,
            "seen": self.seen,
            "novel": self.novel,
            "num_scored": self.total,
        }


def detection_delay(first_novel_step: Optional[int],
                    first_birth_step: Optional[int]) -> Optional[int]:
    """Steps between the first withheld-class arrival and the first cluster
    birth; ``None`` when either event never happened (no arrival to detect,
    or the novelty was never detected)."""
    if first_novel_step is None or first_birth_step is None:
        return None
    return int(first_birth_step) - int(first_novel_step)
