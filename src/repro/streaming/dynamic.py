"""Incremental graph maintenance for streaming deltas.

:class:`DynamicGraph` wraps a live :class:`~repro.graphs.graph.Graph` and
applies :class:`~repro.graphs.delta.GraphDelta` batches while maintaining, in
O(delta + local neighborhood) per step, everything the incremental inference
path needs:

* a **symmetric edge CSR** (the graph's own ``edge_csr`` cache is dropped on
  every mutation; rebuilding it would cost an O(E log E) argsort per delta,
  so the wrapper merges new edges into its own copy instead),
* the **degree vector** behind the normalized propagation
  ``D^{-1/2}(A+I)D^{-1/2}`` (``d_v = 1 + #non-loop out-edges``), kept current
  with one ``bincount`` over the delta sources, and
* the delta's **affected node set**: for an ``L``-layer message-passing
  encoder, the only embeddings that can change are those within ``L`` hops of
  a *seed* (an arriving node or a delta-edge endpoint).  Adding an edge
  ``(u, w)`` changes the degrees of ``u``/``w``, hence the propagation rows of
  ``u``/``w`` (their incident edge weights), which layer 1 spreads to their
  neighbors — all inside the ``L``-hop ball around the seeds.  GAT's
  attention weights change only at the endpoints themselves, so the same
  bound covers both encoders.

Each :meth:`apply` also pre-builds the :class:`~repro.graphs.sampling.SubgraphBatch`
covering the affected nodes' own receptive field (``2L`` hops from the
seeds): recomputing the affected rows needs their ``L``-hop inputs, and the
subgraph's propagation slice is assembled directly from the maintained degree
vector — value ``A[u,w] / sqrt(d_u d_w)`` off-diagonal, ``1/d_v`` on the
diagonal — which equals the row/column slice of the full graph's propagation
matrix without ever rebuilding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..graphs.delta import GraphDelta
from ..graphs.graph import Graph
from ..graphs.sampling import SubgraphBatch, _gather_neighbors


def check_symmetric_edges(edge_index: np.ndarray, what: str = "edge_index") -> None:
    """Raise unless the directed edge multiset equals its own reverse.

    The repository convention for undirected graphs is that both directions
    of every edge are stored; the affected-set expansion and the maintained
    degree vector both rely on it.
    """
    src = np.asarray(edge_index[0], dtype=np.int64)
    dst = np.asarray(edge_index[1], dtype=np.int64)
    forward = np.lexsort((dst, src))
    backward = np.lexsort((src, dst))
    if not (np.array_equal(src[forward], dst[backward])
            and np.array_equal(dst[forward], src[backward])):
        raise ValueError(
            f"{what} is not symmetric: undirected graphs must store both "
            "directions of every edge (see GraphDelta.undirected)")


@dataclass
class DeltaReport:
    """What one applied delta changed, and the machinery to refresh it.

    Attributes
    ----------
    old_num_nodes / new_num_nodes:
        Node counts before/after the delta.
    old_cache_version / new_cache_version:
        The graph's ``cache_version`` before/after (``apply_delta`` bumps it
        exactly once).
    num_new_edges:
        Directed edges added.
    seeds:
        Sorted node ids directly modified: arriving nodes plus delta-edge
        endpoints.
    affected:
        Node ids whose embeddings may differ from the pre-delta graph — the
        ``num_hops``-hop ball around the seeds (includes the seeds).  Rows
        outside this set are bit-identical under any message-passing encoder
        of depth <= ``num_hops``.
    num_hops:
        The encoder depth bound the affected set was computed for.
    batch:
        Pre-extracted receptive field of the affected nodes (affected nodes
        first, boundary context after), ready for a partial encoder pass;
        ``None`` when nothing was affected.
    """

    old_num_nodes: int
    new_num_nodes: int
    old_cache_version: int
    new_cache_version: int
    num_new_edges: int
    seeds: np.ndarray
    affected: np.ndarray
    num_hops: int
    batch: Optional[SubgraphBatch] = field(default=None, repr=False)

    @property
    def num_affected(self) -> int:
        return int(self.affected.shape[0])

    @property
    def affected_fraction(self) -> float:
        """Share of post-delta nodes whose embeddings need recomputation."""
        if self.new_num_nodes == 0:
            return 0.0
        return self.num_affected / self.new_num_nodes

    def describe(self) -> dict:
        return {
            "old_num_nodes": self.old_num_nodes,
            "new_num_nodes": self.new_num_nodes,
            "num_new_edges": self.num_new_edges,
            "num_seeds": int(self.seeds.shape[0]),
            "num_affected": self.num_affected,
            "affected_fraction": self.affected_fraction,
            "num_hops": self.num_hops,
        }


class DynamicGraph:
    """A mutable graph that reports the k-hop impact of every delta.

    Parameters
    ----------
    graph:
        The live graph; mutated in place by :meth:`apply`.  Must store both
        directions of every edge (validated at construction unless
        ``validate=False``).
    num_hops:
        Message-passing depth of the encoders reading this graph (both
        in-repo encoders have two layers).  The affected set is exact for
        any encoder of depth <= ``num_hops``; the pre-built refresh batch
        spans ``2 * num_hops`` hops so the affected rows can be recomputed
        from their own full receptive field.
    """

    def __init__(self, graph: Graph, num_hops: int = 2, validate: bool = True):
        self.graph = graph
        self.num_hops = int(num_hops)
        if self.num_hops < 1:
            raise ValueError("num_hops must be >= 1")
        if validate:
            check_symmetric_edges(graph.edge_index)
        from ..graphs.sampling import build_edge_csr

        self._indptr, self._indices = build_edge_csr(
            graph.edge_index, graph.num_nodes)
        src, dst = graph.edge_index
        self._degrees = (
            np.bincount(src[src != dst], minlength=graph.num_nodes)
            .astype(np.float64) + 1.0
        )
        #: Deltas applied through this wrapper.
        self.deltas_applied = 0
        self.last_report: Optional[DeltaReport] = None

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def apply(self, delta: GraphDelta, validate: bool = True) -> DeltaReport:
        """Apply ``delta`` to the wrapped graph and report its k-hop impact."""
        graph = self.graph
        old_n = graph.num_nodes
        old_version = graph.cache_version
        if validate and delta.num_new_edges:
            check_symmetric_edges(delta.add_edges, what="delta.add_edges")
        graph.apply_delta(delta)
        new_n = graph.num_nodes

        src = delta.add_edges[0]
        dst = delta.add_edges[1]
        self._merge_edges(src, dst, old_n, new_n)
        if new_n > old_n:
            self._degrees = np.concatenate(
                [self._degrees, np.ones(new_n - old_n)])
        non_loop = src != dst
        if non_loop.any():
            self._degrees += np.bincount(src[non_loop], minlength=new_n)

        seeds = delta.touched_nodes(old_n)
        affected, boundary = self._expand(seeds)
        batch = self._extract(affected, boundary) if affected.size else None
        report = DeltaReport(
            old_num_nodes=old_n,
            new_num_nodes=new_n,
            old_cache_version=old_version,
            new_cache_version=graph.cache_version,
            num_new_edges=delta.num_new_edges,
            seeds=seeds,
            affected=affected,
            num_hops=self.num_hops,
            batch=batch,
        )
        self.deltas_applied += 1
        self.last_report = report
        return report

    # ------------------------------------------------------------------
    # Incremental CSR / degree maintenance
    # ------------------------------------------------------------------
    def _merge_edges(self, src: np.ndarray, dst: np.ndarray,
                     old_n: int, new_n: int) -> None:
        """Merge the delta edges into the maintained CSR in O(E) copies.

        Per-source segments keep their existing order and the new edges are
        appended at each segment's end — no global argsort over the full
        edge list.
        """
        old_counts = np.diff(self._indptr)
        if new_n > old_n:
            old_counts = np.concatenate(
                [old_counts, np.zeros(new_n - old_n, dtype=np.int64)])
        add_counts = np.bincount(src, minlength=new_n)
        counts = old_counts + add_counts
        indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)

        num_old = self._indices.shape[0]
        if num_old:
            # New position of old entry i (source v, local rank r) is
            # indptr[v] + r; recover v and r from the old CSR layout.
            old_src = np.repeat(np.arange(old_n), np.diff(self._indptr))
            positions = indptr[old_src] + (np.arange(num_old) - self._indptr[old_src])
            indices[positions] = self._indices
        if src.size:
            order = np.argsort(src, kind="stable")
            src_sorted = src[order]
            # Rank of each new edge within its source group.
            group_starts = np.cumsum(add_counts) - add_counts
            rank = np.arange(src_sorted.shape[0]) - group_starts[src_sorted]
            positions = indptr[src_sorted] + old_counts[src_sorted] + rank
            indices[positions] = dst[order]
        self._indptr, self._indices = indptr, indices

    # ------------------------------------------------------------------
    # Affected-region expansion
    # ------------------------------------------------------------------
    def _expand(self, seeds: np.ndarray) -> tuple:
        """BFS the seeds out to ``2 * num_hops`` hops, split by distance.

        Returns ``(affected, boundary)``: nodes within ``num_hops`` of a
        seed (embedding may change) and the remaining ring out to
        ``2 * num_hops`` (unchanged context the recomputation reads).
        """
        if seeds.size == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        in_field = np.zeros(self.graph.num_nodes, dtype=bool)
        in_field[seeds] = True
        affected_layers = [seeds]
        boundary_layers = []
        frontier = seeds
        for hop in range(1, 2 * self.num_hops + 1):
            neighbors, _ = _gather_neighbors(self._indptr, self._indices, frontier)
            fresh = np.unique(neighbors[~in_field[neighbors]])
            if fresh.size == 0:
                break
            in_field[fresh] = True
            (affected_layers if hop <= self.num_hops else boundary_layers).append(fresh)
            frontier = fresh
        return (np.concatenate(affected_layers),
                np.concatenate(boundary_layers) if boundary_layers
                else np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Receptive-field extraction with degree-derived propagation
    # ------------------------------------------------------------------
    def _extract(self, affected: np.ndarray, boundary: np.ndarray) -> SubgraphBatch:
        """Build the refresh batch without touching the full graph's caches.

        Equivalent to ``extract_subgraph(graph, node_ids, len(affected))``
        but O(local): the induced edges come from the maintained CSR and the
        propagation slice is assembled from the maintained degrees instead
        of slicing a freshly rebuilt full-graph matrix.
        """
        graph = self.graph
        node_ids = np.concatenate([affected, boundary])
        lookup = -np.ones(graph.num_nodes, dtype=np.int64)
        lookup[node_ids] = np.arange(node_ids.shape[0])

        neighbors, counts = _gather_neighbors(self._indptr, self._indices, node_ids)
        src_global = np.repeat(node_ids, counts)
        keep = lookup[neighbors] >= 0
        src_local = lookup[src_global[keep]]
        dst_local = lookup[neighbors[keep]]

        subgraph = Graph(
            features=graph.features[node_ids],
            edge_index=np.vstack([src_local, dst_local]),
            labels=None if graph.labels is None else graph.labels[node_ids],
            name=f"{graph.name}-delta",
        )
        m = node_ids.shape[0]
        inv_sqrt = 1.0 / np.sqrt(self._degrees[node_ids])
        non_loop = src_local != dst_local
        rows = np.concatenate([src_local[non_loop], np.arange(m)])
        cols = np.concatenate([dst_local[non_loop], np.arange(m)])
        data = np.concatenate([
            inv_sqrt[src_local[non_loop]] * inv_sqrt[dst_local[non_loop]],
            1.0 / self._degrees[node_ids],
        ])
        # coo -> csr sums duplicate (multi-)edges, matching normalized_adjacency.
        subgraph._propagation_cache = sp.csr_matrix(
            (data, (rows, cols)), shape=(m, m))
        return SubgraphBatch(
            graph=subgraph,
            node_ids=node_ids,
            seed_local=np.arange(affected.shape[0]),
            _local_lookup=lookup,
        )

    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:  # returns-frozen
        """The maintained ``A+I`` degree vector (read-only view)."""
        view = self._degrees.view()
        view.setflags(write=False)
        return view

    def __repr__(self) -> str:
        return (f"DynamicGraph(nodes={self.graph.num_nodes}, "
                f"edges={self.graph.num_edges}, num_hops={self.num_hops}, "
                f"deltas={self.deltas_applied})")
