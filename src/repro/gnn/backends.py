"""Message-passing backend registry shared by every GNN encoder."""

from __future__ import annotations

#: Valid values for the encoder ``backend`` argument: ``"sparse"`` runs the
#: edge-list / CSR propagation fast path, ``"dense"`` the O(N^2) reference.
BACKENDS = ("sparse", "dense")


def check_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend
