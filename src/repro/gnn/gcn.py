"""Graph Convolutional Network (GCN) encoder.

The paper's experiments use GAT, but the method is encoder-agnostic; GCN is
provided as a lighter alternative used in tests, ablations, and the fast
benchmark profiles.  The propagation matrix ``D^{-1/2}(A+I)D^{-1/2}`` is
precomputed with scipy sparse and treated as a constant; only the layer
weights receive gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.utils import normalized_adjacency
from ..nn.layers import Dropout, Linear, Module
from ..nn.tensor import Tensor


class GCNLayer(Module):
    """One graph convolution: ``relu(\\hat{A} X W)`` (activation applied by caller)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, propagation: np.ndarray) -> Tensor:
        projected = self.linear(x)
        # The propagation matrix is a constant: multiply the numpy data and
        # re-wrap while preserving gradients through a custom closure.
        propagated_data = propagation @ projected.data

        def backward(grad: np.ndarray) -> None:
            projected._accumulate(propagation.T @ grad)

        return Tensor._make(propagated_data, (projected,), backward)


class GCNEncoder(Module):
    """Two-layer GCN encoder with dropout, mirroring :class:`GATEncoder`'s API."""

    def __init__(
        self,
        in_features: int,
        hidden_dim: int = 128,
        out_dim: int = 64,
        dropout: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.layer1 = GCNLayer(in_features, hidden_dim, rng=rng)
        self.layer2 = GCNLayer(hidden_dim, out_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.out_dim = out_dim
        self._cached_propagation: Optional[np.ndarray] = None
        self._cached_graph_id: Optional[int] = None

    def _propagation(self, graph: Graph) -> np.ndarray:
        if self._cached_graph_id != id(graph):
            self._cached_propagation = normalized_adjacency(graph).toarray()
            self._cached_graph_id = id(graph)
        return self._cached_propagation

    def forward(self, graph: Graph) -> Tensor:
        propagation = self._propagation(graph)
        x = self.dropout(Tensor(graph.features))
        hidden = self.layer1(x, propagation).relu()
        hidden = self.dropout(hidden)
        return self.layer2(hidden, propagation)

    def embed(self, graph: Graph) -> np.ndarray:
        """Inference-mode embeddings as a plain numpy array."""
        from ..nn.tensor import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self.forward(graph)
        finally:
            self.train(was_training)
        return output.numpy()
