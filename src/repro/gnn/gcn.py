"""Graph Convolutional Network (GCN) encoder with a sparse fast path.

The paper's experiments use GAT, but the method is encoder-agnostic; GCN is
provided as a lighter alternative used in tests, ablations, and the fast
benchmark profiles.  The propagation matrix ``D^{-1/2}(A+I)D^{-1/2}`` is
precomputed with scipy sparse and treated as a constant; only the layer
weights receive gradients.

Backends
--------
The encoder supports two propagation backends selected by the ``backend``
constructor argument (also reachable through
:class:`repro.core.config.EncoderConfig` and :func:`repro.gnn.build_encoder`):

``"sparse"`` (default)
    The propagation matrix stays a ``scipy.sparse.csr_matrix`` end-to-end and
    is applied with :func:`repro.nn.tensor.sparse_matmul`.  One
    forward+backward pass costs O(nnz * d) FLOPs and O(N * d + nnz) memory,
    where ``nnz`` is the number of edges incl. self loops and ``d`` the layer
    width.  For sparse graphs (nnz ~ N * avg_degree) this is linear in N.

``"dense"``
    The propagation matrix is densified once and applied with ordinary
    matmul: O(N^2 * d) FLOPs and O(N^2) memory.  Kept as a reference
    implementation for parity testing and for tiny graphs where BLAS on the
    dense matrix can win; infeasible beyond a few 10^4 nodes.

Both backends compute the same function; the test suite checks forward and
gradient agreement to 1e-8 (``tests/gnn/test_backend_parity.py``).
"""

from __future__ import annotations

import weakref
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..graphs.graph import Graph
from ..nn.layers import Dropout, Linear, Module
from ..nn.tensor import Tensor, sparse_matmul
from .backends import check_backend

Propagation = Union[np.ndarray, sp.spmatrix]


class GCNLayer(Module):
    """One graph convolution: ``\\hat{A} X W`` (activation applied by caller)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear = Linear(in_features, out_features, rng=rng)

    def forward(self, x: Tensor, propagation: Propagation) -> Tensor:
        projected = self.linear(x)
        if sp.issparse(propagation):
            return sparse_matmul(propagation, projected)
        # Dense reference path: the propagation matrix is a constant, so it
        # participates in the graph as a non-gradient tensor.
        return Tensor(propagation).matmul(projected)


class GCNEncoder(Module):
    """Two-layer GCN encoder with dropout, mirroring :class:`GATEncoder`'s API."""

    def __init__(
        self,
        in_features: int,
        hidden_dim: int = 128,
        out_dim: int = 64,
        dropout: float = 0.5,
        backend: str = "sparse",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.layer1 = GCNLayer(in_features, hidden_dim, rng=rng)
        self.layer2 = GCNLayer(hidden_dim, out_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.out_dim = out_dim
        #: Message-passing depth == receptive-field hops a node's output needs
        #: (checked against ``sampling.num_hops`` by exact khop training).
        self.num_message_passing_layers = 2
        self.backend = check_backend(backend)
        self._cached_propagation: Optional[Propagation] = None
        # Weak reference to the graph whose densified matrix is cached: a
        # weakref cannot pin a large graph alive, and (unlike keying by
        # id()) it can never mistake a fresh graph at a recycled address
        # for the cached one.  The graph's cache_version is compared too, so
        # the documented in-place mutation path (reassign fields +
        # invalidate_caches()) drops this cache as well.
        self._cached_graph: Optional[weakref.ref] = None
        self._cached_graph_version = -1

    def _propagation(self, graph: Graph) -> Propagation:
        if self.backend == "sparse":
            # Already memoized per graph; no encoder-level state needed.
            self._cached_propagation = graph.propagation()
            return self._cached_propagation
        cached = self._cached_graph() if self._cached_graph is not None else None
        if cached is not graph or self._cached_graph_version != graph.cache_version:
            self._cached_propagation = graph.propagation().toarray()
            self._cached_graph = weakref.ref(graph)
            self._cached_graph_version = graph.cache_version
        return self._cached_propagation

    def forward(self, graph: Graph) -> Tensor:
        propagation = self._propagation(graph)
        x = self.dropout(Tensor(graph.features))
        hidden = self.layer1(x, propagation).relu()
        hidden = self.dropout(hidden)
        return self.layer2(hidden, propagation)

    def embed(self, graph: Graph) -> np.ndarray:
        """Inference-mode embeddings as a plain numpy array."""
        from ..nn.tensor import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self.forward(graph)
        finally:
            self.train(was_training)
        return output.numpy()

    # -- layer-wise inference interface ---------------------------------
    def layerwise_plan(self, graph: Graph) -> list:
        """Per-layer numpy inference steps for chunked all-node embedding.

        Consumed by :class:`repro.inference.LayerwiseInference`: each step
        computes one layer's output rows from the full previous-layer
        activations, so at any moment only two layer activations (plus a
        chunk-sized temporary) are alive — no autodiff graph, no all-layer
        materialization.  Dropout is inference-off by construction, matching
        :meth:`embed`.
        """
        propagation = self._propagation(graph)
        return [
            _GCNLayerStep(self.layer1, propagation, relu=True),
            _GCNLayerStep(self.layer2, propagation, relu=False),
        ]


class _GCNLayerStep:
    """One GCN layer as a chunked numpy computation.

    ``compute`` evaluates output rows ``[start, stop)`` as
    ``(P[start:stop] @ h) @ W + (P 1) b`` — propagation first, so the only
    temporary is ``chunk x in_features`` instead of the full ``N x
    out_features`` projection.  Matrix associativity makes this equal to the
    training forward's ``P @ (h W + b)`` up to float rounding (parity is
    tested at 1e-8); note the bias is added *before* propagation there, so
    it must be scaled by the propagation row sums here.
    """

    def __init__(self, layer: GCNLayer, propagation: Propagation, relu: bool):
        self.layer = layer
        self.propagation = propagation
        self.relu = relu
        self.out_dim = layer.linear.out_features
        self._row_sums: Optional[np.ndarray] = None

    def prepare(self, h: np.ndarray, chunk_size: int) -> None:
        if self.layer.linear.bias is not None:
            self._row_sums = np.asarray(self.propagation.sum(axis=1)).reshape(-1, 1)

    def compute(self, h: np.ndarray, start: int, stop: int) -> np.ndarray:
        aggregated = self.propagation[start:stop] @ h
        out = aggregated @ self.layer.linear.weight.data
        bias = self.layer.linear.bias
        if bias is not None:
            out = out + self._row_sums[start:stop] * bias.data
        if self.relu:
            out = out * (out > 0)
        return out

    def finish(self) -> None:
        self._row_sums = None
