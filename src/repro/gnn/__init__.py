"""Graph neural network encoders (GAT, GCN) and classification heads."""

from .gat import GATEncoder, GATLayer
from .gcn import GCNEncoder, GCNLayer
from .heads import ClassificationHead, ProjectionHead

__all__ = [
    "GATLayer",
    "GATEncoder",
    "GCNLayer",
    "GCNEncoder",
    "ClassificationHead",
    "ProjectionHead",
]


def build_encoder(kind: str, in_features: int, hidden_dim: int = 128, out_dim: int = 64,
                  dropout: float = 0.5, num_heads: int = 8, rng=None):
    """Factory for encoders by name (``"gat"`` or ``"gcn"``)."""
    kind = kind.lower()
    if kind == "gat":
        return GATEncoder(in_features, hidden_dim=hidden_dim, out_dim=out_dim,
                          num_heads=num_heads, dropout=dropout, rng=rng)
    if kind == "gcn":
        return GCNEncoder(in_features, hidden_dim=hidden_dim, out_dim=out_dim,
                          dropout=dropout, rng=rng)
    raise ValueError(f"unknown encoder kind {kind!r}; expected 'gat' or 'gcn'")
