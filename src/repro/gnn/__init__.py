"""Graph neural network encoders (GAT, GCN) and classification heads."""

from .backends import BACKENDS, check_backend
from .gat import GATEncoder, GATLayer
from .gcn import GCNEncoder, GCNLayer
from .heads import ClassificationHead, ProjectionHead

__all__ = [
    "BACKENDS",
    "check_backend",
    "GATLayer",
    "GATEncoder",
    "GCNLayer",
    "GCNEncoder",
    "ClassificationHead",
    "ProjectionHead",
]


def build_encoder(kind: str, in_features: int, hidden_dim: int = 128, out_dim: int = 64,
                  dropout: float = 0.5, num_heads: int = 8, backend: str = "sparse",
                  rng=None):
    """Factory for encoders by name (``"gat"`` or ``"gcn"``).

    ``backend`` selects the message-passing implementation: ``"sparse"``
    (default, edge-list / CSR propagation) or ``"dense"`` (O(N^2) reference).
    """
    kind = kind.lower()
    if kind == "gat":
        return GATEncoder(in_features, hidden_dim=hidden_dim, out_dim=out_dim,
                          num_heads=num_heads, dropout=dropout, backend=backend, rng=rng)
    if kind == "gcn":
        return GCNEncoder(in_features, hidden_dim=hidden_dim, out_dim=out_dim,
                          dropout=dropout, backend=backend, rng=rng)
    raise ValueError(f"unknown encoder kind {kind!r}; expected 'gat' or 'gcn'")
