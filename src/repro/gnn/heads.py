"""Classification heads placed on top of the GNN encoders."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor


class ClassificationHead(Module):
    """Linear classification head producing logits over ``num_classes``.

    The head covers both seen and novel classes (``|C_l| + |C_n|`` outputs),
    as required by the paper's logit-level contrastive objective and by the
    end-to-end baselines.  ``normalized_logits`` returns the L2-normalized
    logits ``e_i`` of Eq. 8.
    """

    def __init__(self, in_features: int, num_classes: int, bias: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.linear = Linear(in_features, num_classes, bias=bias, rng=rng)
        self.num_classes = num_classes

    def forward(self, embeddings: Tensor) -> Tensor:
        return self.linear(embeddings)

    def normalized_logits(self, embeddings: Tensor) -> Tensor:
        """L2-normalized logits used by the logit-level BPCL loss (Eq. 8)."""
        return F.l2_normalize(self.forward(embeddings), axis=-1)

    def predict(self, embeddings: np.ndarray) -> np.ndarray:
        """Argmax class prediction from plain numpy embeddings."""
        logits = np.asarray(embeddings) @ self.linear.weight.data
        if self.linear.bias is not None:
            logits = logits + self.linear.bias.data
        return logits.argmax(axis=1)


class ProjectionHead(Module):
    """Two-layer MLP projection head used by some contrastive baselines."""

    def __init__(self, in_features: int, hidden_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.layer1 = Linear(in_features, hidden_dim, rng=rng)
        self.layer2 = Linear(hidden_dim, out_dim, rng=rng)

    def forward(self, embeddings: Tensor) -> Tensor:
        return self.layer2(self.layer1(embeddings).relu())
