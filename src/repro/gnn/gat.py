"""Graph Attention Network (GAT) encoder.

The paper uses a 2-layer GAT with 8 attention heads, hidden dimension 128 and
dropout 0.5 as the feature encoder for every method.  This implementation
follows the original GAT formulation (Velickovic et al., ICLR 2018) on an
edge-index representation:

1. Project node features per head: ``h_i = x_i W_k``.
2. Per edge (i -> j), compute ``e_ij = LeakyReLU(a_src . h_i + a_dst . h_j)``.
3. Normalize with a softmax over the incoming edges of each target node.
4. Aggregate ``z_j = sum_i alpha_ij h_i`` and apply ELU; heads are
   concatenated (hidden layers) or averaged (output layer).

Backends
--------
``backend="sparse"`` (default) evaluates attention on the edge list with
segment gather/scatter primitives, vectorized across all heads in a single
batched projection: O(E * H * d) time and memory, where ``E`` is the number
of edges (incl. self loops), ``H`` the head count, and ``d`` the per-head
width.  ``backend="dense"`` materializes the per-head N x N attention matrix
(masked softmax + dense matmul); it is O(N^2) and exists as the reference
implementation for the parity tests in ``tests/gnn/test_backend_parity.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.utils import add_self_loops
from ..nn import functional as F
from ..nn.init import glorot_uniform
from ..nn.layers import Dropout, Module, Parameter
from ..nn.tensor import Tensor, cat
from .backends import check_backend


def _dense_attention_mask(src: np.ndarray, dst: np.ndarray,
                          has_incoming: np.ndarray, num_nodes: int,
                          start: int, stop: int) -> tuple:
    """Rows ``[start, stop)`` of the dense additive attention mask + row gate.

    ``src``/``dst`` must contain exactly the edges whose destination lies in
    ``[start, stop)``.  The mask is log(multiplicity): 0 on single edges,
    -inf on non-edges, so the row softmax over sources matches the segment
    softmax over incoming edges — a duplicated directed edge carries its
    attention mass once per copy, exactly like the edge list.  Rows of nodes
    with no incoming edges would softmax to 0/0 = NaN; they are left
    unmasked here and zeroed through the returned row gate instead, matching
    the all-zero rows the sparse scatter-add produces.  Shared by the full
    dense forward (called with the whole range) and the layer-wise dense
    step (called per chunk), so the parity-critical arithmetic exists once.
    """
    multiplicity = np.zeros((stop - start, num_nodes))
    np.add.at(multiplicity, (dst - start, src), 1.0)
    with np.errstate(divide="ignore"):
        mask = np.log(multiplicity)
    rows_incoming = has_incoming[start:stop]
    mask[~rows_incoming] = 0.0
    row_gate = rows_incoming.astype(np.float64).reshape(-1, 1)
    return mask, row_gate


class GATLayer(Module):
    """Single multi-head graph attention layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 8,
        concat_heads: bool = True,
        dropout: float = 0.5,
        negative_slope: float = 0.2,
        backend: str = "sparse",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.num_heads = num_heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.backend = check_backend(backend)
        # One projection and one attention vector pair per head, stored as a
        # single parameter tensor for efficiency.
        self.weight = Parameter(
            glorot_uniform((num_heads, in_features, out_features), rng), name="weight"
        )
        self.att_src = Parameter(glorot_uniform((num_heads, out_features), rng), name="att_src")
        self.att_dst = Parameter(glorot_uniform((num_heads, out_features), rng), name="att_dst")
        self.feat_dropout = Dropout(dropout, rng=rng)
        self.att_dropout = Dropout(dropout, rng=rng)

    @property
    def output_dim(self) -> int:
        if self.concat_heads:
            return self.num_heads * self.out_features
        return self.out_features

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        x = self.feat_dropout(x)
        if self.backend == "dense":
            return self._forward_dense(x, edge_index, num_nodes)
        return self._forward_sparse(x, edge_index, num_nodes)

    def _forward_sparse(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        """Edge-list attention, vectorized over every head at once."""
        src, dst = edge_index

        # (N, F) @ (H, F, O) -> (H, N, O) -> (N, H, O): one batched matmul
        # instead of a Python loop over heads.
        projected = x.matmul(self.weight).transpose((1, 0, 2))
        score_src = (projected * self.att_src).sum(axis=-1)  # (N, H)
        score_dst = (projected * self.att_dst).sum(axis=-1)  # (N, H)

        edge_scores = (
            score_src.gather_rows(src) + score_dst.gather_rows(dst)
        ).leaky_relu(self.negative_slope)  # (E, H)
        alpha = F.segment_softmax(edge_scores, dst, num_nodes)
        alpha = self.att_dropout(alpha)

        messages = projected.gather_rows(src) * alpha.reshape(-1, self.num_heads, 1)
        aggregated = messages.scatter_add_rows(dst, num_nodes)  # (N, H, O)

        if self.concat_heads:
            return aggregated.reshape(num_nodes, self.num_heads * self.out_features)
        return aggregated.mean(axis=1)

    def _forward_dense(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        """Reference path: per-head masked N x N attention (O(N^2) memory)."""
        src, dst = edge_index
        has_incoming = np.zeros(num_nodes, dtype=bool)
        has_incoming[dst] = True
        mask, row_gate_np = _dense_attention_mask(src, dst, has_incoming,
                                                  num_nodes, 0, num_nodes)
        row_gate = Tensor(row_gate_np)

        head_outputs = []
        for head in range(self.num_heads):
            weight_h = self.weight[head]
            att_src_h = self.att_src[head].reshape(-1, 1)
            att_dst_h = self.att_dst[head].reshape(-1, 1)

            projected = x.matmul(weight_h)  # (N, O)
            score_src = projected.matmul(att_src_h).reshape(1, -1)  # (1, N)
            score_dst = projected.matmul(att_dst_h).reshape(-1, 1)  # (N, 1)

            # logits[j, i] = LeakyReLU(a_src . h_i + a_dst . h_j)
            logits = (score_src + score_dst).leaky_relu(self.negative_slope)
            alpha = F.softmax(logits + Tensor(mask), axis=-1) * row_gate
            alpha = self.att_dropout(alpha)
            head_outputs.append(alpha.matmul(projected))

        if self.concat_heads:
            return cat(head_outputs, axis=1)
        stacked = head_outputs[0]
        for other in head_outputs[1:]:
            stacked = stacked + other
        return stacked * (1.0 / self.num_heads)


class GATEncoder(Module):
    """Two-layer GAT encoder producing node representations.

    The first layer concatenates its heads and applies ELU; the second layer
    averages its heads, matching the paper's configuration (2 layers, 8
    heads, hidden dim 128, dropout 0.5).  ``backend`` selects the sparse
    edge-list attention (default) or the dense reference implementation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_dim: int = 128,
        out_dim: int = 64,
        num_heads: int = 8,
        dropout: float = 0.5,
        backend: str = "sparse",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.backend = check_backend(backend)
        per_head_hidden = max(1, hidden_dim // num_heads)
        self.layer1 = GATLayer(
            in_features,
            per_head_hidden,
            num_heads=num_heads,
            concat_heads=True,
            dropout=dropout,
            backend=backend,
            rng=rng,
        )
        self.layer2 = GATLayer(
            self.layer1.output_dim,
            out_dim,
            num_heads=num_heads,
            concat_heads=False,
            dropout=dropout,
            backend=backend,
            rng=rng,
        )
        self.out_dim = out_dim
        #: Message-passing depth == receptive-field hops a node's output needs
        #: (checked against ``sampling.num_hops`` by exact khop training).
        self.num_message_passing_layers = 2

    def forward(self, graph: Graph) -> Tensor:
        edge_index = add_self_loops(graph.edge_index, graph.num_nodes)
        x = Tensor(graph.features)
        hidden = self.layer1(x, edge_index, graph.num_nodes).elu()
        return self.layer2(hidden, edge_index, graph.num_nodes)

    def embed(self, graph: Graph) -> np.ndarray:
        """Inference-mode embeddings as a plain numpy array."""
        from ..nn.tensor import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self.forward(graph)
        finally:
            self.train(was_training)
        return output.numpy()

    # -- layer-wise inference interface ---------------------------------
    def layerwise_plan(self, graph: Graph) -> list:
        """Per-layer numpy inference steps for chunked all-node embedding.

        Consumed by :class:`repro.inference.LayerwiseInference`.  Attention
        is evaluated per chunk of *target* nodes: the edge list (with self
        loops) is grouped by destination once, then each chunk softmaxes and
        aggregates only its own incoming edges, so neither the full
        ``E x heads`` score matrix (sparse backend) nor the ``N x N``
        attention matrix (dense backend) is ever materialized.  Dropout is
        inference-off by construction, matching :meth:`embed`.
        """
        edge_index = add_self_loops(graph.edge_index, graph.num_nodes)
        edges = _DstGroupedEdges.build(edge_index, graph.num_nodes)
        step_cls = _GATDenseStep if self.backend == "dense" else _GATSparseStep
        return [
            step_cls(self.layer1, edges, elu=True),
            step_cls(self.layer2, edges, elu=False),
        ]


# ----------------------------------------------------------------------
# Layer-wise numpy inference (no autodiff, chunked over target nodes)
# ----------------------------------------------------------------------
class _DstGroupedEdges:
    """Edge list (incl. self loops) grouped by destination node.

    The stable sort preserves each destination's original edge order, so
    per-segment reductions accumulate in exactly the same order as the full
    forward's global scatter ops.
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray, indptr: np.ndarray,
                 num_nodes: int):
        self.src = src
        self.dst = dst
        self.indptr = indptr
        self.num_nodes = num_nodes
        self.has_incoming = np.zeros(num_nodes, dtype=bool)
        self.has_incoming[dst] = True

    @classmethod
    def build(cls, edge_index: np.ndarray, num_nodes: int) -> "_DstGroupedEdges":
        from ..graphs.sampling import build_edge_csr

        # Group by destination = group the reversed edge list by source;
        # build_edge_csr guarantees the order/multiplicity preservation the
        # per-segment parity relies on.
        indptr, src = build_edge_csr(edge_index[::-1], num_nodes)
        dst = np.repeat(np.arange(num_nodes, dtype=np.int64), np.diff(indptr))
        return cls(src, dst, indptr, num_nodes)


def _leaky_relu_np(x: np.ndarray, negative_slope: float) -> np.ndarray:
    return x * np.where(x > 0, 1.0, negative_slope)


def _elu_np(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(x > 0, x, alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))


def _softmax_rows_np(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def _segment_softmax_np(scores: np.ndarray, segment_ids: np.ndarray,
                        num_segments: int) -> np.ndarray:
    """Numpy twin of :func:`repro.nn.functional.segment_softmax`."""
    seg_max = np.full((num_segments, scores.shape[1]), -np.inf)
    np.maximum.at(seg_max, segment_ids, scores)
    seg_max[~np.isfinite(seg_max)] = 0.0
    exp = np.exp(scores - seg_max[segment_ids])
    denom = np.zeros((num_segments, scores.shape[1]))
    np.add.at(denom, segment_ids, exp)
    return exp / (denom[segment_ids] + 1e-16)


class _GATSparseStep:
    """One sparse-backend GAT layer as a chunked numpy computation.

    ``prepare`` makes one chunked pass over the nodes to collect the
    per-node attention scores (``N x heads`` — the only full-graph buffer);
    ``compute`` then projects just the chunk's unique source nodes and runs
    the segment softmax/aggregation over the chunk's incoming edges.
    """

    def __init__(self, layer: GATLayer, edges: _DstGroupedEdges, elu: bool):
        self.layer = layer
        self.edges = edges
        self.elu = elu
        self.out_dim = layer.output_dim
        self._score_src: Optional[np.ndarray] = None
        self._score_dst: Optional[np.ndarray] = None

    def prepare(self, h: np.ndarray, chunk_size: int) -> None:
        layer = self.layer
        num_nodes = h.shape[0]
        self._score_src = np.empty((num_nodes, layer.num_heads))
        self._score_dst = np.empty((num_nodes, layer.num_heads))
        weight = layer.weight.data
        for start in range(0, num_nodes, chunk_size):
            stop = min(start + chunk_size, num_nodes)
            # (C, F) @ (H, F, O) -> (H, C, O) -> (C, H, O), as in forward.
            projected = np.matmul(h[start:stop], weight).transpose(1, 0, 2)
            self._score_src[start:stop] = (projected * layer.att_src.data).sum(axis=-1)
            self._score_dst[start:stop] = (projected * layer.att_dst.data).sum(axis=-1)

    def compute(self, h: np.ndarray, start: int, stop: int) -> np.ndarray:
        layer = self.layer
        edges = self.edges
        lo, hi = edges.indptr[start], edges.indptr[stop]
        e_src = edges.src[lo:hi]
        e_dst_local = edges.dst[lo:hi] - start
        num_targets = stop - start

        scores = _leaky_relu_np(
            self._score_src[e_src] + self._score_dst[edges.dst[lo:hi]],
            layer.negative_slope,
        )
        alpha = _segment_softmax_np(scores, e_dst_local, num_targets)

        unique_src, inverse = np.unique(e_src, return_inverse=True)
        projected = np.matmul(h[unique_src], layer.weight.data).transpose(1, 0, 2)
        messages = projected[inverse] * alpha[:, :, None]
        aggregated = np.zeros((num_targets, layer.num_heads, layer.out_features))
        np.add.at(aggregated, e_dst_local, messages)

        if layer.concat_heads:
            out = aggregated.reshape(num_targets, layer.num_heads * layer.out_features)
        else:
            out = aggregated.mean(axis=1)
        return _elu_np(out) if self.elu else out

    def finish(self) -> None:
        self._score_src = None
        self._score_dst = None


class _GATDenseStep:
    """One dense-backend GAT layer, chunked to ``chunk x N`` attention rows.

    The O(N^2) reference forward materializes a full ``N x N`` attention
    matrix per head; this step rebuilds only the chunk's rows (multiplicity
    mask included) so peak memory drops to ``chunk_size x N`` while
    reproducing the reference arithmetic row for row.
    """

    def __init__(self, layer: GATLayer, edges: _DstGroupedEdges, elu: bool):
        self.layer = layer
        self.edges = edges
        self.elu = elu
        self.out_dim = layer.output_dim
        self._projected: Optional[list] = None
        self._score_src: Optional[list] = None
        self._score_dst: Optional[list] = None

    def prepare(self, h: np.ndarray, chunk_size: int) -> None:
        layer = self.layer
        self._projected, self._score_src, self._score_dst = [], [], []
        for head in range(layer.num_heads):
            # Per-head 2D matmuls, mirroring the dense reference forward.
            projected = h @ layer.weight.data[head]  # (N, O)
            self._projected.append(projected)
            self._score_src.append(projected @ layer.att_src.data[head])  # (N,)
            self._score_dst.append(projected @ layer.att_dst.data[head])  # (N,)

    def _mask_rows(self, start: int, stop: int) -> tuple:
        edges = self.edges
        lo, hi = edges.indptr[start], edges.indptr[stop]
        return _dense_attention_mask(edges.src[lo:hi], edges.dst[lo:hi],
                                     edges.has_incoming, edges.num_nodes,
                                     start, stop)

    def compute(self, h: np.ndarray, start: int, stop: int) -> np.ndarray:
        layer = self.layer
        mask, row_gate = self._mask_rows(start, stop)
        head_outputs = []
        for head in range(layer.num_heads):
            logits = _leaky_relu_np(
                self._score_src[head][None, :] + self._score_dst[head][start:stop, None],
                layer.negative_slope,
            )
            alpha = _softmax_rows_np(logits + mask) * row_gate
            head_outputs.append(alpha @ self._projected[head])
        if layer.concat_heads:
            out = np.concatenate(head_outputs, axis=1)
        else:
            stacked = head_outputs[0]
            for other in head_outputs[1:]:
                stacked = stacked + other
            out = stacked * (1.0 / layer.num_heads)
        return _elu_np(out) if self.elu else out

    def finish(self) -> None:
        self._projected = None
        self._score_src = None
        self._score_dst = None
