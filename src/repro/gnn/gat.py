"""Graph Attention Network (GAT) encoder.

The paper uses a 2-layer GAT with 8 attention heads, hidden dimension 128 and
dropout 0.5 as the feature encoder for every method.  This implementation
follows the original GAT formulation (Velickovic et al., ICLR 2018) on an
edge-index representation:

1. Project node features per head: ``h_i = x_i W_k``.
2. Per edge (i -> j), compute ``e_ij = LeakyReLU(a_src . h_i + a_dst . h_j)``.
3. Normalize with a softmax over the incoming edges of each target node.
4. Aggregate ``z_j = sum_i alpha_ij h_i`` and apply ELU; heads are
   concatenated (hidden layers) or averaged (output layer).

Backends
--------
``backend="sparse"`` (default) evaluates attention on the edge list with
segment gather/scatter primitives, vectorized across all heads in a single
batched projection: O(E * H * d) time and memory, where ``E`` is the number
of edges (incl. self loops), ``H`` the head count, and ``d`` the per-head
width.  ``backend="dense"`` materializes the per-head N x N attention matrix
(masked softmax + dense matmul); it is O(N^2) and exists as the reference
implementation for the parity tests in ``tests/gnn/test_backend_parity.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.utils import add_self_loops
from ..nn import functional as F
from ..nn.init import glorot_uniform
from ..nn.layers import Dropout, Module, Parameter
from ..nn.tensor import Tensor, cat
from .backends import check_backend


class GATLayer(Module):
    """Single multi-head graph attention layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        num_heads: int = 8,
        concat_heads: bool = True,
        dropout: float = 0.5,
        negative_slope: float = 0.2,
        backend: str = "sparse",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.num_heads = num_heads
        self.concat_heads = concat_heads
        self.negative_slope = negative_slope
        self.backend = check_backend(backend)
        # One projection and one attention vector pair per head, stored as a
        # single parameter tensor for efficiency.
        self.weight = Parameter(
            glorot_uniform((num_heads, in_features, out_features), rng), name="weight"
        )
        self.att_src = Parameter(glorot_uniform((num_heads, out_features), rng), name="att_src")
        self.att_dst = Parameter(glorot_uniform((num_heads, out_features), rng), name="att_dst")
        self.feat_dropout = Dropout(dropout, rng=rng)
        self.att_dropout = Dropout(dropout, rng=rng)

    @property
    def output_dim(self) -> int:
        if self.concat_heads:
            return self.num_heads * self.out_features
        return self.out_features

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        x = self.feat_dropout(x)
        if self.backend == "dense":
            return self._forward_dense(x, edge_index, num_nodes)
        return self._forward_sparse(x, edge_index, num_nodes)

    def _forward_sparse(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        """Edge-list attention, vectorized over every head at once."""
        src, dst = edge_index

        # (N, F) @ (H, F, O) -> (H, N, O) -> (N, H, O): one batched matmul
        # instead of a Python loop over heads.
        projected = x.matmul(self.weight).transpose((1, 0, 2))
        score_src = (projected * self.att_src).sum(axis=-1)  # (N, H)
        score_dst = (projected * self.att_dst).sum(axis=-1)  # (N, H)

        edge_scores = (
            score_src.gather_rows(src) + score_dst.gather_rows(dst)
        ).leaky_relu(self.negative_slope)  # (E, H)
        alpha = F.segment_softmax(edge_scores, dst, num_nodes)
        alpha = self.att_dropout(alpha)

        messages = projected.gather_rows(src) * alpha.reshape(-1, self.num_heads, 1)
        aggregated = messages.scatter_add_rows(dst, num_nodes)  # (N, H, O)

        if self.concat_heads:
            return aggregated.reshape(num_nodes, self.num_heads * self.out_features)
        return aggregated.mean(axis=1)

    def _forward_dense(self, x: Tensor, edge_index: np.ndarray, num_nodes: int) -> Tensor:
        """Reference path: per-head masked N x N attention (O(N^2) memory)."""
        src, dst = edge_index
        # Additive mask log(multiplicity): 0 on single edges, -inf on
        # non-edges, so the row softmax over sources matches the segment
        # softmax over incoming edges — a duplicated directed edge carries
        # its attention mass once per copy, exactly like the edge list.
        # Rows of nodes with no incoming edges would softmax to 0/0 = NaN;
        # they are left unmasked here and zeroed after the softmax instead,
        # matching the all-zero rows the sparse scatter-add produces.
        has_incoming = np.zeros(num_nodes, dtype=bool)
        has_incoming[dst] = True
        multiplicity = np.zeros((num_nodes, num_nodes))
        np.add.at(multiplicity, (dst, src), 1.0)
        with np.errstate(divide="ignore"):
            mask = np.log(multiplicity)
        mask[~has_incoming] = 0.0
        row_gate = Tensor(has_incoming.astype(np.float64).reshape(-1, 1))

        head_outputs = []
        for head in range(self.num_heads):
            weight_h = self.weight[head]
            att_src_h = self.att_src[head].reshape(-1, 1)
            att_dst_h = self.att_dst[head].reshape(-1, 1)

            projected = x.matmul(weight_h)  # (N, O)
            score_src = projected.matmul(att_src_h).reshape(1, -1)  # (1, N)
            score_dst = projected.matmul(att_dst_h).reshape(-1, 1)  # (N, 1)

            # logits[j, i] = LeakyReLU(a_src . h_i + a_dst . h_j)
            logits = (score_src + score_dst).leaky_relu(self.negative_slope)
            alpha = F.softmax(logits + Tensor(mask), axis=-1) * row_gate
            alpha = self.att_dropout(alpha)
            head_outputs.append(alpha.matmul(projected))

        if self.concat_heads:
            return cat(head_outputs, axis=1)
        stacked = head_outputs[0]
        for other in head_outputs[1:]:
            stacked = stacked + other
        return stacked * (1.0 / self.num_heads)


class GATEncoder(Module):
    """Two-layer GAT encoder producing node representations.

    The first layer concatenates its heads and applies ELU; the second layer
    averages its heads, matching the paper's configuration (2 layers, 8
    heads, hidden dim 128, dropout 0.5).  ``backend`` selects the sparse
    edge-list attention (default) or the dense reference implementation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_dim: int = 128,
        out_dim: int = 64,
        num_heads: int = 8,
        dropout: float = 0.5,
        backend: str = "sparse",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.backend = check_backend(backend)
        per_head_hidden = max(1, hidden_dim // num_heads)
        self.layer1 = GATLayer(
            in_features,
            per_head_hidden,
            num_heads=num_heads,
            concat_heads=True,
            dropout=dropout,
            backend=backend,
            rng=rng,
        )
        self.layer2 = GATLayer(
            self.layer1.output_dim,
            out_dim,
            num_heads=num_heads,
            concat_heads=False,
            dropout=dropout,
            backend=backend,
            rng=rng,
        )
        self.out_dim = out_dim
        #: Message-passing depth == receptive-field hops a node's output needs
        #: (checked against ``sampling.num_hops`` by exact khop training).
        self.num_message_passing_layers = 2

    def forward(self, graph: Graph) -> Tensor:
        edge_index = add_self_loops(graph.edge_index, graph.num_nodes)
        x = Tensor(graph.features)
        hidden = self.layer1(x, edge_index, graph.num_nodes).elu()
        return self.layer2(hidden, edge_index, graph.num_nodes)

    def embed(self, graph: Graph) -> np.ndarray:
        """Inference-mode embeddings as a plain numpy array."""
        from ..nn.tensor import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self.forward(graph)
        finally:
            self.train(was_training)
        return output.numpy()
