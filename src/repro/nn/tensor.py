"""Reverse-mode automatic differentiation on top of numpy arrays.

This module provides the :class:`Tensor` class, a small but complete autodiff
engine that supports every operation needed to train the graph neural networks
used in this repository (matrix multiplication, row gather/scatter for
message passing, element-wise math, reductions, dropout masking, and the
activation functions used by GAT/GCN encoders).

The design mirrors the familiar PyTorch semantics:

* ``Tensor(data, requires_grad=True)`` wraps a numpy array.
* Operations build a computation graph; ``loss.backward()`` accumulates
  gradients into ``tensor.grad`` for every tensor that requires gradients.
* ``Tensor.detach()`` cuts the graph, and ``no_grad()`` provides a context in
  which no graph is recorded (used at inference time).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]


class _GradState(threading.local):
    """Per-thread grad-recording flag.

    Thread-local (not a module global) so a ``no_grad()`` block in one
    thread — e.g. a threads-backend :class:`repro.parallel.ParallelExecutor`
    worker running inference — can never switch off graph recording for a
    training step running concurrently in another thread.  Each thread
    starts with recording enabled.
    """

    enabled = True


_grad_state = _GradState()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    previous = _grad_state.enabled
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _grad_state.enabled


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != np.float64:
            return value.astype(np.float64)
        return value
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` (reverse of broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # ensure numpy defers to Tensor operators

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Iterable["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _grad_state.enabled
        self.grad: Optional[np.ndarray] = None
        self._parents = tuple(_parents) if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor that shares data but is cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_state.enabled and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data, requires_grad=False)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def _accumulate_broadcast(self, grad: np.ndarray) -> None:
        """Accumulate a gradient that broadcasts against ``self.data``.

        Equivalent to ``self._accumulate(np.broadcast_to(grad,
        self.data.shape).copy())`` but never materializes the broadcast
        temporary: with an existing buffer ``np.add`` reads the broadcast
        view straight into it, and otherwise the owned buffer is allocated
        once and filled by ``np.copyto`` — one full-size array either way
        instead of two.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.empty(self.data.shape, dtype=np.float64)
            np.copyto(self.grad, grad)
        else:
            np.add(self.grad, grad, out=self.grad)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Topological order of the graph rooted at self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.data.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other_t)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other_t.data, self.data.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.data.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other_t.data, self.data.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.data.shape)
            )

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Matrix product with numpy ``@`` broadcasting over batch dimensions.

        Supports the classic 2-D case as well as stacked operands such as
        ``(N, F) @ (H, F, O) -> (H, N, O)``; gradients for broadcast batch
        dimensions are summed back to the operand's shape.
        """
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        if self.data.ndim < 2 or other_t.data.ndim < 2:
            raise ValueError(
                "matmul requires operands with ndim >= 2; reshape vectors to "
                "(n, 1) / (1, n) explicitly"
            )
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            # Skip the (potentially large) gradient product for constant
            # operands — e.g. a dense propagation matrix multiplied against a
            # projected feature tensor must not allocate an N x N gradient.
            a, b = self.data, other_t.data
            if a.ndim == 2 and b.ndim == 2:
                if self.requires_grad:
                    self._accumulate(grad @ b.T)
                if other_t.requires_grad:
                    other_t._accumulate(a.T @ grad)
                return
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape))
            if other_t.requires_grad:
                other_t._accumulate(_unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Element-wise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        out_data = self.data * scale

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return Tensor._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        mask = self.data > 0
        exp_part = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(mask, self.data, exp_part)

        def backward(grad: np.ndarray) -> None:
            local = np.where(mask, 1.0, exp_part + alpha)
            self._accumulate(grad * local)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate_broadcast(grad)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Max reduction; gradients flow to the (first) argmax entries."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = self.data == out_data
                contribution = np.multiply(grad, mask / mask.sum())
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                grad_expanded = grad if keepdims else np.expand_dims(grad, axis)
                mask = self.data == expanded
                counts = mask.sum(axis=axis, keepdims=True)
                contribution = grad_expanded * mask / counts
            # The contribution is already a fresh full-shape temporary, so
            # the broadcast accumulator adds it in place (existing buffer)
            # or claims one owned copy (no buffer) — never copy-on-copy.
            self._accumulate_broadcast(contribution)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation and indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = self.data.transpose(axes) if axes is not None else self.data.T

        def backward(grad: np.ndarray) -> None:
            if axes is None:
                self._accumulate(grad.T)
            else:
                inverse = np.argsort(axes)
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows ``self[indices]``; gradients scatter-add back."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, indices, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, indices) -> "Tensor":
        if isinstance(indices, (np.ndarray, list)):
            return self.gather_rows(np.asarray(indices))
        out_data = self.data[indices]
        shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(shape, dtype=np.float64)
            full[indices] = grad
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def scatter_add_rows(self, indices: np.ndarray, num_rows: int) -> "Tensor":
        """Scatter rows of ``self`` into a zero tensor of ``num_rows`` rows.

        ``out[indices[i]] += self[i]``.  The backward pass gathers gradients
        back to the source rows.  This is the aggregation primitive used by
        message-passing GNN layers.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_shape = (num_rows,) + self.data.shape[1:]
        out_data = np.zeros(out_shape, dtype=np.float64)
        np.add.at(out_data, indices, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[indices])

        return Tensor._make(out_data, (self,), backward)

    def concat(self, others: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        return cat([self, *others], axis=axis)

    # Convenience aliases -------------------------------------------------
    def dot(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0, *sizes])

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:], strict=True):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        split = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, split, strict=True):
            tensor._accumulate(piece)

    return Tensor._make(out_data, tensors, backward)


def sparse_matmul(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Product ``matrix @ dense`` where ``matrix`` is a sparse constant.

    ``matrix`` is a scipy sparse matrix (converted to CSR once per call) that
    does not receive gradients — the typical use is the fixed propagation
    matrix ``D^{-1/2}(A+I)D^{-1/2}`` of a GCN.  The backward rule is the
    transpose product ``grad_dense = matrix.T @ grad``, which scipy evaluates
    without ever densifying, keeping one forward/backward pass at
    O(nnz * out_features) time and O(N * out_features + nnz) memory instead
    of the O(N^2) cost of a densified propagation matrix.
    """
    if not sp.issparse(matrix):
        raise TypeError(
            f"sparse_matmul expects a scipy sparse matrix, got {type(matrix).__name__}; "
            "use Tensor.matmul for dense operands"
        )
    dense_t = dense if isinstance(dense, Tensor) else Tensor(dense)
    if dense_t.ndim != 2:
        raise ValueError("sparse_matmul expects a 2-D dense operand")
    csr = matrix.tocsr()
    out_data = csr @ dense_t.data

    def backward(grad: np.ndarray) -> None:
        # ``csr.T`` is a free CSC view; scipy multiplies it directly.
        dense_t._accumulate(csr.T @ grad)

    return Tensor._make(out_data, (dense_t,), backward)


def zeros(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Sequence[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
