"""Gradient-based optimizers.

The paper trains every model with Adam and weight decay 1e-4; SGD is provided
as a simpler alternative and for tests.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer interface over a list of :class:`Parameter`."""

    def __init__(self, parameters: Sequence[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with decoupled-style weight decay applied
    to the gradient, matching ``torch.optim.Adam(weight_decay=...)``."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
