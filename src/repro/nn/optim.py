"""Gradient-based optimizers.

The paper trains every model with Adam and weight decay 1e-4; SGD is provided
as a simpler alternative and for tests.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer interface over a list of :class:`Parameter`."""

    def __init__(self, parameters: Sequence[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- persistence -----------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable optimizer state (moment buffers, step counters).

        Hyper-parameters (lr, betas, ...) are *not* included: they come from
        the training config, which is persisted separately.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`.

        Buffer lists are validated against the current parameter list (count
        and per-parameter shape) so a checkpoint from a different model fails
        loudly.
        """
        if state:
            raise ValueError(
                f"{type(self).__name__} has no state but received keys {sorted(state)}"
            )

    def _check_buffers(self, name: str, buffers: Sequence[np.ndarray]) -> List[np.ndarray]:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state {name!r} has {len(buffers)} buffers but the "
                f"optimizer tracks {len(self.parameters)} parameters"
            )
        checked = []
        for index, (buffer, param) in enumerate(zip(buffers, self.parameters, strict=True)):
            array = np.asarray(buffer, dtype=np.float64)
            if array.shape != param.data.shape:
                raise ValueError(
                    f"optimizer state {name!r}[{index}] has shape {array.shape} "
                    f"but parameter has shape {param.data.shape}"
                )
            checked.append(array.copy())
        return checked


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity, strict=True):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            # Augmented assignment routes through the Parameter.data setter,
            # which bumps the parameter version (cache invalidation).
            param.data -= self.lr * update

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        self._velocity = self._check_buffers("velocity", state["velocity"])


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with decoupled-style weight decay applied
    to the gradient, matching ``torch.optim.Adam(weight_decay=...)``."""

    def __init__(self, parameters: Sequence[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v, strict=True):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            # Routes through the version-bumping Parameter.data setter.
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        self._m = self._check_buffers("m", state["m"])
        self._v = self._check_buffers("v", state["v"])
        self._step_count = int(state["step_count"])
