"""Composite differentiable functions built on :class:`repro.nn.tensor.Tensor`.

These functions implement the numerically stable primitives used by the
OpenIMA training objective and its baselines: softmax / log-softmax,
cross-entropy over labeled nodes, L2 row normalization (for contrastive
losses), segment softmax (per-destination normalization of edge attention
scores in GAT), and dropout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, sparse_matmul

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "l2_normalize",
    "dropout",
    "segment_softmax",
    "pairwise_cosine_similarity",
    "sparse_matmul",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` of shape (n, c) and integer ``targets``.

    Parameters
    ----------
    logits:
        Unnormalized class scores.
    targets:
        Integer class indices of shape (n,).
    reduction:
        ``"mean"`` (default), ``"sum"``, or ``"none"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.shape[0] != targets.shape[0]:
        raise ValueError(
            f"logits rows ({logits.shape[0]}) must match targets ({targets.shape[0]})"
        )
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(targets.shape[0])
    picked = log_probs[rows, targets]
    losses = -picked
    if reduction == "none":
        return losses
    if reduction == "sum":
        return losses.sum()
    return losses.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy over raw ``logits`` against 0/1 ``targets``."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    # log(1 + exp(-|x|)) + max(x, 0) - x * y  (stable formulation).  |x| is
    # built from relu ops so the log term stays differentiable; detaching it
    # would silently drop the sigmoid part of the gradient (the analytic
    # gradient sigmoid(x) - y is verified by tests/nn/test_gradcheck.py).
    abs_x = logits.relu() + (-logits).relu()
    log_term = ((-abs_x).exp() + 1.0).log()
    relu_term = logits.relu()
    loss = log_term + relu_term - logits * targets_t
    return loss.mean()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows (or the given axis) of ``x`` to unit L2 norm."""
    squared = (x * x).sum(axis=axis, keepdims=True)
    norm = (squared + eps).sqrt()
    return x / norm


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero entries with probability ``rate`` while training."""
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax of ``scores`` within segments defined by ``segment_ids``.

    Used to normalize GAT attention coefficients over the incoming edges of
    each destination node.  ``scores`` has shape (num_edges,) or
    (num_edges, heads); ``segment_ids`` assigns each edge to a destination
    node in ``[0, num_segments)``.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Subtract the per-segment maximum (computed outside the graph) for
    # numerical stability.
    if scores.ndim == 1:
        seg_max = np.full(num_segments, -np.inf)
        np.maximum.at(seg_max, segment_ids, scores.data)
        seg_max[~np.isfinite(seg_max)] = 0.0
        shifted = scores - Tensor(seg_max[segment_ids])
    else:
        seg_max = np.full((num_segments, scores.shape[1]), -np.inf)
        np.maximum.at(seg_max, segment_ids, scores.data)
        seg_max[~np.isfinite(seg_max)] = 0.0
        shifted = scores - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = exp.scatter_add_rows(segment_ids, num_segments)
    denom_per_edge = denom.gather_rows(segment_ids)
    return exp / (denom_per_edge + 1e-16)


def pairwise_cosine_similarity(x: Tensor) -> Tensor:
    """All-pairs cosine similarity of the rows of ``x`` (n x n matrix)."""
    normalized = l2_normalize(x, axis=-1)
    return normalized.matmul(normalized.transpose())
