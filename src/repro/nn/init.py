"""Weight initialization schemes for the neural network layers."""

from __future__ import annotations

import numpy as np


def glorot_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, the PyG default for GAT/GCN."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros_init(shape: tuple) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape)
