"""Neural network module system: parameters, modules, and basic layers.

The design follows the familiar ``torch.nn`` interface: a :class:`Module`
owns :class:`Parameter` objects and child modules, exposes ``parameters()``
for the optimizer, and switches between train/eval behaviour with
``train()`` / ``eval()`` (which controls dropout).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

import numpy as np

from . import functional as F
from .init import glorot_uniform, zeros_init
from .tensor import Tensor


class LoadStateResult(NamedTuple):
    """Key-level outcome of :meth:`Module.load_state_dict`."""

    missing_keys: List[str]
    unexpected_keys: List[str]


class Parameter(Tensor):
    """A tensor that is always trainable and registered with its module.

    Assigning ``data`` (including augmented assignment, the optimizers'
    ``param.data -= ...``) automatically bumps a version counter;
    :meth:`Module.parameter_version` folds the per-parameter counters into a
    single monotonically increasing integer that embedding caches use to
    detect stale results.  The one hole the property cannot see is in-place
    *element* mutation of the array itself (``param.data[i] = ...``) — code
    doing that must call :meth:`bump_version` explicitly.
    """

    def __init__(self, data: np.ndarray, name: str = ""):
        self._version = 0
        super().__init__(data, requires_grad=True, name=name)
        self._version = 0  # construction itself is version 0

    # ``data`` shadows the Tensor slot with a version-counting property so
    # cache invalidation is structural, not a call-site convention.
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value
        self._version += 1

    @property
    def version(self) -> int:
        """Number of recorded updates to ``data`` since construction."""
        return self._version

    def bump_version(self) -> None:
        """Record an in-place element mutation of ``data`` (see class doc)."""
        self._version += 1


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration ----------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    # -- traversal -------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return every parameter of this module and its children."""
        params: List[Parameter] = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # -- mode switching ---------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def parameter_version(self) -> int:
        """Monotonic counter covering every parameter of the module tree.

        The value increases whenever any parameter announces an update via
        :meth:`Parameter.bump_version` (optimizer steps, ``load_state_dict``),
        so equal values guarantee the parameters are unchanged.  Used as the
        key of :class:`repro.inference.EmbeddingCache`.
        """
        return sum(param._version for param in self.parameters())

    # -- state dict -------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameter arrays keyed by dotted names."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray],
                        strict: bool = True) -> "LoadStateResult":
        """Load parameter arrays produced by :meth:`state_dict`.

        With ``strict=True`` (the default) any missing or unexpected key
        raises a ``KeyError`` listing both sets; with ``strict=False`` the
        intersection is loaded and the mismatches are reported in the
        returned :class:`LoadStateResult`.  A shape mismatch is always an
        error — every offending key is listed with the checkpoint and model
        shapes so a bad checkpoint is diagnosable in one read.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if strict and (missing or unexpected):
            raise KeyError(
                "load_state_dict(strict=True) key mismatch: "
                f"missing keys (in model, not in checkpoint): {missing or 'none'}; "
                f"unexpected keys (in checkpoint, not in model): {unexpected or 'none'}"
            )
        loadable = [name for name in state if name in own]
        shape_errors = [
            f"{name}: checkpoint shape {np.shape(state[name])} vs "
            f"model shape {own[name].data.shape}"
            for name in loadable
            if tuple(np.shape(state[name])) != tuple(own[name].data.shape)
        ]
        if shape_errors:
            raise ValueError(
                "load_state_dict shape mismatch for "
                f"{len(shape_errors)} parameter(s): " + "; ".join(shape_errors)
            )
        for name in loadable:
            # Assigning Parameter.data bumps its version, invalidating any
            # version-keyed embedding cache.
            own[name].data = np.array(state[name], dtype=np.float64, copy=True)
        return LoadStateResult(missing_keys=missing, unexpected_keys=unexpected)

    # -- call ---------------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(zeros_init((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout layer; active only in training mode."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self.rng)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer_{index}", module)
            self._ordered.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._ordered)

    def __len__(self):
        return len(self._ordered)


class ReLU(Module):
    """ReLU activation as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ELU(Module):
    """ELU activation as a module (GAT default)."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)
