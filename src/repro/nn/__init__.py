"""Minimal reverse-mode autodiff + neural network toolkit built on numpy.

This subpackage is the substrate standing in for PyTorch: it provides the
:class:`~repro.nn.tensor.Tensor` autodiff engine, module/layer abstractions,
initializers, optimizers, and the differentiable functions required by the
GNN encoders and contrastive objectives used throughout the repository.
"""

from . import functional
from .init import glorot_normal, glorot_uniform, zeros_init
from .layers import ELU, Dropout, Linear, Module, Parameter, ReLU, Sequential
from .optim import SGD, Adam, Optimizer
from .tensor import Tensor, cat, is_grad_enabled, no_grad, ones, sparse_matmul, stack, zeros

__all__ = [
    "Tensor",
    "cat",
    "sparse_matmul",
    "stack",
    "zeros",
    "ones",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "Sequential",
    "ReLU",
    "ELU",
    "Adam",
    "SGD",
    "Optimizer",
    "glorot_uniform",
    "glorot_normal",
    "zeros_init",
]
