"""Version-keyed embedding cache.

Deterministic all-node embeddings depend on exactly two things: the encoder's
parameters and the graph.  :class:`ParamVersion` captures both identities —
the encoder instance plus its monotonic
:meth:`~repro.nn.layers.Module.parameter_version` counter (bumped by every
optimizer step and ``load_state_dict``) — so a cached result can be reused
if and only if nothing observable has changed.  Stale reuse is structurally
impossible: any parameter update changes the counter, and the graph is held
by weak reference so a freshly built graph at a recycled address can never
alias the cached one.
"""

from __future__ import annotations

import weakref
from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..nn.layers import Module


class ParamVersion:
    """Snapshot of a module's parameter state at a point in time.

    Two snapshots compare equal when they refer to the *same live module*
    with the *same parameter version counter*.  The module is held weakly,
    so a snapshot never keeps a model alive, and a dead referent never
    matches anything.
    """

    __slots__ = ("_module_ref", "counter")

    def __init__(self, module: Module):
        self._module_ref = weakref.ref(module)
        self.counter = module.parameter_version()

    @property
    def module(self) -> Optional[Module]:
        return self._module_ref()

    def is_current(self) -> bool:
        """Whether the referenced module still has this parameter version."""
        module = self._module_ref()
        return module is not None and module.parameter_version() == self.counter

    def __eq__(self, other) -> bool:
        if not isinstance(other, ParamVersion):
            return NotImplemented
        mine, theirs = self._module_ref(), other._module_ref()
        return mine is not None and mine is theirs and self.counter == other.counter

    def __hash__(self) -> int:
        return hash((id(self._module_ref()), self.counter))

    def __repr__(self) -> str:
        module = self._module_ref()
        target = type(module).__name__ if module is not None else "<dead>"
        return f"ParamVersion({target}, counter={self.counter})"


class EmbeddingCache:
    """Single-entry cache of all-node embeddings keyed by :class:`ParamVersion`.

    One entry suffices because the trainer loop alternates between parameter
    updates and bursts of reads (pseudo-label refresh, evaluation,
    prediction) against the *current* parameters; anything older is dead by
    construction.  The graph is keyed by identity **and**
    :attr:`~repro.graphs.graph.Graph.cache_version`, so the documented
    in-place mutation path (reassign fields + ``invalidate_caches()``) also
    invalidates this cache.  The cached array is returned with
    ``writeable=False`` so an accidental in-place edit by a consumer raises
    instead of silently corrupting every other consumer of the same epoch.
    """

    def __init__(self):
        self._version: Optional[ParamVersion] = None
        self._graph_ref: Optional[weakref.ref] = None
        self._graph_version: int = -1
        self._value: Optional[np.ndarray] = None
        self.hits = 0
        self.misses = 0

    def lookup(self, encoder: Module, graph: Graph) -> Optional[np.ndarray]:
        """Return the cached embeddings, or None on any mismatch."""
        if (
            self._value is not None
            and self._graph_ref is not None
            and self._graph_ref() is graph
            and getattr(graph, "cache_version", 0) == self._graph_version
            and self._version is not None
            and self._version.is_current()
            and self._version.module is encoder
        ):
            self.hits += 1
            return self._value
        self.misses += 1
        return None

    def store(self, encoder: Module, graph: Graph, embeddings: np.ndarray) -> np.ndarray:
        """Cache ``embeddings`` for the encoder's current parameter version."""
        embeddings = np.asarray(embeddings)
        embeddings.setflags(write=False)
        self._version = ParamVersion(encoder)
        self._graph_ref = weakref.ref(graph)
        self._graph_version = getattr(graph, "cache_version", 0)
        self._value = embeddings
        return embeddings

    def invalidate(self) -> None:
        """Drop the cached entry (the hit/miss counters are kept)."""
        self._version = None
        self._graph_ref = None
        self._value = None
