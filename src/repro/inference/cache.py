"""Version-keyed embedding cache.

Deterministic all-node embeddings depend on exactly two things: the encoder's
parameters and the graph.  :class:`ParamVersion` captures both identities —
the encoder instance plus its monotonic
:meth:`~repro.nn.layers.Module.parameter_version` counter (bumped by every
optimizer step and ``load_state_dict``) — so a cached result can be reused
if and only if nothing observable has changed.  Stale reuse is structurally
impossible: any parameter update changes the counter, and the graph is held
by weak reference so a freshly built graph at a recycled address can never
alias the cached one.

The cache is safe under concurrent readers: the entry is an immutable tuple
swapped atomically under a lock, lookups take a consistent snapshot, and the
hit/miss counters are incremented under the same lock — a precondition for
the long-lived serving layer (:mod:`repro.serve`), where many request
threads read while a single writer refreshes.
"""

from __future__ import annotations

import threading
import weakref
from typing import Optional, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..nn.layers import Module
from ..obs import REGISTRY

_CACHE_EVENTS = REGISTRY.counter(
    "repro_inference_cache_events_total",
    "Embedding-cache outcomes, by event (hit/miss/store/invalidate).",
    labelnames=("event",))


class ParamVersion:
    """Snapshot of a module's parameter state at a point in time.

    Two snapshots compare equal when they refer to the *same live module*
    with the *same parameter version counter*.  The module is held weakly,
    so a snapshot never keeps a model alive, and a dead referent never
    matches anything.  The referent's identity is captured **at
    construction**, so the hash is stable for the snapshot's whole lifetime
    even after the module is garbage-collected (a hash computed from
    ``id(self._module_ref())`` would silently flip to ``id(None)`` at
    collection time, corrupting any dict/set keyed by the snapshot).
    """

    __slots__ = ("_module_ref", "_module_id", "counter")

    def __init__(self, module: Module):
        self._module_ref = weakref.ref(module)
        self._module_id = id(module)
        self.counter = module.parameter_version()

    @property
    def module(self) -> Optional[Module]:
        return self._module_ref()

    def is_current(self) -> bool:
        """Whether the referenced module still has this parameter version."""
        module = self._module_ref()
        return module is not None and module.parameter_version() == self.counter

    def __eq__(self, other) -> bool:
        if not isinstance(other, ParamVersion):
            return NotImplemented
        mine, theirs = self._module_ref(), other._module_ref()
        return mine is not None and mine is theirs and self.counter == other.counter

    def __hash__(self) -> int:
        return hash((self._module_id, self.counter))

    def __repr__(self) -> str:
        module = self._module_ref()
        target = type(module).__name__ if module is not None else "<dead>"
        return f"ParamVersion({target}, counter={self.counter})"


#: One cache entry: (param version, graph weakref, graph cache_version, value).
_CacheEntry = Tuple[ParamVersion, "weakref.ref", int, np.ndarray]


class EmbeddingCache:
    """Single-entry cache of all-node embeddings keyed by :class:`ParamVersion`.

    One entry suffices because the trainer loop alternates between parameter
    updates and bursts of reads (pseudo-label refresh, evaluation,
    prediction) against the *current* parameters; anything older is dead by
    construction.  The graph is keyed by identity **and**
    :attr:`~repro.graphs.graph.Graph.cache_version`, so the documented
    in-place mutation path (reassign fields + ``invalidate_caches()``) also
    invalidates this cache.  The cached array is returned with
    ``writeable=False`` so an accidental in-place edit by a consumer raises
    instead of silently corrupting every other consumer of the same epoch.
    """

    def __init__(self):
        self._entry: Optional[_CacheEntry] = None  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.invalidations = 0  # guarded-by: _lock

    def lookup(self, encoder: Module, graph: Graph) -> Optional[np.ndarray]:
        """Return the cached embeddings, or None on any mismatch."""
        with self._lock:
            entry = self._entry
            if (
                entry is not None
                and entry[1]() is graph
                and getattr(graph, "cache_version", 0) == entry[2]
                and entry[0].is_current()
                and entry[0].module is encoder
            ):
                self.hits += 1
                result = entry[3]
            else:
                self.misses += 1
                result = None
        # Registry increments happen outside _lock: obs instrument locks
        # are leaves and never nest under component locks.
        _CACHE_EVENTS.inc(event="hit" if result is not None else "miss")
        return result

    def store(  # returns-frozen
        self,
        encoder: Module,
        graph: Graph,
        embeddings: np.ndarray,
        *,
        copy: bool = True,
    ) -> np.ndarray:
        """Cache ``embeddings`` for the encoder's current parameter version.

        The cached array is frozen (``writeable=False``), so the cache must
        own it: with ``copy=True`` (the default) a writeable ndarray input
        is copied first, leaving the caller's array untouched.  Pass
        ``copy=False`` only when handing over ownership of a freshly
        computed array with no other live references — then the freeze is
        free.
        """
        embeddings = np.asarray(embeddings)
        if copy and embeddings.flags.writeable:
            embeddings = embeddings.copy()
        embeddings.setflags(write=False)
        entry: _CacheEntry = (
            ParamVersion(encoder),
            weakref.ref(graph),
            getattr(graph, "cache_version", 0),
            embeddings,
        )
        with self._lock:
            self._entry = entry
        _CACHE_EVENTS.inc(event="store")
        return embeddings

    def stale_entry(self, encoder: Module, graph: Graph) -> Optional[Tuple[np.ndarray, int]]:
        """The entry for this encoder/graph pair *ignoring the graph version*.

        The partial-refresh path (``InferenceEngine.refresh_after_delta``)
        needs the embeddings computed for the *previous* graph version as its
        patch base: same live encoder at the same parameter version, same
        graph identity, but a ``cache_version`` that has since moved.
        Returns ``(embeddings, cached_graph_version)`` or ``None``; does not
        count as a hit or miss (it is bookkeeping, not a serving lookup).
        """
        with self._lock:
            entry = self._entry
            if (
                entry is not None
                and entry[1]() is graph
                and entry[0].is_current()
                and entry[0].module is encoder
            ):
                return entry[3], entry[2]
            return None

    def invalidate(self) -> None:
        """Drop the cached entry (the hit/miss counters are kept)."""
        with self._lock:
            self._entry = None
            self.invalidations += 1
        _CACHE_EVENTS.inc(event="invalidate")

    def stats(self) -> dict:
        """A consistent (hits, misses) snapshot plus the derived hit rate."""
        with self._lock:
            hits, misses = self.hits, self.misses
            invalidations = self.invalidations
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "invalidations": invalidations,
        }
