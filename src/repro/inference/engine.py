"""The inference facade: mode selection + versioned embedding cache.

:class:`InferenceEngine` is the single entry point for deterministic
all-node embeddings.  It owns

* the **mode policy** from :class:`repro.core.config.InferenceConfig`
  (``full`` monolithic forward, ``layerwise`` chunked evaluation, or
  ``auto`` switching on graph size), and
* the :class:`~repro.inference.cache.EmbeddingCache`, so every consumer of
  the same parameter state — pseudo-label refresh, ``EvaluationCallback``,
  ``validation_accuracy``, ``predict`` — shares one embedding pass instead
  of recomputing 2-4x per epoch.

``forward_count`` counts *actual* encoder passes (cache hits excluded),
which is what the one-forward-per-evaluation-epoch tests assert on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..graphs.graph import Graph
from ..nn.layers import Module
from ..obs import REGISTRY, span
from .cache import EmbeddingCache
from .layerwise import LayerwiseInference

_FORWARD_SECONDS = REGISTRY.histogram(
    "repro_inference_forward_seconds",
    "Wall time of one all-node embedding pass, by mode.",
    labelnames=("mode",))
_REFRESHES = REGISTRY.counter(
    "repro_inference_refreshes_total",
    "Delta refreshes served, by kind (partial patch vs full recompute).",
    labelnames=("kind",))

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import InferenceConfig
    from ..parallel import ParallelExecutor
    from ..streaming.dynamic import DeltaReport


class InferenceEngine:
    """Compute (or reuse) deterministic all-node embeddings for an encoder."""

    def __init__(self, config: Optional["InferenceConfig"] = None, *,
                 parallel: Optional["ParallelExecutor"] = None):
        if config is None:
            # Imported lazily: repro.core.trainer imports this module, so a
            # module-level import of repro.core.config would be circular.
            from ..core.config import InferenceConfig

            config = InferenceConfig()
        self.config = config
        self.cache: Optional[EmbeddingCache] = (
            EmbeddingCache() if self.config.cache else None
        )
        self._layerwise = LayerwiseInference(chunk_size=self.config.chunk_size,
                                             parallel=parallel)
        #: Number of embedding passes actually computed (cache hits excluded).
        self.forward_count = 0
        #: Deltas served by patching the cached array (no full pass).
        self.partial_refresh_count = 0
        #: Deltas that fell back to a full recompute (threshold/stale base).
        self.full_refresh_count = 0

    @property
    def parallel(self) -> Optional["ParallelExecutor"]:
        """The multi-core dispatcher for layerwise chunks (``None`` = serial)."""
        return self._layerwise.parallel

    @parallel.setter
    def parallel(self, executor: Optional["ParallelExecutor"]) -> None:
        self._layerwise.parallel = executor

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def resolve_mode(self, encoder: Module, graph: Graph) -> str:
        """The concrete mode (``full``/``layerwise``) used for this input."""
        mode = self.config.mode
        if mode == "auto":
            supports_layerwise = hasattr(encoder, "layerwise_plan")
            large = graph.num_nodes >= self.config.auto_threshold
            return "layerwise" if (supports_layerwise and large) else "full"
        return mode

    # ------------------------------------------------------------------
    # Embeddings
    # ------------------------------------------------------------------
    def embeddings(self, encoder: Module, graph: Graph) -> np.ndarray:
        """All-node embeddings under the configured mode, cached by version.

        The returned array is marked read-only when it comes from the cache
        layer; callers that need to mutate it must copy.
        """
        if self.cache is not None:
            cached = self.cache.lookup(encoder, graph)
            if cached is not None:
                return cached
        embeddings = self._compute(encoder, graph)
        if self.cache is not None:
            # The freshly computed array has no other live reference, so the
            # cache may freeze it in place instead of copying.
            return self.cache.store(encoder, graph, embeddings, copy=False)
        return embeddings

    def _compute(self, encoder: Module, graph: Graph) -> np.ndarray:
        self.forward_count += 1
        mode = self.resolve_mode(encoder, graph)
        with _FORWARD_SECONDS.time(mode=mode), \
                span("inference.compute", mode=mode, nodes=graph.num_nodes):
            if mode == "layerwise":
                return self._layerwise.run(encoder, graph)
            return encoder.embed(graph)

    # ------------------------------------------------------------------
    # Incremental refresh (streaming deltas)
    # ------------------------------------------------------------------
    def refresh_after_delta(self, encoder: Module, graph: Graph,
                            report: "DeltaReport") -> np.ndarray:
        """Embeddings for ``graph`` after the delta described by ``report``.

        When the cache still holds the pre-delta embeddings, only the
        delta's affected receptive field is recomputed: the report's
        pre-extracted subgraph batch (or a fresh ``khop_subgraph`` over the
        affected set) is run through the encoder, the affected rows are
        patched into a copy of the cached array, and the result is stored
        under the graph's *new* ``cache_version``.  Unaffected rows are
        bit-identical to a full recompute — their propagation rows and
        receptive fields did not change — and the affected rows match to
        float tolerance because the subgraph propagation is the sliced
        full-graph matrix (see :mod:`repro.graphs.sampling`).

        Readers are never broken mid-patch: the patch builds a fresh array
        and publishes it with one atomic cache store, so a thread holding
        the previous (frozen) array keeps a consistent pre-delta view.

        Falls back to a full recompute when partial refresh is disabled,
        no usable pre-delta entry exists, the encoder is deeper than the
        report's ``num_hops`` bound, or the affected set exceeds
        ``config.partial_threshold`` of the graph (at that size one full
        pass is cheaper than subgraph extraction + patch).
        """
        depth = getattr(encoder, "num_message_passing_layers", None)
        if depth is not None and depth > report.num_hops:
            raise ValueError(
                f"delta report covers {report.num_hops} hops but the encoder "
                f"has {depth} message-passing layers; build the DynamicGraph "
                f"with num_hops >= {depth}")
        if self.cache is None or not self.config.partial_refresh:
            return self.embeddings(encoder, graph)
        if (graph.cache_version != report.new_cache_version
                or graph.num_nodes != report.new_num_nodes):
            # The graph moved again after this report was taken; the report's
            # affected set no longer bounds the difference.
            self.full_refresh_count += 1
            _REFRESHES.inc(kind="full")
            return self.embeddings(encoder, graph)
        stale = self.cache.stale_entry(encoder, graph)
        if (stale is None
                or stale[1] != report.old_cache_version
                or stale[0].shape[0] != report.old_num_nodes):
            self.full_refresh_count += 1
            _REFRESHES.inc(kind="full")
            return self.embeddings(encoder, graph)
        old_embeddings = stale[0]
        if report.num_affected == 0:
            # Topology-neutral delta (version bump only): re-key the cached
            # array under the new graph version without recomputing.
            self.partial_refresh_count += 1
            _REFRESHES.inc(kind="partial")
            return self.cache.store(encoder, graph, old_embeddings, copy=False)
        if report.num_affected > self.config.partial_threshold * graph.num_nodes:
            self.full_refresh_count += 1
            _REFRESHES.inc(kind="full")
            return self.embeddings(encoder, graph)

        with span("inference.partial_refresh",
                  affected=report.num_affected):
            batch = report.batch
            if batch is None:
                from ..graphs.sampling import khop_subgraph

                batch = khop_subgraph(graph, report.affected, report.num_hops)
            sub_embeddings = encoder.embed(batch.graph)
            patched = np.empty((graph.num_nodes, sub_embeddings.shape[1]),
                               dtype=sub_embeddings.dtype)
            patched[:report.old_num_nodes] = old_embeddings
            patched[batch.node_ids[batch.seed_local]] = sub_embeddings[batch.seed_local]
            self.partial_refresh_count += 1
            _REFRESHES.inc(kind="partial")
            return self.cache.store(encoder, graph, patched, copy=False)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop any cached embeddings (e.g. after mutating a graph in place)."""
        if self.cache is not None:
            self.cache.invalidate()

    @property
    def cache_hits(self) -> int:
        return 0 if self.cache is None else self.cache.hits

    @property
    def cache_misses(self) -> int:
        return 0 if self.cache is None else self.cache.misses

    def stats(self) -> dict:
        """Counters for logging/diagnostics."""
        return {
            "forwards": self.forward_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "partial_refreshes": self.partial_refresh_count,
            "full_refreshes": self.full_refresh_count,
        }

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(mode={self.config.mode!r}, "
            f"chunk_size={self.config.chunk_size}, cache={self.config.cache}, "
            f"forwards={self.forward_count})"
        )
