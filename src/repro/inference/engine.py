"""The inference facade: mode selection + versioned embedding cache.

:class:`InferenceEngine` is the single entry point for deterministic
all-node embeddings.  It owns

* the **mode policy** from :class:`repro.core.config.InferenceConfig`
  (``full`` monolithic forward, ``layerwise`` chunked evaluation, or
  ``auto`` switching on graph size), and
* the :class:`~repro.inference.cache.EmbeddingCache`, so every consumer of
  the same parameter state — pseudo-label refresh, ``EvaluationCallback``,
  ``validation_accuracy``, ``predict`` — shares one embedding pass instead
  of recomputing 2–4x per epoch.

``forward_count`` counts *actual* encoder passes (cache hits excluded),
which is what the one-forward-per-evaluation-epoch tests assert on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..graphs.graph import Graph
from ..nn.layers import Module
from .cache import EmbeddingCache
from .layerwise import LayerwiseInference

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import InferenceConfig


class InferenceEngine:
    """Compute (or reuse) deterministic all-node embeddings for an encoder."""

    def __init__(self, config: Optional["InferenceConfig"] = None):
        if config is None:
            # Imported lazily: repro.core.trainer imports this module, so a
            # module-level import of repro.core.config would be circular.
            from ..core.config import InferenceConfig

            config = InferenceConfig()
        self.config = config
        self.cache: Optional[EmbeddingCache] = (
            EmbeddingCache() if self.config.cache else None
        )
        self._layerwise = LayerwiseInference(chunk_size=self.config.chunk_size)
        #: Number of embedding passes actually computed (cache hits excluded).
        self.forward_count = 0

    # ------------------------------------------------------------------
    # Policy
    # ------------------------------------------------------------------
    def resolve_mode(self, encoder: Module, graph: Graph) -> str:
        """The concrete mode (``full``/``layerwise``) used for this input."""
        mode = self.config.mode
        if mode == "auto":
            supports_layerwise = hasattr(encoder, "layerwise_plan")
            large = graph.num_nodes >= self.config.auto_threshold
            return "layerwise" if (supports_layerwise and large) else "full"
        return mode

    # ------------------------------------------------------------------
    # Embeddings
    # ------------------------------------------------------------------
    def embeddings(self, encoder: Module, graph: Graph) -> np.ndarray:
        """All-node embeddings under the configured mode, cached by version.

        The returned array is marked read-only when it comes from the cache
        layer; callers that need to mutate it must copy.
        """
        if self.cache is not None:
            cached = self.cache.lookup(encoder, graph)
            if cached is not None:
                return cached
        embeddings = self._compute(encoder, graph)
        if self.cache is not None:
            # The freshly computed array has no other live reference, so the
            # cache may freeze it in place instead of copying.
            return self.cache.store(encoder, graph, embeddings, copy=False)
        return embeddings

    def _compute(self, encoder: Module, graph: Graph) -> np.ndarray:
        self.forward_count += 1
        if self.resolve_mode(encoder, graph) == "layerwise":
            return self._layerwise.run(encoder, graph)
        return encoder.embed(graph)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop any cached embeddings (e.g. after mutating a graph in place)."""
        if self.cache is not None:
            self.cache.invalidate()

    @property
    def cache_hits(self) -> int:
        return 0 if self.cache is None else self.cache.hits

    @property
    def cache_misses(self) -> int:
        return 0 if self.cache is None else self.cache.misses

    def stats(self) -> dict:
        """Counters for logging/diagnostics."""
        return {
            "forwards": self.forward_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(mode={self.config.mode!r}, "
            f"chunk_size={self.config.chunk_size}, cache={self.config.cache}, "
            f"forwards={self.forward_count})"
        )
