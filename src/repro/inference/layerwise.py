"""Layer-wise, chunked all-node embedding computation.

:class:`LayerwiseInference` computes the same deterministic embeddings as
``encoder.embed(graph)`` but **layer by layer in node chunks**, entirely in
numpy (no autodiff graph):

* at any moment only the previous layer's activations, the layer being
  filled, and one chunk-sized temporary are alive — a full autodiff forward
  instead keeps every intermediate of every layer reachable until the output
  tensor is dropped;
* each chunk touches only its own rows of the cached normalized propagation
  CSR (GCN) or its own incoming edges / attention rows (GAT), so the
  per-chunk working set is bounded by ``chunk_size`` rather than ``N``.

The encoder contract is the duck-typed ``layerwise_plan(graph)`` method
(implemented by :class:`repro.gnn.GCNEncoder` and
:class:`repro.gnn.GATEncoder` for both the sparse and the dense backend),
returning ordered *steps* with::

    step.out_dim                       # layer output width
    step.prepare(h, chunk_size)        # per-layer precompute (small buffers)
    step.compute(h, start, stop)       # output rows [start, stop)
    step.finish()                      # release per-layer buffers

Parity with ``encoder.embed`` is tested at 1e-8 for GCN and GAT on both
backends, including chunk sizes that do not divide ``N``, ``chunk_size=1``,
and ``chunk_size > N`` (``tests/inference/test_layerwise.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..graphs.graph import Graph
from ..obs import REGISTRY, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..parallel import ParallelExecutor

#: Default number of node rows computed per chunk.
DEFAULT_CHUNK_SIZE = 4096

_LAYER_SECONDS = REGISTRY.histogram(
    "repro_inference_layer_seconds",
    "Wall time of one layer of chunked layer-wise inference.")


class LayerwiseInference:
    """Chunked layer-by-layer evaluation of a GNN encoder on all nodes.

    With a :class:`~repro.parallel.ParallelExecutor` attached, each layer's
    node chunks — the exact ranges the serial loop iterates — are dispatched
    as independent items and written back in order, so the result is
    bit-identical to the serial pass.  ``step.prepare`` runs in the parent
    before dispatch (pre-fork, so process workers inherit the prepared
    buffers copy-on-write) and chunks only read the shared ``(step, h)``
    payload.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 parallel: Optional["ParallelExecutor"] = None):
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        #: Optional multi-core dispatcher; ``None`` keeps the serial loop.
        self.parallel = parallel

    def run(self, encoder, graph: Graph) -> np.ndarray:
        """Deterministic all-node embeddings, equal to ``encoder.embed``."""
        plan = getattr(encoder, "layerwise_plan", None)
        if plan is None:
            raise TypeError(
                f"encoder {type(encoder).__name__} does not implement "
                "layerwise_plan(graph); use mode='full' inference instead"
            )
        steps = plan(graph)
        num_nodes = graph.num_nodes
        h = np.asarray(graph.features, dtype=np.float64)
        executor = self.parallel
        use_parallel = (executor is not None and not executor.is_serial
                        and num_nodes > self.chunk_size)
        for index, step in enumerate(steps):
            with _LAYER_SECONDS.time(), \
                    span("inference.layer", layer=index):
                step.prepare(h, self.chunk_size)
                out = np.empty((num_nodes, step.out_dim), dtype=np.float64)
                ranges = [(start, min(start + self.chunk_size, num_nodes))
                          for start in range(0, num_nodes, self.chunk_size)]
                if use_parallel:
                    from ..parallel.workers import layerwise_chunk

                    blocks = executor.map(
                        layerwise_chunk, ranges, payload=(step, h),
                        label="inference.layerwise")
                    for (start, stop), block in zip(ranges, blocks):
                        out[start:stop] = block
                else:
                    for start, stop in ranges:
                        out[start:stop] = step.compute(h, start, stop)
                step.finish()
                h = out
        return h
