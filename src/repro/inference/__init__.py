"""Layer-wise inference engine with a versioned embedding cache.

The paper's two-stage procedure (embed all nodes -> K-Means -> Hungarian
alignment) makes cheap, repeated full-node embedding the backbone of
OpenIMA and every two-stage baseline.  This package bounds that cost in two
orthogonal ways:

* :class:`LayerwiseInference` — deterministic all-node embeddings computed
  layer by layer in node chunks (GCN and GAT, sparse and dense backends),
  materializing one layer's activations instead of a whole autodiff
  forward; parity with ``encoder.embed`` at 1e-8.
* :class:`EmbeddingCache` / :class:`ParamVersion` — reuse one embedding pass
  across pseudo-label refresh, evaluation, and prediction while the encoder
  parameters are unchanged (the version counter is bumped by every
  optimizer step and ``load_state_dict``, so stale reuse is impossible).

:class:`InferenceEngine` combines both behind
:class:`repro.core.config.InferenceConfig` (``mode=auto|full|layerwise``,
``chunk_size``, ``cache``) and is threaded through ``TrainerConfig`` ->
``GraphTrainer`` -> ``repro.api.OpenWorldClassifier`` -> the ``repro embed``
and ``repro predict`` CLI subcommands.
"""

# Local modules first: repro.core.trainer does `from ..inference import
# InferenceEngine` while repro.core is initializing, so the engine must be
# bound on this package before the re-export below touches repro.core.
from .cache import EmbeddingCache, ParamVersion
from .engine import InferenceEngine
from .layerwise import DEFAULT_CHUNK_SIZE, LayerwiseInference

from ..core.config import INFERENCE_MODES, InferenceConfig  # after-docstring import kept below the lazy-import machinery

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "EmbeddingCache",
    "INFERENCE_MODES",
    "InferenceConfig",
    "InferenceEngine",
    "LayerwiseInference",
    "ParamVersion",
]
