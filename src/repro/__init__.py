"""OpenIMA: Open-World Semi-Supervised Learning for Node Classification.

A full, from-scratch reproduction of Wang et al. (ICDE 2024).  The package is
organised as:

* :mod:`repro.nn` — numpy autodiff engine, layers, optimizers (PyTorch stand-in).
* :mod:`repro.graphs` — graph containers, utilities, synthetic generators.
* :mod:`repro.datasets` — synthetic profiles of the paper's seven benchmarks
  and the open-world train/val/test split protocol.
* :mod:`repro.gnn` — GAT / GCN encoders and classification heads.
* :mod:`repro.clustering` — K-Means (full, mini-batch, semi-supervised) and
  the silhouette coefficient.
* :mod:`repro.assignment` — Hungarian algorithm and cluster-class alignment.
* :mod:`repro.metrics` — open-world accuracy, variance imbalance/separation
  rates, and the SC&ACC model-selection metric.
* :mod:`repro.core` — the OpenIMA method itself (BPCL losses, bias-reduced
  pseudo labels, two-stage inference, trainer).
* :mod:`repro.baselines` — every baseline from the paper's evaluation.
* :mod:`repro.theory` — the two-Gaussian K-Means model and Theorem 1 checks.
* :mod:`repro.experiments` — runners and builders for every table and figure.

Quickstart::

    from repro.datasets import load_open_world_dataset
    from repro.core import OpenIMAConfig, train_openima

    dataset = load_open_world_dataset("coauthor-cs", seed=0, scale=0.3)
    trainer = train_openima(dataset, OpenIMAConfig())
    print(trainer.evaluate())
"""

from . import (
    assignment,
    baselines,
    clustering,
    core,
    datasets,
    experiments,
    gnn,
    graphs,
    metrics,
    nn,
    theory,
)
from .core import OpenIMAConfig, OpenIMATrainer, train_openima
from .datasets import load_open_world_dataset

__version__ = "1.0.0"

__all__ = [
    "nn",
    "graphs",
    "datasets",
    "gnn",
    "clustering",
    "assignment",
    "metrics",
    "core",
    "baselines",
    "theory",
    "experiments",
    "OpenIMAConfig",
    "OpenIMATrainer",
    "train_openima",
    "load_open_world_dataset",
    "__version__",
]
