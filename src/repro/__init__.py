"""OpenIMA: Open-World Semi-Supervised Learning for Node Classification.

A full, from-scratch reproduction of Wang et al. (ICDE 2024).  The package is
organised as:

* :mod:`repro.nn` — numpy autodiff engine, layers, optimizers (PyTorch stand-in).
* :mod:`repro.graphs` — graph containers, utilities, synthetic generators.
* :mod:`repro.datasets` — synthetic profiles of the paper's seven benchmarks
  and the open-world train/val/test split protocol.
* :mod:`repro.gnn` — GAT / GCN encoders and classification heads.
* :mod:`repro.inference` — layer-wise all-node inference engine with a
  parameter-version-keyed embedding cache.
* :mod:`repro.clustering` — K-Means (full, mini-batch, semi-supervised), the
  strategy-based clustering engine (exact/minibatch/online refresh), and
  clustering-quality metrics (silhouette, NMI/ARI).
* :mod:`repro.assignment` — Hungarian algorithm and cluster-class alignment.
* :mod:`repro.metrics` — open-world accuracy, variance imbalance/separation
  rates, and the SC&ACC model-selection metric.
* :mod:`repro.core` — the OpenIMA method itself (BPCL losses, bias-reduced
  pseudo labels, two-stage inference, trainer).
* :mod:`repro.baselines` — every baseline from the paper's evaluation.
* :mod:`repro.theory` — the two-Gaussian K-Means model and Theorem 1 checks.
* :mod:`repro.experiments` — runners and builders for every table and figure.
* :mod:`repro.api` — estimator-style facade (``OpenWorldClassifier``) with
  versioned save/load checkpoints and resumable training.
* :mod:`repro.analysis` — invariant linter (``repro lint``, rules R1-R9)
  and opt-in runtime sanitizers (``REPRO_SANITIZE=1``) for the
  concurrency/determinism/cache contracts.

Quickstart::

    from repro.api import OpenWorldClassifier

    clf = OpenWorldClassifier("openima")
    clf.fit("coauthor-cs", scale=0.3)
    print(clf.evaluate())
"""

from . import (
    analysis,
    api,
    assignment,
    baselines,
    clustering,
    core,
    datasets,
    experiments,
    gnn,
    graphs,
    inference,
    metrics,
    nn,
    theory,
)
from .api import OpenWorldClassifier
from .core import OpenIMAConfig, OpenIMATrainer, train_openima
from .datasets import load_open_world_dataset

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "api",
    "nn",
    "graphs",
    "datasets",
    "gnn",
    "inference",
    "clustering",
    "assignment",
    "metrics",
    "core",
    "baselines",
    "theory",
    "experiments",
    "OpenWorldClassifier",
    "OpenIMAConfig",
    "OpenIMATrainer",
    "train_openima",
    "load_open_world_dataset",
    "__version__",
]
