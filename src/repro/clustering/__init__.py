"""Clustering algorithms, the pluggable refresh engine, and quality metrics."""

from .engine import ClusteringEngine, ClusteringOutcome
from .kmeans import (
    KMeans,
    KMeansResult,
    MiniBatchKMeans,
    cluster_embeddings,
    kmeans_plus_plus_init,
)
from .metrics import (
    adjusted_rand_index,
    inertia,
    normalized_mutual_information,
    pairwise_distances,
    silhouette_samples,
    silhouette_score,
)
from .semi_kmeans import SemiSupervisedKMeans

__all__ = [
    "ClusteringEngine",
    "ClusteringOutcome",
    "KMeans",
    "MiniBatchKMeans",
    "SemiSupervisedKMeans",
    "KMeansResult",
    "cluster_embeddings",
    "kmeans_plus_plus_init",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "silhouette_score",
    "silhouette_samples",
    "pairwise_distances",
    "inertia",
]
