"""Clustering algorithms and clustering-quality metrics."""

from .kmeans import (
    KMeans,
    KMeansResult,
    MiniBatchKMeans,
    cluster_embeddings,
    kmeans_plus_plus_init,
)
from .metrics import inertia, pairwise_distances, silhouette_samples, silhouette_score
from .semi_kmeans import SemiSupervisedKMeans

__all__ = [
    "KMeans",
    "MiniBatchKMeans",
    "SemiSupervisedKMeans",
    "KMeansResult",
    "cluster_embeddings",
    "kmeans_plus_plus_init",
    "silhouette_score",
    "silhouette_samples",
    "pairwise_distances",
    "inertia",
]
