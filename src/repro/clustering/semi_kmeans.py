"""Semi-supervised (constrained) K-Means, as used in GCD (Vaze et al., 2022).

The paper compares against the GCD-style semi-supervised K-Means, which forces
labeled samples of the same class into the same cluster during the assignment
step, but finds that plain K-Means works better on the graph benchmarks.  We
implement it so the comparison can be reproduced (DESIGN.md ablation list).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .kmeans import (
    KMeansResult,
    _assign_labels,
    _cluster_sums,
    _pairwise_sq_distances,
    kmeans_plus_plus_init,
)


def _reseed_from_farthest(data: np.ndarray, assigned_sq: np.ndarray,
                          count: int, rng: np.random.Generator) -> np.ndarray:
    """``count`` distinct replacement centers from the farthest-point pool.

    The pool is the ``4 * count`` samples farthest from their assigned
    center (distinct picks, so two empty clusters never collapse onto the
    same point); the draw uses the supplied clustering RNG, never numpy's
    global state.  In the degenerate case of more empty clusters than
    samples the draw falls back to sampling with replacement — duplicate
    centers are unavoidable when ``n < num_clusters``.
    """
    pool_size = int(min(data.shape[0], max(count, 4 * count)))
    pool = np.argsort(-assigned_sq, kind="stable")[:pool_size]
    chosen = rng.choice(pool, size=count, replace=pool.shape[0] < count)
    return data[chosen]


class SemiSupervisedKMeans:
    """K-Means whose labeled samples are pinned to class-specific clusters.

    The first ``num_seen`` clusters correspond to the seen classes (in the
    order given by ``seen_classes``); labeled samples are always assigned to
    the cluster of their own class.  Unlabeled samples are assigned to the
    nearest of all clusters, exactly as in GCD.
    """

    def __init__(self, num_clusters: int, max_iter: int = 100, tol: float = 1e-6,
                 seed: int = 0, chunk_size: Optional[int] = None):
        self.num_clusters = num_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.chunk_size = chunk_size

    def fit(
        self,
        data: np.ndarray,
        labeled_indices: np.ndarray,
        labeled_classes: np.ndarray,
        seen_classes: Optional[np.ndarray] = None,
    ) -> KMeansResult:
        """Cluster ``data`` with labeled samples constrained to their class cluster.

        Parameters
        ----------
        data:
            Sample matrix of shape (n, d) covering labeled and unlabeled points.
        labeled_indices:
            Row indices of the labeled samples.
        labeled_classes:
            Class of each labeled sample (same length as ``labeled_indices``).
        seen_classes:
            The distinct seen classes; defaults to the sorted unique labels.
        """
        data = np.asarray(data, dtype=np.float64)
        labeled_indices = np.asarray(labeled_indices, dtype=np.int64)
        labeled_classes = np.asarray(labeled_classes, dtype=np.int64)
        if labeled_indices.shape[0] != labeled_classes.shape[0]:
            raise ValueError("labeled_indices and labeled_classes must align")
        if seen_classes is None:
            seen_classes = np.unique(labeled_classes)
        seen_classes = np.asarray(seen_classes, dtype=np.int64)
        if seen_classes.shape[0] > self.num_clusters:
            raise ValueError("more seen classes than clusters")

        class_to_cluster = {cls: idx for idx, cls in enumerate(seen_classes)}
        pinned = np.array([class_to_cluster[cls] for cls in labeled_classes], dtype=np.int64)

        rng = np.random.default_rng(self.seed)
        centers = kmeans_plus_plus_init(data, self.num_clusters, rng)
        # Initialize the seen-class clusters at the labeled class means.
        for cls, cluster in class_to_cluster.items():
            members = data[labeled_indices[labeled_classes == cls]]
            if members.shape[0]:
                centers[cluster] = members.mean(axis=0)

        labels = np.zeros(data.shape[0], dtype=np.int64)
        _iteration = 0
        for _iteration in range(1, self.max_iter + 1):
            labels, min_sq = _assign_labels(data, centers, self.chunk_size)
            labels[labeled_indices] = pinned
            sums, counts = _cluster_sums(data, labels, self.num_clusters)
            new_centers = centers.copy()
            nonempty = counts > 0
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            if not nonempty.all():
                # Re-seed empty clusters from the farthest-point pool using
                # the clustering RNG, so the result stays deterministic in
                # ``seed`` and independent of numpy's global state.  (They
                # previously kept their stale centers and could stay empty
                # forever.)
                empty = np.where(~nonempty)[0]
                new_centers[empty] = _reseed_from_farthest(
                    data, min_sq, empty.shape[0], rng)
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            if shift <= self.tol:
                break
        labels, assigned_sq = _assign_labels(data, centers, self.chunk_size)
        labels[labeled_indices] = pinned
        if labeled_indices.size:
            # Pinned samples pay the distance to their class cluster, not
            # to the nearest center.
            assigned_sq[labeled_indices] = _pairwise_sq_distances(
                data[labeled_indices], centers
            )[np.arange(labeled_indices.shape[0]), pinned]
        inertia = float(assigned_sq.sum())
        return KMeansResult(labels=labels, centers=centers, inertia=inertia, n_iter=_iteration)
