"""Pluggable clustering engine: strategy-based refresh with versioned state.

Every pseudo-label refresh and two-stage prediction used to call the Lloyd
K-Means path directly — an O(n * k * d * iters) scan over all N embeddings
per refresh, and the last stage wired as bare function calls rather than a
configured subsystem.  :class:`ClusteringEngine` puts the stage behind
:class:`repro.core.config.ClusteringConfig` with three strategies sharing one
interface:

``exact``
    The historical path (:class:`~repro.clustering.kmeans.KMeans` with
    k-means++ restarts, or Sculley MiniBatch-KMeans when the trainer's
    legacy ``mini_batch_kmeans`` flag is set).  With ``warm_start`` off this
    is bit-identical to the pre-engine refresh at the same seed.

``minibatch``
    Fits MiniBatch-KMeans on at most ``sample_size`` sampled embeddings,
    then runs one full chunked assignment pass — O(sample * k * d * iters +
    n * k * d) instead of O(n * k * d * iters).

``online``
    Streams Sculley-style convex centroid updates over embedding chunks
    (the same row-chunking discipline as the layer-wise inference engine)
    and carries both centroids and running cluster counts across refreshes,
    so each refresh costs one streaming update pass plus one assignment
    pass — two O(n * k * d) scans that refine the previous clustering
    instead of re-running Lloyd iterations from scratch.

The engine has two entry points with different statefulness contracts:

* :meth:`refresh` — the *training-loop* path (pseudo-label refresh).  It is
  stateful: warm-started centroids are carried between calls, the persistent
  RNG advances, and a ``refresh_tolerance`` short-circuit keyed on
  ``Module.parameter_version()`` downgrades a refresh to a reassign-only
  pass when the encoder has barely moved since the last fit.
* :meth:`cluster` — the *inference* path (two-stage prediction, baseline
  OOD post-clustering).  It is stateless and deterministic in its ``seed``
  argument: calling it never reads or mutates the warm-start state, so
  mid-training evaluation callbacks cannot perturb the training trajectory.

:meth:`state_dict` / :meth:`load_state_dict` round-trip the carried state
(centroids, online counts, RNG, and the last-fit parameter version stored
*relative* to the current one, so resumed checkpoints keep the tolerance
short-circuit exact even though version counters restart on load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ..obs import REGISTRY, span
from .kmeans import (
    KMeans,
    KMeansResult,
    MiniBatchKMeans,
    _assign_labels,
    _sculley_update,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import ClusteringConfig
    from ..parallel import ParallelExecutor

_REFRESH_SECONDS = REGISTRY.histogram(
    "repro_cluster_refresh_seconds",
    "Wall time of one clustering refresh, by strategy.",
    labelnames=("strategy",))
_REFRESHES = REGISTRY.counter(
    "repro_cluster_refreshes_total",
    "Clustering refreshes, by kind (refit vs reassign-only short-circuit).",
    labelnames=("kind",))
_ITERATIONS = REGISTRY.histogram(
    "repro_cluster_iterations",
    "Lloyd/Sculley iterations run by one refresh's fit.",
    buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256))
_BIRTHS = REGISTRY.counter(
    "repro_cluster_births_total",
    "Clusters born via the streaming silhouette trigger.")

#: Discount applied to the online strategy's running cluster counts at the
#: start of every warm refresh.  Without it the Sculley learning rate decays
#: toward zero across refreshes and the centroids freeze while the embeddings
#: are still drifting during training; halving the accumulated mass keeps the
#: update responsive while still favoring the carried centroids.
ONLINE_COUNT_DECAY = 0.5


@dataclass
class ClusteringOutcome:
    """One engine refresh: the clustering plus how it was produced.

    Attributes
    ----------
    result:
        The clustering itself (labels, centers, inertia).
    strategy:
        The configured strategy that produced it.
    refitted:
        ``False`` when the ``refresh_tolerance`` short-circuit fired and the
        refresh only reassigned points to the carried centroids.
    version_delta:
        Parameter-version drift since the engine's last full fit (``None``
        when no version was supplied or no fit has happened yet).
    births:
        Ids of clusters born during this refresh (``config.birth_threshold``;
        empty for every non-birthing refresh).
    """

    result: KMeansResult
    strategy: str
    refitted: bool
    version_delta: Optional[int] = None
    births: Tuple[int, ...] = ()


class ClusteringEngine:
    """Strategy-based clustering refresh behind a :class:`ClusteringConfig`.

    Parameters
    ----------
    config:
        The strategy configuration; ``None`` uses the defaults (``exact``).
    seed:
        Trainer seed, used when ``config.seed`` is ``None``.
    mini_batch / batch_size:
        The trainer's legacy ``mini_batch_kmeans`` / ``kmeans_batch_size``
        flags; the ``exact`` strategy honors them so large-scale profiles
        keep their historical Sculley MiniBatch path bit-for-bit.
    """

    def __init__(self, config: Optional["ClusteringConfig"] = None, *,
                 seed: int = 0, mini_batch: bool = False, batch_size: int = 1024,
                 parallel: Optional["ParallelExecutor"] = None):
        if config is None:
            # Imported lazily: repro.core.trainer imports this package, so a
            # module-level import of repro.core.config would be circular.
            from ..core.config import ClusteringConfig

            config = ClusteringConfig()
        self.config = config
        #: Optional multi-core dispatcher for the full assignment pass
        #: (``repro.parallel``); ``None`` keeps the serial path.  Swappable
        #: in place — it holds no clustering state.
        self.parallel = parallel
        self.base_seed = int(seed if config.seed is None else config.seed)
        self.legacy_mini_batch = bool(mini_batch)
        self.legacy_batch_size = int(batch_size)
        #: Persistent RNG driving the stateful refresh path (minibatch
        #: sampling, online streaming); checkpointed via state_dict.
        self.rng = np.random.default_rng(self.base_seed)
        self._centers: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None
        self._num_clusters: Optional[int] = None
        self._last_fit_version: Optional[int] = None
        #: Total refresh() calls / refresh() calls that ran a full fit.
        self.refresh_count = 0
        self.refit_count = 0
        #: Clusters born via the silhouette trigger (birth_threshold).
        self.birth_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def carries_state(self) -> bool:
        """Whether refreshes carry centroids forward (warm start / online)."""
        return bool(self.config.warm_start) or self.config.strategy == "online"

    @property
    def centers(self) -> Optional[np.ndarray]:  # returns-frozen
        """The carried centroids (read-only view), or ``None``.

        The view is non-writeable so a caller cannot silently corrupt the
        warm-start state; copy before mutating.
        """
        if self._centers is None:
            return None
        view = self._centers.view()
        view.setflags(write=False)
        return view

    # ------------------------------------------------------------------
    # Stateful refresh (training loop)
    # ------------------------------------------------------------------
    def refresh(self, embeddings: np.ndarray, num_clusters: int,
                parameter_version: Optional[int] = None,
                allow_birth: bool = False) -> ClusteringOutcome:
        """Cluster ``embeddings`` for a pseudo-label refresh.

        ``parameter_version`` is the encoder's
        :meth:`~repro.nn.layers.Module.parameter_version` counter; together
        with ``config.refresh_tolerance`` it decides whether a carried
        clustering is still fresh enough to skip the re-fit.

        ``allow_birth`` opts this call into the streaming cluster-birth
        check (``config.birth_threshold``) and makes ``num_clusters`` a
        *floor* rather than an exact count.  The training loop never sets
        it: pseudo-label generation aligns exactly ``num_clusters`` cluster
        ids, so a mid-training birth would hand it an id it cannot map.
        """
        strategy = self.config.strategy
        with _REFRESH_SECONDS.time(strategy=strategy), \
                span("cluster.refresh", strategy=strategy):
            outcome = self._refresh_inner(embeddings, num_clusters,
                                          parameter_version, allow_birth)
        _REFRESHES.inc(kind="refit" if outcome.refitted else "reassign")
        _ITERATIONS.observe(outcome.result.n_iter)
        if outcome.births:
            _BIRTHS.inc(len(outcome.births))
        return outcome

    def _refresh_inner(self, embeddings: np.ndarray, num_clusters: int,
                       parameter_version: Optional[int],
                       allow_birth: bool) -> ClusteringOutcome:
        data = np.asarray(embeddings, dtype=np.float64)
        num_clusters = int(num_clusters)
        allow_birth = allow_birth and self.config.birth_threshold is not None
        if (allow_birth
                and self._num_clusters is not None
                and self._num_clusters > num_clusters):
            # Births persist: once the engine has grown past the requested
            # cluster count, the request is a floor, not a reset.
            num_clusters = self._num_clusters
        state_valid = (
            self.carries_state
            and self._centers is not None
            and self._num_clusters == num_clusters
            and self._centers.shape[1] == data.shape[1]
        )
        version_delta: Optional[int] = None
        if parameter_version is not None and self._last_fit_version is not None:
            version_delta = int(parameter_version) - self._last_fit_version

        if (state_valid and self.config.refresh_tolerance > 0
                and version_delta is not None
                and 0 <= version_delta <= self.config.refresh_tolerance):
            result = self._reassign(data, self._centers)
            self.refresh_count += 1
            return ClusteringOutcome(result, self.config.strategy,
                                     refitted=False, version_delta=version_delta)

        initial = self._centers if state_valid else None
        counts = self._counts if state_valid else None
        result, counts = self._fit(data, num_clusters, initial_centers=initial,
                                   counts=counts, rng=self.rng)
        births: Tuple[int, ...] = ()
        if allow_birth:
            result, counts, births = self._maybe_birth(data, result, counts)
        if self.carries_state:
            self._centers = result.centers.copy()
            self._counts = counts
            self._num_clusters = result.centers.shape[0]
        if parameter_version is not None:
            self._last_fit_version = int(parameter_version)
        self.refresh_count += 1
        self.refit_count += 1
        return ClusteringOutcome(result, self.config.strategy,
                                 refitted=True, version_delta=version_delta,
                                 births=births)

    # ------------------------------------------------------------------
    # Stateless clustering (inference)
    # ------------------------------------------------------------------
    def cluster(self, embeddings: np.ndarray, num_clusters: int,
                seed: Optional[int] = None, n_init: Optional[int] = None,
                mini_batch: Optional[bool] = None,
                initial_centers: Optional[np.ndarray] = None) -> KMeansResult:
        """One-shot clustering under the configured strategy.

        Deterministic in ``seed`` (default: the engine's resolved seed) and
        side-effect free: the warm-start state and persistent RNG are never
        touched, so prediction during training cannot perturb the refresh
        sequence.  ``n_init`` and ``mini_batch`` override the ``exact``
        strategy's restart count / legacy MiniBatch flag, preserving
        bit-compatibility with the historical call sites.
        """
        data = np.asarray(embeddings, dtype=np.float64)
        num_clusters = int(num_clusters)
        seed = self.base_seed if seed is None else int(seed)
        rng = np.random.default_rng(seed)
        strategy = self.config.strategy
        if strategy == "exact":
            return self._exact_fit(data, num_clusters, initial_centers,
                                   seed=seed, n_init=n_init, mini_batch=mini_batch)
        if strategy == "minibatch":
            return self._minibatch_fit(data, num_clusters, initial_centers, rng)
        result, _ = self._online_fit(data, num_clusters, initial_centers, None, rng)
        return result

    # ------------------------------------------------------------------
    # Strategy implementations
    # ------------------------------------------------------------------
    def _fit(self, data: np.ndarray, num_clusters: int,
             initial_centers: Optional[np.ndarray], counts: Optional[np.ndarray],
             rng: np.random.Generator) -> Tuple[KMeansResult, Optional[np.ndarray]]:
        strategy = self.config.strategy
        if strategy == "exact":
            return self._exact_fit(data, num_clusters, initial_centers,
                                   seed=self.base_seed), None
        if strategy == "minibatch":
            return self._minibatch_fit(data, num_clusters, initial_centers, rng), None
        return self._online_fit(data, num_clusters, initial_centers, counts, rng)

    def _exact_fit(self, data: np.ndarray, num_clusters: int,
                   initial_centers: Optional[np.ndarray], seed: int,
                   n_init: Optional[int] = None,
                   mini_batch: Optional[bool] = None) -> KMeansResult:
        use_mini_batch = (self.legacy_mini_batch if mini_batch is None
                          else bool(mini_batch))
        if use_mini_batch:
            return MiniBatchKMeans(
                num_clusters, batch_size=self.legacy_batch_size, seed=seed,
            ).fit(data, initial_centers=initial_centers)
        restarts = 3 if n_init is None else int(n_init)
        return KMeans(num_clusters, seed=seed, n_init=restarts).fit(
            data, initial_centers=initial_centers)

    def _sample_rows(self, data: np.ndarray, num_clusters: int,
                     rng: np.random.Generator) -> np.ndarray:
        """At most ``sample_size`` rows (sorted indices keep data locality)."""
        num_samples = data.shape[0]
        sample_size = min(num_samples, max(int(self.config.sample_size), num_clusters))
        if sample_size >= num_samples:
            return data
        indices = rng.choice(num_samples, size=sample_size, replace=False)
        return data[np.sort(indices)]

    def _cold_start_centers(self, sample: np.ndarray, num_clusters: int,
                            rng: np.random.Generator) -> np.ndarray:
        """Robust initial centroids: best-of-3 short Lloyd runs on a sample.

        O(sample_size * k * d) regardless of n.  A single k-means++ seeding
        misses a cluster often enough (squared-distance weighting is diluted
        by high-dimensional within-cluster noise) that one-init strategies
        land in merged/split optima; three restarts scored by inertia make
        that failure mode cubically unlikely.
        """
        cold_seed = int(rng.integers(np.iinfo(np.int64).max))
        return KMeans(num_clusters, seed=cold_seed, n_init=3,
                      max_iter=10).fit(sample).centers

    def _minibatch_fit(self, data: np.ndarray, num_clusters: int,
                       initial_centers: Optional[np.ndarray],
                       rng: np.random.Generator) -> KMeansResult:
        if data.shape[0] < num_clusters:
            raise ValueError(
                f"cannot form {num_clusters} clusters from {data.shape[0]} samples")
        sample = self._sample_rows(data, num_clusters, rng)
        if initial_centers is None:
            initial_centers = self._cold_start_centers(sample, num_clusters, rng)
        fit_seed = int(rng.integers(np.iinfo(np.int64).max))
        # Starting from Lloyd-warmed (or carried) centers, the Sculley pass
        # only needs ~two epochs over the sample — the default 100 batches
        # would dominate the whole refresh for moderate sample sizes.
        iterations = max(10, -(-2 * sample.shape[0] // self.legacy_batch_size))
        fitted = MiniBatchKMeans(
            num_clusters, batch_size=self.legacy_batch_size, seed=fit_seed,
            max_iter=iterations,
        ).fit(sample, initial_centers=initial_centers)
        if sample is data:
            # No subsampling happened, so the fit's own final assignment
            # already covers every row — rescanning would double the
            # dominant O(n * k * d) post-fit cost.
            return fitted
        return self._reassign(data, fitted.centers)

    def _online_fit(self, data: np.ndarray, num_clusters: int,
                    initial_centers: Optional[np.ndarray],
                    counts: Optional[np.ndarray],
                    rng: np.random.Generator) -> Tuple[KMeansResult, np.ndarray]:
        num_samples = data.shape[0]
        if num_samples < num_clusters:
            raise ValueError(
                f"cannot form {num_clusters} clusters from {num_samples} samples")
        if initial_centers is None:
            # Cold start on a sample: the streaming updates only move
            # centers within their captured region, so the initial topology
            # must already be right (see _cold_start_centers).
            seed_pool = self._sample_rows(data, num_clusters, rng)
            centers = self._cold_start_centers(seed_pool, num_clusters, rng)
            counts = np.zeros(num_clusters, dtype=np.float64)
        else:
            centers = np.array(initial_centers, dtype=np.float64, copy=True)
            counts = (np.zeros(num_clusters, dtype=np.float64) if counts is None
                      else np.asarray(counts, dtype=np.float64).copy())
            counts *= ONLINE_COUNT_DECAY
        chunk = int(self.config.reassign_chunk_size)
        for start in range(0, num_samples, chunk):
            block = data[start: start + chunk]
            assignments, _ = _assign_labels(block, centers)
            _sculley_update(centers, counts, block, assignments, num_clusters)
        return self._reassign(data, centers), counts

    # ------------------------------------------------------------------
    # Cluster birth (streaming open-world)
    # ------------------------------------------------------------------
    def _maybe_birth(self, data: np.ndarray, result: KMeansResult,
                     counts: Optional[np.ndarray]) -> Tuple[KMeansResult, Optional[np.ndarray], Tuple[int, ...]]:
        """Split the worst cluster when its silhouette degrades past the
        threshold (at most one birth per refresh).

        The silhouette is computed on a deterministic ``birth_sample_size``
        subsample (seeded from the persistent RNG, so the trigger
        checkpoints with the engine).  A degraded cluster is split with a
        seeded 2-means over its members; the worst cluster's centroid is
        replaced by one half and the other half becomes a new cluster id,
        the online running counts are divided by member share, and a full
        reassignment republishes every label.
        """
        from .metrics import per_cluster_silhouette

        num_clusters = result.centers.shape[0]
        if (self.config.max_clusters is not None
                and num_clusters >= int(self.config.max_clusters)):
            return result, counts, ()
        sizes = np.bincount(result.labels, minlength=num_clusters)
        scores = per_cluster_silhouette(
            data, result.labels,
            sample_size=int(self.config.birth_sample_size),
            seed=int(self.rng.integers(np.iinfo(np.int64).max)),
        )
        eligible = [(score, cluster) for cluster, score in sorted(scores.items())
                    if sizes[cluster] >= int(self.config.birth_min_size)]
        if not eligible:
            return result, counts, ()
        worst_score, worst = min(eligible)
        if worst_score >= float(self.config.birth_threshold):
            return result, counts, ()

        members = data[result.labels == worst]
        sample = self._sample_rows(members, 2, self.rng)
        split_seed = int(self.rng.integers(np.iinfo(np.int64).max))
        split = KMeans(2, seed=split_seed, n_init=3, max_iter=20).fit(sample)
        centers = np.vstack([result.centers, split.centers[1]])
        centers[worst] = split.centers[0]
        if counts is not None:
            share = float((split.labels == 1).mean())
            counts = np.concatenate([counts, [counts[worst] * share]])
            counts[worst] *= 1.0 - share
        self.birth_count += 1
        return self._reassign(data, centers), counts, (int(num_clusters),)

    def _reassign(self, data: np.ndarray, centers: np.ndarray) -> KMeansResult:
        """Full chunked nearest-center assignment against fixed centroids.

        With a parallel executor attached, the ``reassign_chunk_size``-row
        ranges the serial pass would iterate are dispatched as independent
        items and concatenated in order — each range runs the identical
        distance-block computation, so the result is bit-identical to the
        serial pass (asserted by ``tests/parallel/test_parity.py``).
        """
        chunk = int(self.config.reassign_chunk_size)
        num_samples = data.shape[0]
        executor = self.parallel
        if (executor is not None and not executor.is_serial
                and num_samples > chunk):
            from ..parallel.workers import assign_labels_chunk

            ranges = [(start, min(start + chunk, num_samples))
                      for start in range(0, num_samples, chunk)]
            parts = executor.map(
                assign_labels_chunk, ranges,
                payload=(data, centers, chunk), label="cluster.assign")
            labels = np.concatenate([part[0] for part in parts])
            min_sq = np.concatenate([part[1] for part in parts])
        else:
            labels, min_sq = _assign_labels(data, centers, chunk)
        return KMeansResult(labels=labels,
                            centers=np.array(centers, dtype=np.float64, copy=True),
                            inertia=float(min_sq.sum()), n_iter=0)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self, parameter_version: Optional[int] = None) -> Tuple[dict, dict]:
        """JSON-able metadata plus carried arrays for checkpointing.

        The last-fit parameter version is stored as ``version_behind`` —
        its distance from ``parameter_version`` *now* — because absolute
        version counters do not survive a checkpoint/load cycle
        (``load_state_dict`` bumps every parameter).
        """
        meta = {
            "rng": self.rng.bit_generator.state,
            "refresh_count": int(self.refresh_count),
            "refit_count": int(self.refit_count),
            "birth_count": int(self.birth_count),
            "num_clusters": (None if self._num_clusters is None
                             else int(self._num_clusters)),
            "version_behind": (
                None if (self._last_fit_version is None or parameter_version is None)
                else int(parameter_version) - self._last_fit_version
            ),
        }
        arrays = {}
        if self._centers is not None:
            arrays["centers"] = self._centers.copy()
        if self._counts is not None:
            arrays["counts"] = self._counts.copy()
        return meta, arrays

    def load_state_dict(self, meta: dict, arrays: Optional[dict] = None,
                        parameter_version: Optional[int] = None) -> None:
        """Restore state captured by :meth:`state_dict`."""
        arrays = arrays or {}
        rng_state = meta.get("rng")
        if rng_state is not None:
            self.rng.bit_generator.state = rng_state
        self.refresh_count = int(meta.get("refresh_count", 0))
        self.refit_count = int(meta.get("refit_count", 0))
        self.birth_count = int(meta.get("birth_count", 0))
        num_clusters = meta.get("num_clusters")
        self._num_clusters = None if num_clusters is None else int(num_clusters)
        self._centers = (np.asarray(arrays["centers"], dtype=np.float64).copy()
                         if "centers" in arrays else None)
        self._counts = (np.asarray(arrays["counts"], dtype=np.float64).copy()
                        if "counts" in arrays else None)
        behind = meta.get("version_behind")
        if behind is None or parameter_version is None:
            self._last_fit_version = None
        else:
            self._last_fit_version = int(parameter_version) - int(behind)

    def __repr__(self) -> str:
        return (
            f"ClusteringEngine(strategy={self.config.strategy!r}, "
            f"seed={self.base_seed}, warm={self.carries_state}, "
            f"refreshes={self.refresh_count}, refits={self.refit_count})"
        )
