"""K-Means clustering: full-batch Lloyd iterations and a mini-batch variant.

OpenIMA uses K-Means both for bias-reduced pseudo-label generation during
training and for the two-stage inference step.  The paper uses classic
K-Means (k-means++ seeding) for the five mid-size graphs and mini-batch
K-Means (Sculley, WWW 2010) for ogbn-Arxiv / ogbn-Products.

Scaling model
-------------
The hot paths are fully vectorized:

* Assignment computes squared distances in row chunks of
  ``chunk_size`` samples (default ``_DEFAULT_CHUNK``), bounding peak memory
  at O(chunk_size * k) instead of the O(n * k) full distance matrix while
  keeping BLAS-backed ``data @ centers.T`` throughput; only the per-sample
  argmin / min are retained.
* The centroid update accumulates every cluster in one
  ``np.add.at`` scatter-add plus a ``bincount`` — O(n * d) with no Python
  loop over clusters (previously O(k) passes over the data).

One Lloyd iteration is therefore O(n * k * d) FLOPs and
O(chunk_size * k + k * d) extra memory for any ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """Outcome of a K-Means run.

    Attributes
    ----------
    labels:
        Cluster assignment per sample, shape (n,).
    centers:
        Cluster centroids, shape (k, d).
    inertia:
        Sum of squared distances of samples to their assigned center.
    n_iter:
        Number of Lloyd iterations executed.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iter: int

    def distances_to_center(self, data: np.ndarray) -> np.ndarray:
        """Euclidean distance of each sample to its assigned centroid."""
        diffs = data - self.centers[self.labels]
        return np.linalg.norm(diffs, axis=1)


def _pairwise_sq_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between every sample and every center."""
    data_sq = (data ** 2).sum(axis=1, keepdims=True)
    centers_sq = (centers ** 2).sum(axis=1)
    cross = data @ centers.T
    return np.maximum(data_sq + centers_sq - 2.0 * cross, 0.0)


#: Row-chunk size for the memory-bounded assignment step; at the default the
#: temporary distance block stays below ~8 MB for k <= 64 centers.
_DEFAULT_CHUNK = 16384


def _assign_labels(data: np.ndarray, centers: np.ndarray,
                   chunk_size: Optional[int] = None) -> tuple:
    """Nearest-center assignment with chunked distance computation.

    Returns ``(labels, min_sq_distances)`` while never materializing more
    than a ``chunk_size x k`` distance block.
    """
    if chunk_size is not None and chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk = chunk_size if chunk_size is not None else _DEFAULT_CHUNK
    num_samples = data.shape[0]
    labels = np.empty(num_samples, dtype=np.int64)
    min_sq = np.empty(num_samples, dtype=np.float64)
    for start in range(0, num_samples, chunk):
        stop = min(start + chunk, num_samples)
        block = _pairwise_sq_distances(data[start:stop], centers)
        block_labels = block.argmin(axis=1)
        labels[start:stop] = block_labels
        min_sq[start:stop] = block[np.arange(stop - start), block_labels]
    return labels, min_sq


def _cluster_sums(data: np.ndarray, labels: np.ndarray, num_clusters: int) -> tuple:
    """Per-cluster feature sums and member counts in one scatter-add pass."""
    sums = np.zeros((num_clusters, data.shape[1]), dtype=np.float64)
    np.add.at(sums, labels, data)
    counts = np.bincount(labels, minlength=num_clusters).astype(np.float64)
    return sums, counts


def _sculley_update(centers: np.ndarray, counts: np.ndarray, batch: np.ndarray,
                    assignments: np.ndarray, num_clusters: int) -> None:
    """Sculley's per-center convex update, applied to ``centers`` in place.

    ``counts`` accumulates across batches and the learning rate is the
    batch share of the running count; every non-empty cluster is updated at
    once.  Shared by :class:`MiniBatchKMeans` and the clustering engine's
    ``online`` streaming strategy, so the numerically sensitive update rule
    has exactly one implementation.
    """
    sums, batch_counts = _cluster_sums(batch, assignments, num_clusters)
    updated = batch_counts > 0
    counts[updated] += batch_counts[updated]
    rate = batch_counts[updated] / counts[updated]
    means = sums[updated] / batch_counts[updated, None]
    centers[updated] = (1.0 - rate[:, None]) * centers[updated] + \
        rate[:, None] * means


def kmeans_plus_plus_init(data: np.ndarray, num_clusters: int,
                          rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, SODA 2007)."""
    num_samples = data.shape[0]
    centers = np.empty((num_clusters, data.shape[1]))
    first = rng.integers(num_samples)
    centers[0] = data[first]
    closest_sq = _pairwise_sq_distances(data, centers[:1]).ravel()
    for index in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centers: pick randomly.
            choice = rng.integers(num_samples)
        else:
            probabilities = closest_sq / total
            choice = rng.choice(num_samples, p=probabilities)
        centers[index] = data[choice]
        new_sq = _pairwise_sq_distances(data, centers[index: index + 1]).ravel()
        closest_sq = np.minimum(closest_sq, new_sq)
    return centers


class KMeans:
    """Full-batch K-Means with k-means++ initialization and multiple restarts."""

    def __init__(self, num_clusters: int, max_iter: int = 100, tol: float = 1e-6,
                 n_init: int = 3, seed: int = 0, chunk_size: Optional[int] = None):
        if num_clusters < 1:
            raise ValueError("num_clusters must be positive")
        self.num_clusters = num_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.seed = seed
        self.chunk_size = chunk_size

    def fit(self, data: np.ndarray, initial_centers: Optional[np.ndarray] = None) -> KMeansResult:
        """Run K-Means and return the best restart by inertia."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be a 2-D array (samples x features)")
        if data.shape[0] < self.num_clusters:
            raise ValueError(
                f"cannot form {self.num_clusters} clusters from {data.shape[0]} samples"
            )
        rng = np.random.default_rng(self.seed)
        best: Optional[KMeansResult] = None
        restarts = 1 if initial_centers is not None else self.n_init
        for _ in range(restarts):
            if initial_centers is not None:
                centers = np.array(initial_centers, dtype=np.float64, copy=True)
            else:
                centers = kmeans_plus_plus_init(data, self.num_clusters, rng)
            result = self._lloyd(data, centers)
            if best is None or result.inertia < best.inertia:
                best = result
        return best

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).labels

    def _lloyd(self, data: np.ndarray, centers: np.ndarray) -> KMeansResult:
        labels = np.zeros(data.shape[0], dtype=np.int64)
        _iteration = 0
        for _iteration in range(1, self.max_iter + 1):
            labels, min_sq = _assign_labels(data, centers, self.chunk_size)
            sums, counts = _cluster_sums(data, labels, self.num_clusters)
            new_centers = centers.copy()
            nonempty = counts > 0
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            if not nonempty.all():
                # Re-seed empty clusters at the point farthest from its center.
                new_centers[~nonempty] = data[min_sq.argmax()]
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            if shift <= self.tol:
                break
        labels, min_sq = _assign_labels(data, centers, self.chunk_size)
        inertia = float(min_sq.sum())
        return KMeansResult(labels=labels, centers=centers, inertia=inertia, n_iter=_iteration)


class MiniBatchKMeans:
    """Mini-batch K-Means (Sculley, WWW 2010) for the large-graph profiles."""

    def __init__(self, num_clusters: int, batch_size: int = 1024, max_iter: int = 100,
                 seed: int = 0, chunk_size: Optional[int] = None):
        self.num_clusters = num_clusters
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.seed = seed
        self.chunk_size = chunk_size

    def fit(self, data: np.ndarray,
            initial_centers: Optional[np.ndarray] = None) -> KMeansResult:
        data = np.asarray(data, dtype=np.float64)
        if data.shape[0] < self.num_clusters:
            raise ValueError(
                f"cannot form {self.num_clusters} clusters from {data.shape[0]} samples"
            )
        rng = np.random.default_rng(self.seed)
        if initial_centers is not None:
            centers = np.array(initial_centers, dtype=np.float64, copy=True)
        else:
            centers = kmeans_plus_plus_init(data, self.num_clusters, rng)
        counts = np.zeros(self.num_clusters)
        _iteration = 0
        for _iteration in range(1, self.max_iter + 1):
            batch_idx = rng.choice(data.shape[0], size=min(self.batch_size, data.shape[0]),
                                   replace=False)
            batch = data[batch_idx]
            assignments, _ = _assign_labels(batch, centers, self.chunk_size)
            _sculley_update(centers, counts, batch, assignments, self.num_clusters)
        labels, min_sq = _assign_labels(data, centers, self.chunk_size)
        inertia = float(min_sq.sum())
        return KMeansResult(labels=labels, centers=centers, inertia=inertia, n_iter=_iteration)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).labels


def cluster_embeddings(embeddings: np.ndarray, num_clusters: int, seed: int = 0,
                       mini_batch: bool = False, batch_size: int = 1024) -> KMeansResult:
    """Convenience wrapper choosing between K-Means and mini-batch K-Means."""
    if mini_batch:
        return MiniBatchKMeans(num_clusters, batch_size=batch_size, seed=seed).fit(embeddings)
    return KMeans(num_clusters, seed=seed).fit(embeddings)
