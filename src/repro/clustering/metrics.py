"""Clustering quality metrics: silhouette coefficient and inertia helpers.

The silhouette coefficient is one half of the paper's SC&ACC model-selection
metric (Section V-A) and is also used to roughly estimate the number of novel
classes (Section V-E).
"""

from __future__ import annotations

import numpy as np


def pairwise_distances(data: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix between all rows of ``data``."""
    sq = (data ** 2).sum(axis=1)
    cross = data @ data.T
    dist_sq = np.maximum(sq[:, None] + sq[None, :] - 2.0 * cross, 0.0)
    return np.sqrt(dist_sq)


def silhouette_samples(data: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample silhouette values s(i) = (b(i) - a(i)) / max(a(i), b(i))."""
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if data.shape[0] != labels.shape[0]:
        raise ValueError("data and labels must have the same length")
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise ValueError("silhouette requires at least two clusters")
    distances = pairwise_distances(data)
    n = data.shape[0]
    scores = np.zeros(n)
    cluster_masks = {c: labels == c for c in unique}
    for i in range(n):
        own = cluster_masks[labels[i]].copy()
        own[i] = False
        own_count = own.sum()
        if own_count == 0:
            scores[i] = 0.0
            continue
        a_i = distances[i, own].mean()
        b_i = np.inf
        for c in unique:
            if c == labels[i]:
                continue
            other = cluster_masks[c]
            if other.sum() == 0:
                continue
            b_i = min(b_i, distances[i, other].mean())
        denom = max(a_i, b_i)
        scores[i] = 0.0 if denom == 0 else (b_i - a_i) / denom
    return scores


def silhouette_score(data: np.ndarray, labels: np.ndarray, sample_size: int | None = 2000,
                     seed: int = 0) -> float:
    """Mean silhouette coefficient, optionally computed on a random subsample.

    The O(n^2) distance matrix makes the exact score expensive on large
    graphs; the paper's own large-graph runs would face the same issue, so we
    subsample (deterministically) above ``sample_size`` points.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if sample_size is not None and data.shape[0] > sample_size:
        rng = np.random.default_rng(seed)
        idx = rng.choice(data.shape[0], size=sample_size, replace=False)
        data, labels = data[idx], labels[idx]
        if np.unique(labels).shape[0] < 2:
            return 0.0
    return float(silhouette_samples(data, labels).mean())


def inertia(data: np.ndarray, labels: np.ndarray, centers: np.ndarray) -> float:
    """Sum of squared distances of samples to their assigned centers."""
    diffs = data - centers[labels]
    return float((diffs ** 2).sum())
