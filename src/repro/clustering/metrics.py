"""Clustering quality metrics: silhouette, NMI/ARI, and inertia helpers.

The silhouette coefficient is one half of the paper's SC&ACC model-selection
metric (Section V-A) and is also used to roughly estimate the number of novel
classes (Section V-E).  NMI/ARI compare two labelings — the clustering-engine
parity tests score the approximate strategies (minibatch/online) against the
exact assignment with them.  Degenerate labelings (a single cluster, or all
singletons) follow the sklearn conventions: identical trivial partitions
score 1.0, a trivial partition against a non-trivial one scores 0.0 — never
a division by zero.
"""

from __future__ import annotations

import numpy as np


def pairwise_distances(data: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix between all rows of ``data``."""
    sq = (data ** 2).sum(axis=1)
    cross = data @ data.T
    dist_sq = np.maximum(sq[:, None] + sq[None, :] - 2.0 * cross, 0.0)
    return np.sqrt(dist_sq)


def silhouette_samples(data: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample silhouette values s(i) = (b(i) - a(i)) / max(a(i), b(i))."""
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if data.shape[0] != labels.shape[0]:
        raise ValueError("data and labels must have the same length")
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise ValueError("silhouette requires at least two clusters")
    distances = pairwise_distances(data)
    n = data.shape[0]
    scores = np.zeros(n)
    cluster_masks = {c: labels == c for c in unique}
    for i in range(n):
        own = cluster_masks[labels[i]].copy()
        own[i] = False
        own_count = own.sum()
        if own_count == 0:
            scores[i] = 0.0
            continue
        a_i = distances[i, own].mean()
        b_i = np.inf
        for c in unique:
            if c == labels[i]:
                continue
            other = cluster_masks[c]
            if other.sum() == 0:
                continue
            b_i = min(b_i, distances[i, other].mean())
        denom = max(a_i, b_i)
        scores[i] = 0.0 if denom == 0 else (b_i - a_i) / denom
    return scores


def _subsample(data: np.ndarray, labels: np.ndarray, sample_size: int | None,
               seed: int) -> tuple:
    """Deterministic row subsample shared by the aggregate silhouette scores."""
    if sample_size is not None and data.shape[0] > sample_size:
        rng = np.random.default_rng(seed)
        idx = rng.choice(data.shape[0], size=sample_size, replace=False)
        return data[idx], labels[idx]
    return data, labels


def silhouette_score(data: np.ndarray, labels: np.ndarray, sample_size: int | None = 2000,
                     seed: int = 0) -> float:
    """Mean silhouette coefficient, optionally computed on a random subsample.

    The O(n^2) distance matrix makes the exact score expensive on large
    graphs; the paper's own large-graph runs would face the same issue, so we
    subsample (deterministically) above ``sample_size`` points; pass
    ``sample_size=None`` for the exact score.

    Degenerate labelings follow the same never-raise conventions as NMI/ARI
    above: fewer than two clusters (before *or* after subsampling), a single
    sample, or an empty input score a neutral 0.0 — separation is simply
    undefined there, and streaming callers hit these cases routinely (e.g.
    a newborn cluster owning every sampled row).
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    data, labels = _subsample(data, labels, sample_size, seed)
    if data.shape[0] <= 1 or np.unique(labels).shape[0] < 2:
        return 0.0
    return float(silhouette_samples(data, labels).mean())


def per_cluster_silhouette(data: np.ndarray, labels: np.ndarray,
                           sample_size: int | None = 2000,
                           seed: int = 0) -> dict:
    """Mean silhouette of each cluster's members, ``{cluster_id: score}``.

    The cluster-birth signal of the streaming protocol: a cluster whose
    members sit closer to a neighboring centroid's members than to each
    other (score near or below zero) is covering more than one latent class.
    Subsampling matches :func:`silhouette_score`; clusters that lose all
    members to the subsample are absent from the result, and degenerate
    labelings (fewer than two clusters in the sample) return ``{}``.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    data, labels = _subsample(data, labels, sample_size, seed)
    unique = np.unique(labels)
    if data.shape[0] <= 1 or unique.shape[0] < 2:
        return {}
    samples = silhouette_samples(data, labels)
    return {int(c): float(samples[labels == c].mean()) for c in unique}


def _contingency_counts(labels_a: np.ndarray, labels_b: np.ndarray) -> tuple:
    """Sparse cluster-overlap statistics between two labelings.

    Returns ``(rows, cols, cells, cell_rows, cell_cols)``: per-cluster
    sizes of each labeling, then the counts and (row, col) coordinates of
    the *nonzero* contingency cells.  Never materializes the dense
    ``k_a x k_b`` matrix, so fine-grained (even all-singleton) labelings of
    large graphs stay O(n) memory.
    """
    labels_a = np.asarray(labels_a).ravel()
    labels_b = np.asarray(labels_b).ravel()
    if labels_a.shape[0] != labels_b.shape[0]:
        raise ValueError("labelings must have the same length")
    empty = np.zeros(0, dtype=np.float64)
    if labels_a.shape[0] == 0:
        return empty, empty, empty, empty.astype(np.int64), empty.astype(np.int64)
    _, index_a = np.unique(labels_a, return_inverse=True)
    _, index_b = np.unique(labels_b, return_inverse=True)
    rows = np.bincount(index_a).astype(np.float64)
    cols = np.bincount(index_b).astype(np.float64)
    paired = index_a.astype(np.int64) * cols.shape[0] + index_b
    cell_ids, cells = np.unique(paired, return_counts=True)
    return (rows, cols, cells.astype(np.float64),
            cell_ids // cols.shape[0], cell_ids % cols.shape[0])


def _entropy(counts: np.ndarray, total: float) -> float:
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


def normalized_mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization (the sklearn default).

    Degenerate cases are defined, never divide by zero: two single-cluster
    labelings are identical up to renaming (1.0); a zero-entropy labeling
    against a non-trivial one shares no information (0.0); empty input and a
    single sample are trivially matched (1.0).
    """
    rows, cols, cells, cell_rows, cell_cols = _contingency_counts(labels_a, labels_b)
    total = rows.sum()
    if total == 0:
        return 1.0
    if rows.shape[0] <= 1 and cols.shape[0] <= 1:
        return 1.0
    entropy_a = _entropy(rows, total)
    entropy_b = _entropy(cols, total)
    if entropy_a == 0.0 or entropy_b == 0.0:
        return 0.0
    joint = cells / total
    outer = rows[cell_rows] * cols[cell_cols] / (total * total)
    mutual_information = float((joint * np.log(joint / outer)).sum())
    return float(np.clip(mutual_information / (0.5 * (entropy_a + entropy_b)), 0.0, 1.0))


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index, chance-corrected pair-counting agreement.

    Follows the sklearn degenerate-case conventions: identical trivial
    partitions (both single-cluster, or both all-singletons) score 1.0; a
    single-cluster labeling against an all-singleton one scores 0.0.
    """
    rows, cols, cells, _, _ = _contingency_counts(labels_a, labels_b)
    total = rows.sum()
    if total == 0:
        return 1.0

    def pairs(counts: np.ndarray) -> float:
        return float((counts * (counts - 1.0) / 2.0).sum())

    total_pairs = total * (total - 1.0) / 2.0
    if total_pairs == 0:
        return 1.0
    sum_both = pairs(cells)
    sum_a = pairs(rows)
    sum_b = pairs(cols)
    expected = sum_a * sum_b / total_pairs
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        # Both labelings are trivial in the same way (all one cluster, or
        # all singletons): the partitions coincide exactly.
        return 1.0
    return float((sum_both - expected) / (max_index - expected))


def inertia(data: np.ndarray, labels: np.ndarray, centers: np.ndarray) -> float:
    """Sum of squared distances of samples to their assigned centers."""
    diffs = data - centers[labels]
    return float((diffs ** 2).sum())
