"""Command-line interface for regenerating the paper's tables and figures.

Examples
--------
Regenerate Table III on a small budget and save the JSON results::

    python -m repro.experiments.cli table3 --scale 0.3 --epochs 8 \
        --output results/table3.json

Regenerate Figure 1b with the GAT encoder and two seeds::

    python -m repro.experiments.cli fig1b --encoder gat --seeds 0 1
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, Optional, Sequence

from .figures import build_figure1b, build_figure2
from .persistence import save_results
from .runner import ExperimentConfig
from .tables import (
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    build_table6,
    build_table7,
)

#: Experiment name -> builder taking an ExperimentConfig (table2 ignores it).
EXPERIMENTS: Dict[str, Callable[..., dict]] = {
    "table2": lambda experiment: build_table2(),
    "table3": lambda experiment: build_table3(experiment=experiment),
    "table4": lambda experiment: build_table4(experiment=experiment),
    "table5": lambda experiment: build_table5(experiment=experiment),
    "table6": lambda experiment: build_table6(experiment=experiment),
    "table7": lambda experiment: build_table7(experiment=experiment),
    "fig1b": lambda experiment: build_figure1b(experiment=experiment),
    "fig2": lambda experiment: build_figure2(experiment=experiment),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the tables and figures of the OpenIMA paper.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", type=float, default=0.35,
                        help="fraction of each synthetic profile's nodes (default: 0.35)")
    parser.add_argument("--epochs", type=int, default=8,
                        help="training epochs for two-stage methods (default: 8)")
    parser.add_argument("--end-to-end-epochs", type=int, default=None,
                        help="training epochs for end-to-end methods (default: 3x --epochs)")
    parser.add_argument("--batch-size", type=int, default=384,
                        help="mini-batch size (default: 384)")
    parser.add_argument("--encoder", choices=("gcn", "gat"), default="gcn",
                        help="GNN encoder (default: gcn; the paper uses gat)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="split seeds to average over (default: 0)")
    parser.add_argument("--output", type=str, default=None,
                        help="optional path for a JSON copy of the results")
    return parser


def experiment_config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed CLI arguments into an :class:`ExperimentConfig`."""
    return ExperimentConfig(
        scale=args.scale,
        max_epochs=args.epochs,
        batch_size=args.batch_size,
        encoder_kind=args.encoder,
        seeds=tuple(args.seeds),
        end_to_end_epochs=args.end_to_end_epochs,
    )


def main(argv: Optional[Sequence[str]] = None) -> dict:
    """Entry point; returns the builder's result dict (useful for tests)."""
    args = build_parser().parse_args(argv)
    experiment = experiment_config_from_args(args)
    result = EXPERIMENTS[args.experiment](experiment)
    print(result["report"])
    if args.output:
        path = save_results(
            {key: value for key, value in result.items() if key != "report"},
            args.output,
        )
        print(f"\nJSON results written to {path}")
    return result


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in docs
    main()
