"""Command-line interface: train/resume any method, list the registries, and
regenerate the paper's tables and figures.

Examples
--------
Train OpenIMA on the Citeseer profile, checkpoint the result::

    python -m repro.experiments.cli run --method openima --dataset citeseer \
        --epochs 10 --scale 0.5 --save runs/openima-citeseer

Resume that checkpoint for five more epochs::

    python -m repro.experiments.cli resume runs/openima-citeseer --epochs 15

Export all-node embeddings / predictions from a checkpoint (layer-wise
inference bounds peak memory on large graphs)::

    python -m repro.experiments.cli embed runs/openima-citeseer emb.npz \
        --set inference.mode=layerwise --set inference.chunk_size=8192
    python -m repro.experiments.cli predict runs/openima-citeseer \
        --predictions-npz pred.npz --output pred.json

Serve predictions from that checkpoint over HTTP (loads once, keeps the
embedding cache warm, coalesces concurrent queries; Ctrl-C / SIGTERM shuts
down gracefully)::

    python -m repro.experiments.cli serve runs/openima-citeseer \
        --port 8741 --batch-window-ms 2 --set inference.mode=layerwise

Replay a dataset as a prequential open-world stream — the base model trains
on a subgraph, the rest (including a withheld novel class) arrives as graph
deltas with incremental embedding refresh and silhouette-triggered cluster
birth::

    python -m repro.experiments.cli stream --dataset citeseer --steps 6 \
        --reveal-fraction 0.3 --birth-threshold 0.2

Discover what is available::

    python -m repro.experiments.cli list-methods
    python -m repro.experiments.cli list-datasets

Check the repo's hand-enforced invariants (seeded RNG flow, lock-guarded
attributes, frozen cached arrays, serializable configs, ...) — exits 1 when
any rule fires::

    python -m repro.experiments.cli lint src/ --format text

Regenerate Table III on a small budget and save the JSON results::

    python -m repro.experiments.cli table3 --scale 0.3 --epochs 8 \
        --output results/table3.json
"""

from __future__ import annotations

import argparse
import json
from typing import Callable, Dict, Optional, Sequence

from ..core.registry import METHODS, available_methods, get_method
from ..datasets.registry import available_datasets, get_profile
from .figures import build_figure1b, build_figure2
from .persistence import save_results
from .runner import ExperimentConfig
from .tables import (
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    build_table6,
    build_table7,
)

#: Experiment name -> builder taking an ExperimentConfig (table2 ignores it).
EXPERIMENTS: Dict[str, Callable[..., dict]] = {
    "table2": lambda experiment: build_table2(),
    "table3": lambda experiment: build_table3(experiment=experiment),
    "table4": lambda experiment: build_table4(experiment=experiment),
    "table5": lambda experiment: build_table5(experiment=experiment),
    "table6": lambda experiment: build_table6(experiment=experiment),
    "table7": lambda experiment: build_table7(experiment=experiment),
    "fig1b": lambda experiment: build_figure1b(experiment=experiment),
    "fig2": lambda experiment: build_figure2(experiment=experiment),
}


# ----------------------------------------------------------------------
# Parser construction
# ----------------------------------------------------------------------
def _add_training_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every training-style subcommand."""
    parser.add_argument("--scale", type=float, default=0.35,
                        help="fraction of each synthetic profile's nodes (default: 0.35)")
    parser.add_argument("--epochs", type=int, default=8,
                        help="training epochs for two-stage methods (default: 8)")
    parser.add_argument("--batch-size", type=int, default=384,
                        help="mini-batch size (default: 384)")
    parser.add_argument("--encoder", choices=("gcn", "gat"), default="gcn",
                        help="GNN encoder (default: gcn; the paper uses gat)")
    parser.add_argument("--backend", choices=("sparse", "dense"), default="sparse",
                        help="message-passing backend (default: sparse)")
    parser.add_argument("--eval-every", type=int, default=0,
                        help="record open-world accuracy every N epochs (0 disables)")
    parser.add_argument("--sampling-mode", choices=("full", "khop", "sampled"),
                        default="full",
                        help="mini-batch neighborhood sampling: full-graph "
                             "forward per batch (full), exact receptive-field "
                             "subgraph (khop), or fanout-capped expansion "
                             "(sampled); fine-tune with --set "
                             "sampling.fanouts=[10,10] etc. (default: full)")
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="worker count for the parallel execution layer "
                             "(repro.parallel): clustering assignment and "
                             "layer-wise inference chunks on run/stream, plus "
                             "the method x seed grid on table/figure "
                             "commands; 0 = all cores, 1 = serial "
                             "(default: 1); results are bit-identical to "
                             "serial at any setting")
    parser.add_argument("--parallel-backend",
                        choices=("serial", "threads", "processes"),
                        default="processes",
                        help="pool backend used when --n-jobs != 1 "
                             "(default: processes)")
    parser.add_argument("--output", type=str, default=None,
                        help="optional path for a JSON copy of the results")


def _add_experiment_subparser(subparsers, name: str, help_text: str) -> None:
    parser = subparsers.add_parser(name, help=help_text)
    _add_training_options(parser)
    parser.add_argument("--end-to-end-epochs", type=int, default=None,
                        help="training epochs for end-to-end methods (default: 3x --epochs)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="split seeds to average over (default: 0)")
    parser.set_defaults(handler=_handle_experiment)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description=(
            "Train/resume any registered method and regenerate the tables and "
            "figures of the OpenIMA paper."
        ),
    )
    subparsers = parser.add_subparsers(dest="experiment", required=True,
                                       metavar="command")

    # -- run -----------------------------------------------------------
    run = subparsers.add_parser(
        "run", help="train one method on one dataset and report accuracy")
    run.add_argument("--method", required=True,
                     help="registered method name (see list-methods)")
    run.add_argument("--dataset", required=True,
                     help="registered dataset name (see list-datasets)")
    _add_training_options(run)
    run.add_argument("--seed", type=int, default=0,
                     help="graph/split/training seed (default: 0)")
    run.add_argument("--labels-per-class", type=int, default=None,
                     help="labeled-node budget per seen class (default: profile value)")
    run.add_argument("--num-novel-classes", type=int, default=None,
                     help="override the number of novel classes (Table VI setting)")
    run.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                     dest="overrides",
                     help="config override (dotted keys, repeatable), e.g. "
                          "--set optimizer.learning_rate=0.01 --set eta=2.0 "
                          "--set trainer.clustering.strategy=minibatch")
    run.add_argument("--save", type=str, default=None, metavar="DIR",
                     help="write a resumable checkpoint directory after training")
    run.set_defaults(handler=_handle_run)

    # -- resume --------------------------------------------------------
    resume = subparsers.add_parser(
        "resume", help="continue training from a checkpoint directory")
    resume.add_argument("checkpoint", help="checkpoint directory written by run --save")
    resume.add_argument("--epochs", type=int, default=None,
                        help="new total epoch target (default: the config's max_epochs)")
    resume.add_argument("--save", type=str, default=None, metavar="DIR",
                        help="where to write the updated checkpoint "
                             "(default: overwrite the source checkpoint)")
    resume.add_argument("--output", type=str, default=None,
                        help="optional path for a JSON copy of the results")
    resume.set_defaults(handler=_handle_resume)

    # -- inference-only commands ---------------------------------------
    embed = subparsers.add_parser(
        "embed", help="write deterministic all-node embeddings from a "
                      "checkpoint to an .npz file")
    embed.add_argument("checkpoint", help="checkpoint directory written by run --save")
    embed.add_argument("npz", help="destination .npz file (array 'embeddings')")
    embed.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                       dest="overrides",
                       help="inference override (repeatable), e.g. "
                            "--set inference.mode=layerwise "
                            "--set inference.chunk_size=8192")
    embed.add_argument("--output", type=str, default=None,
                       help="optional path for a JSON copy of the metadata")
    embed.set_defaults(handler=_handle_embed)

    predict = subparsers.add_parser(
        "predict", help="write per-node predictions and open-world accuracy "
                        "from a checkpoint")
    predict.add_argument("checkpoint", help="checkpoint directory written by run --save")
    predict.add_argument("--predictions-npz", type=str, default=None, metavar="FILE",
                         help="optional .npz copy of the per-node predictions")
    predict.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                         dest="overrides",
                         help="inference/clustering override (repeatable), e.g. "
                              "--set inference.mode=layerwise "
                              "--set clustering.strategy=minibatch")
    predict.add_argument("--output", type=str, default=None,
                         help="optional path for the predictions + accuracy JSON")
    predict.set_defaults(handler=_handle_predict)

    # -- serving -------------------------------------------------------
    serve = subparsers.add_parser(
        "serve", help="serve single-node and micro-batched predictions from "
                      "a checkpoint over HTTP")
    serve.add_argument("checkpoint", help="checkpoint directory written by run --save")
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8741,
                       help="port to bind; 0 picks a free port (default: 8741)")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="micro-batch window: concurrent queries arriving "
                            "within this many ms share one model call "
                            "(default: 2.0; 0 disables waiting)")
    serve.add_argument("--max-batch", type=int, default=1024,
                       help="maximum nodes per coalesced batch (default: 1024)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip the startup snapshot build (first query "
                            "pays for it instead)")
    serve.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                       dest="overrides",
                       help="inference/clustering override (repeatable), e.g. "
                            "--set inference.mode=layerwise "
                            "--set clustering.strategy=minibatch")
    serve.add_argument("--output", type=str, default=None,
                       help="optional path for a JSON copy of the final "
                            "serving stats")
    serve.set_defaults(handler=_handle_serve)

    # -- streaming -----------------------------------------------------
    stream = subparsers.add_parser(
        "stream", help="replay a dataset as a prequential open-world stream "
                       "(dynamic graph deltas, incremental inference, "
                       "cluster birth)")
    stream.add_argument("--method", default="openima",
                        help="registered method name (default: openima)")
    stream.add_argument("--dataset", required=True,
                        help="registered dataset name (see list-datasets)")
    _add_training_options(stream)
    stream.add_argument("--seed", type=int, default=0,
                        help="graph/split/stream seed (default: 0)")
    stream.add_argument("--steps", type=int, default=6,
                        help="number of arrival batches (default: 6)")
    stream.add_argument("--base-fraction", type=float, default=0.6,
                        help="fraction of streamable nodes kept in the base "
                             "graph (default: 0.6)")
    stream.add_argument("--entry-step", type=int, default=None,
                        help="first step the withheld class may arrive "
                             "(default: steps // 3)")
    stream.add_argument("--reveal-fraction", type=float, default=0.3,
                        help="fraction of seen-class arrivals whose label is "
                             "revealed after scoring (default: 0.3)")
    stream.add_argument("--birth-threshold", type=float, default=0.2,
                        help="per-cluster silhouette below which a new "
                             "cluster is born; -1 disables (default: 0.2)")
    stream.add_argument("--max-clusters", type=int, default=None,
                        help="hard cap on cluster count growth (default: "
                             "classes + 2)")
    stream.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                        dest="overrides",
                        help="config override (dotted keys, repeatable), e.g. "
                             "--set trainer.inference.partial_threshold=0.3")
    stream.set_defaults(handler=_handle_stream)

    # -- listings ------------------------------------------------------
    list_methods = subparsers.add_parser(
        "list-methods", help="list every registered method with its metadata")
    list_methods.add_argument("--output", type=str, default=None,
                              help="optional path for a JSON copy of the listing")
    list_methods.set_defaults(handler=_handle_list_methods)

    list_datasets = subparsers.add_parser(
        "list-datasets", help="list every registered dataset profile")
    list_datasets.add_argument("--output", type=str, default=None,
                               help="optional path for a JSON copy of the listing")
    list_datasets.set_defaults(handler=_handle_list_datasets)

    # -- observability ------------------------------------------------
    obs_parser = subparsers.add_parser(
        "obs", help="inspect the in-process observability state: metric "
                    "registry summary, JSONL export, or a flame-style "
                    "trace report")
    obs_parser.add_argument(
        "action", choices=("summary", "export", "trace-report"),
        help="summary: one JSON snapshot of metrics/tracing/events; "
             "export: every metric sample, span, and event as JSONL; "
             "trace-report: aggregated per-path span profile")
    obs_parser.add_argument(
        "--jsonl", type=str, default=None, metavar="PATH",
        help="for export: write the JSONL rows to PATH instead of stdout")
    obs_parser.add_argument(
        "--prometheus", action="store_true",
        help="for summary: print the Prometheus text exposition instead "
             "of JSON")
    obs_parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="for trace-report: keep only the N hottest root span trees")
    obs_parser.add_argument("--output", type=str, default=None,
                            help="optional path for a JSON copy of the result")
    obs_parser.set_defaults(handler=_handle_obs)

    # -- static analysis ----------------------------------------------
    from ..analysis.cli import add_lint_options

    lint = subparsers.add_parser(
        "lint", help="check the repo's invariant rules (R1-R9) over python "
                     "sources; exits 1 on findings")
    add_lint_options(lint)
    lint.set_defaults(handler=_handle_lint)

    # -- tables / figures ---------------------------------------------
    for name in sorted(EXPERIMENTS):
        _add_experiment_subparser(subparsers, name,
                                  f"regenerate {name} of the paper")
    return parser


def experiment_config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """Translate parsed table/figure CLI arguments into an :class:`ExperimentConfig`."""
    return ExperimentConfig(
        scale=args.scale,
        max_epochs=args.epochs,
        batch_size=args.batch_size,
        encoder_kind=args.encoder,
        seeds=tuple(args.seeds),
        end_to_end_epochs=args.end_to_end_epochs,
        backend=args.backend,
        eval_every=args.eval_every,
        sampling_mode=args.sampling_mode,
        n_jobs=args.n_jobs,
        parallel_backend=args.parallel_backend,
    )


def parallel_config_from_args(args: argparse.Namespace):
    """Translate ``--n-jobs`` / ``--parallel-backend`` into a ParallelConfig.

    ``--n-jobs 1`` (the default) stays on the serial backend so default runs
    never touch a pool; any other value enables the requested backend.  The
    executor's ordered per-item-seeded reduction keeps results bit-identical
    either way.
    """
    from ..core.config import ParallelConfig

    if int(args.n_jobs) == 1:
        return ParallelConfig()
    return ParallelConfig(backend=args.parallel_backend, n_jobs=args.n_jobs)


# ----------------------------------------------------------------------
# Subcommand handlers
# ----------------------------------------------------------------------
def _coerce_override_value(raw: str):
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def parse_set_overrides(pairs: Sequence[str]) -> dict:
    """Parse repeated ``--set key=value`` pairs into a nested dict.

    Dotted keys nest (``optimizer.learning_rate=0.01`` becomes
    ``{"optimizer": {"learning_rate": 0.01}}``); values are parsed as JSON
    when possible, otherwise kept as strings.
    """
    overrides: dict = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--set expects KEY=VALUE, got {pair!r}")
        target = overrides
        parts = key.split(".")
        for part in parts[:-1]:
            target = target.setdefault(part, {})
            if not isinstance(target, dict):
                raise ValueError(f"--set key {key!r} conflicts with an earlier override")
        target[parts[-1]] = _coerce_override_value(raw)
    return overrides


def _split_config_overrides(config_cls, overrides: dict) -> tuple:
    """Split ``--set`` overrides into config fields vs extra method kwargs."""
    import dataclasses

    field_names = {f.name for f in dataclasses.fields(config_cls)}
    config_part = {k: v for k, v in overrides.items() if k in field_names}
    extra = {k: v for k, v in overrides.items() if k not in field_names}
    return config_part, extra


def _deep_merge(base: dict, updates: dict) -> dict:
    merged = dict(base)
    for key, value in updates.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = _deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def _handle_run(args: argparse.Namespace) -> dict:
    from ..api import OpenWorldClassifier
    from ..core.config import OpenIMAConfig, SamplingConfig, fast_config

    spec = get_method(args.method)
    trainer_config = fast_config(
        max_epochs=args.epochs, seed=args.seed,
        encoder_kind=args.encoder, batch_size=args.batch_size,
        backend=args.backend, eval_every=args.eval_every,
        sampling=SamplingConfig(mode=args.sampling_mode),
        parallel=parallel_config_from_args(args),
    )

    overrides = parse_set_overrides(args.overrides)
    if spec.config_cls is OpenIMAConfig:
        config_dict = OpenIMAConfig(trainer=trainer_config).to_dict()
        # Methods with their own config class take every override as a config
        # field, so typos hit from_dict's strict unknown-key validation.
        config_part, method_params = overrides, {}
    else:
        config_dict = trainer_config.to_dict()
        config_part, method_params = _split_config_overrides(spec.config_cls, overrides)
    config = spec.config_cls.from_dict(_deep_merge(config_dict, config_part))

    classifier = OpenWorldClassifier(
        args.method, config=config,
        num_novel_classes=args.num_novel_classes,
        method_params=method_params,
    )
    classifier.fit(
        args.dataset,
        seed=args.seed,
        scale=args.scale,
        labels_per_class=args.labels_per_class,
    )
    result = _report_classifier(classifier, saved_to=args.save)
    if args.save:
        classifier.save(args.save)
    return result


def _load_for_inference(args: argparse.Namespace,
                        allowed: Sequence[str] = ("inference",)):
    """Load a checkpointed classifier and apply ``--set <section>.*`` overrides.

    ``allowed`` names the config sections this subcommand may override
    (``inference`` for embed, ``inference``/``clustering`` for predict);
    anything else fails the same strict validation as ``run``.
    """
    from ..api import OpenWorldClassifier
    from ..core.config import ClusteringConfig, InferenceConfig

    classifier = OpenWorldClassifier.load(args.checkpoint)
    overrides = parse_set_overrides(args.overrides)
    sections: Dict[str, dict] = {}
    for name in allowed:
        section = overrides.pop(name, {})
        if not isinstance(section, dict):
            raise ValueError(
                f"--set {name}=... must use dotted keys, e.g. "
                f"--set {name}.{'mode=layerwise' if name == 'inference' else 'strategy=minibatch'}"
            )
        sections[name] = section
    if overrides:
        valid = "/".join(f"{name}.*" for name in allowed)
        raise ValueError(
            f"only {valid} overrides are valid for this command, got "
            f"{sorted(overrides)}; e.g. --set inference.mode=layerwise"
        )
    if sections.get("inference"):
        current = classifier.trainer_.config.inference.to_dict()
        classifier.configure_inference(
            InferenceConfig.from_dict(_deep_merge(current, sections["inference"]))
        )
    if sections.get("clustering"):
        current = classifier.trainer_.config.clustering.to_dict()
        classifier.configure_clustering(
            ClusteringConfig.from_dict(_deep_merge(current, sections["clustering"]))
        )
    return classifier


def _resolved_inference_mode(classifier) -> str:
    trainer = classifier.trainer_
    return classifier.inference_engine.resolve_mode(trainer.encoder,
                                                    trainer.dataset.graph)


def _handle_embed(args: argparse.Namespace) -> dict:
    import numpy as np

    classifier = _load_for_inference(args)
    embeddings = classifier.embed()
    mode = _resolved_inference_mode(classifier)
    np.savez(args.npz, embeddings=embeddings)
    lines = [
        f"method:     {classifier.method}",
        f"dataset:    {classifier.dataset_.name}",
        f"embeddings: shape {embeddings.shape} "
        f"({'layer-wise' if mode == 'layerwise' else 'full'} forward)",
        f"written to: {args.npz}",
    ]
    return {
        "report": "\n".join(lines),
        "method": classifier.method,
        "dataset": classifier.dataset_.name,
        "inference_mode": mode,
        "shape": list(embeddings.shape),
        "npz": str(args.npz),
    }


def _handle_predict(args: argparse.Namespace) -> dict:
    import numpy as np

    classifier = _load_for_inference(args, allowed=("inference", "clustering"))
    dataset = classifier.dataset_
    # One embedding pass feeds both the prediction and the accuracy report.
    embeddings = classifier.embed()
    result = classifier.trainer_.predict(embeddings=embeddings)
    accuracy = classifier.trainer_.accuracy_of(result)
    mode = _resolved_inference_mode(classifier)
    if args.predictions_npz:
        np.savez(args.predictions_npz, predictions=result.predictions)
    lines = [
        f"method:    {classifier.method}",
        f"dataset:   {dataset.name}",
        f"inference: {mode} ({classifier.inference_engine.forward_count} forward)",
        f"accuracy:  all={accuracy.overall:.4f}  seen={accuracy.seen:.4f}  "
        f"novel={accuracy.novel:.4f}",
    ]
    if args.predictions_npz:
        lines.append(f"predictions: {args.predictions_npz}")
    payload = {
        "report": "\n".join(lines),
        "method": classifier.method,
        "dataset": dataset.name,
        "inference_mode": mode,
        "accuracy": accuracy.as_dict(),
    }
    if args.output:
        # The boxed per-node list is only worth building when a JSON copy
        # was requested; bulk export goes through --predictions-npz.
        payload["predictions"] = [int(p) for p in result.predictions]
    return payload


def _handle_serve(args: argparse.Namespace) -> dict:
    from ..serve import ModelServer, PredictionService, ServeConfig

    classifier = _load_for_inference(args, allowed=("inference", "clustering"))
    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        warm=not args.no_warm,
    )
    server = ModelServer(PredictionService(classifier), config)
    server.start()
    host, port = server.address[0], server.port
    print(
        f"serving {classifier.method} on {classifier.dataset_.name} "
        f"({classifier.trainer_.dataset.graph.num_nodes} nodes) at "
        f"http://{host}:{port} — POST /predict, GET /health, GET /stats "
        f"(Ctrl-C to stop)",
        flush=True,
    )
    server.serve_forever(install_signals=True)
    stats = server.stats()
    latency = stats["latency"]
    lines = [
        "server stopped",
        f"requests:  {latency['requests']}",
    ]
    if latency["requests"]:
        lines.append(
            f"latency:   p50={latency['p50_ms']:.2f} ms  "
            f"p99={latency['p99_ms']:.2f} ms  qps={latency['qps']:.1f}"
        )
    return {
        "report": "\n".join(lines),
        "method": classifier.method,
        "dataset": classifier.dataset_.name,
        "address": [host, port],
        "stats": stats,
    }


def _handle_stream(args: argparse.Namespace) -> dict:
    from ..api import OpenWorldClassifier
    from ..core.config import (
        ClusteringConfig,
        OpenIMAConfig,
        SamplingConfig,
        fast_config,
    )
    from ..datasets.synthetic import load_open_world_dataset
    from ..streaming import StreamRunner, make_stream_scenario

    spec = get_method(args.method)
    dataset = load_open_world_dataset(args.dataset, seed=args.seed,
                                      scale=args.scale)
    scenario = make_stream_scenario(
        dataset,
        num_steps=args.steps,
        base_fraction=args.base_fraction,
        entry_step=args.entry_step,
        reveal_fraction=args.reveal_fraction,
        seed=args.seed,
    )

    birth = None if args.birth_threshold <= -1 else float(args.birth_threshold)
    max_clusters = args.max_clusters
    if max_clusters is None:
        # Default cap: room for every real class plus a couple of births.
        max_clusters = (scenario.base.split.seen_classes.shape[0]
                        + scenario.base.split.novel_classes.shape[0]
                        + scenario.withheld_classes.shape[0] + 2)
    clustering = ClusteringConfig(
        strategy="online",
        birth_threshold=birth,
        max_clusters=int(max_clusters),
    )
    trainer_config = fast_config(
        max_epochs=args.epochs, seed=args.seed,
        encoder_kind=args.encoder, batch_size=args.batch_size,
        backend=args.backend, eval_every=args.eval_every,
        sampling=SamplingConfig(mode=args.sampling_mode),
        clustering=clustering,
        parallel=parallel_config_from_args(args),
    )
    overrides = parse_set_overrides(args.overrides)
    if spec.config_cls is OpenIMAConfig:
        config_dict = OpenIMAConfig(trainer=trainer_config).to_dict()
        config_part, method_params = overrides, {}
    else:
        config_dict = trainer_config.to_dict()
        config_part, method_params = _split_config_overrides(spec.config_cls, overrides)
    config = spec.config_cls.from_dict(_deep_merge(config_dict, config_part))

    classifier = OpenWorldClassifier(args.method, config=config,
                                     method_params=method_params)
    classifier.fit(scenario.base)
    runner = StreamRunner(classifier, scenario)
    result = runner.run()
    summary = result.summary()

    lines = [
        f"method:    {spec.display_name} ({classifier.method})",
        f"scenario:  {scenario.name}  "
        f"({scenario.base.graph.num_nodes} base nodes -> "
        f"{scenario.total_nodes} total, {scenario.num_steps} steps, "
        f"withheld classes {[int(c) for c in scenario.withheld_classes]})",
        "",
        f"{'step':>4}  {'arrive':>6}  {'affected':>8}  {'refresh':>9}  "
        f"{'k':>3}  {'birth':>5}  {'overall':>7}  {'seen':>6}  {'novel':>6}",
    ]
    for record in result.records:
        accuracy = record.accuracy
        lines.append(
            f"{record.step:>4}  {record.num_arrivals:>6}  "
            f"{record.affected_fraction:>8.1%}  "
            f"{record.refresh_seconds * 1e3:>7.1f}ms"
            f"{'*' if record.partial else ' '} "
            f"{record.num_clusters:>3}  "
            f"{('+' + str(len(record.births))) if record.births else '-':>5}  "
            f"{accuracy['overall']:>7.3f}  {accuracy['seen']:>6.3f}  "
            f"{accuracy['novel']:>6.3f}"
        )
    lines += [
        "",
        f"prequential: overall={summary['prequential']['overall']:.4f}  "
        f"seen={summary['prequential']['seen']:.4f}  "
        f"novel={summary['prequential']['novel']:.4f}",
        f"clusters:    {summary['num_clusters_start']} -> "
        f"{summary['num_clusters_end']}"
        + (f"  (first birth at step {summary['first_birth_step']}, "
           f"detection delay {summary['detection_delay']})"
           if summary["first_birth_step"] is not None else "  (no births)"),
        f"refresh:     {summary['partial_refresh_steps']} partial / "
        f"{summary['full_refresh_steps']} full  "
        f"(* = partial; mean {summary['mean_refresh_seconds'] * 1e3:.1f} ms, "
        f"mean affected {summary['mean_affected_fraction']:.1%})",
    ]
    return {
        "report": "\n".join(lines),
        "method": classifier.method,
        "dataset": args.dataset,
        "scenario": scenario.describe(),
        "summary": summary,
        "steps": [record.as_dict() for record in result.records],
    }


def _handle_resume(args: argparse.Namespace) -> dict:
    from ..api import OpenWorldClassifier

    classifier = OpenWorldClassifier.load(args.checkpoint)
    classifier.fit(max_epochs=args.epochs)
    target = args.save or args.checkpoint
    result = _report_classifier(classifier, saved_to=target)
    classifier.save(target)
    return result


def _report_classifier(classifier, saved_to: Optional[str] = None) -> dict:
    accuracy = classifier.evaluate()
    spec = get_method(classifier.method)
    lines = [
        f"method:    {spec.display_name} ({classifier.method}, {spec.kind})",
        f"dataset:   {classifier.dataset_.name}",
        f"epochs:    {classifier.epochs_trained}",
        f"accuracy:  all={accuracy.overall:.4f}  seen={accuracy.seen:.4f}  "
        f"novel={accuracy.novel:.4f}",
    ]
    final_loss = classifier.history.final_loss
    if final_loss is not None:
        lines.insert(3, f"loss:      {final_loss:.4f}")
    if saved_to:
        lines.append(f"checkpoint: {saved_to}")
    return {
        "report": "\n".join(lines),
        "method": classifier.method,
        "dataset": classifier.dataset_.name,
        "epochs_trained": classifier.epochs_trained,
        "accuracy": accuracy.as_dict(),
        "losses": list(classifier.history.losses),
        "evaluations": list(classifier.history.evaluations),
    }


def _handle_list_methods(args: argparse.Namespace) -> dict:
    rows = []
    for name in available_methods():
        spec = METHODS.get(name)
        rows.append({
            "name": spec.name,
            "display_name": spec.display_name,
            "kind": spec.kind,
            "default_epochs": spec.default_epochs,
            "description": spec.description,
        })
    width = max(len(row["name"]) for row in rows)
    lines = [
        f"{row['name']:<{width}}  {row['kind']:<10}  "
        f"{row['default_epochs']:>3} epochs  {row['description']}"
        for row in rows
    ]
    return {"report": "\n".join(lines), "methods": rows}


def _handle_list_datasets(args: argparse.Namespace) -> dict:
    rows = []
    for name in available_datasets():
        profile = get_profile(name)
        rows.append({
            "name": name,
            "paper_name": profile.paper_name,
            "classes": profile.paper_classes,
            "synthetic_nodes": profile.sbm.num_nodes,
            "labels_per_class": profile.labels_per_class,
            "large_scale": profile.large_scale,
        })
    width = max(len(row["name"]) for row in rows)
    lines = [
        f"{row['name']:<{width}}  {row['paper_name']:<16}  "
        f"{row['classes']:>2} classes  {row['synthetic_nodes']:>5} nodes"
        + ("  [large-scale]" if row["large_scale"] else "")
        for row in rows
    ]
    return {"report": "\n".join(lines), "datasets": rows}


def _handle_lint(args: argparse.Namespace) -> dict:
    from ..analysis.cli import execute

    # The linter prints its own findings and must control the process exit
    # code (0 clean / 1 findings), so it bypasses the report-dict protocol.
    try:
        code = execute(args.paths, rules=args.rules,
                       output_format=args.format,
                       list_rules=args.list_rules,
                       no_default_excludes=args.no_default_excludes)
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(f"repro lint: error: {exc}") from exc
    raise SystemExit(code)


def _handle_obs(args: argparse.Namespace) -> dict:
    """``repro obs {summary,export,trace-report}``.

    Operates on this process's :mod:`repro.obs` singletons — useful
    programmatically (``main(["obs", "summary"])`` after training in the
    same interpreter) and as the post-mortem surface for long-lived
    commands that enable tracing via ``REPRO_OBS=1``.
    """
    from .. import obs

    if args.action == "summary":
        summary = obs.summary()
        report = (obs.REGISTRY.render_prometheus() if args.prometheus
                  else json.dumps(summary, indent=2, sort_keys=True))
        return {"report": report, **summary}
    if args.action == "trace-report":
        return {"report": obs.TRACER.flame_report(top=args.top),
                "tracing": obs.TRACER.stats()}
    rows = list(obs.REGISTRY.export_rows())
    rows.extend({"record": "span", **record}
                for record in obs.TRACER.records())
    rows.extend({"record": "event", **event}
                for event in obs.EVENTS.snapshot())
    text = "\n".join(json.dumps(row, sort_keys=True, default=str)
                     for row in rows)
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            handle.write(text + ("\n" if text else ""))
        return {"report": f"wrote {len(rows)} records to {args.jsonl}",
                "records": len(rows), "path": args.jsonl}
    return {"report": text, "records": len(rows)}


def _handle_experiment(args: argparse.Namespace) -> dict:
    experiment = experiment_config_from_args(args)
    return EXPERIMENTS[args.experiment](experiment)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> dict:
    """Entry point; returns the handler's result dict (useful for tests)."""
    args = build_parser().parse_args(argv)
    result = args.handler(args)
    if "report" in result:
        print(result["report"])
    output = getattr(args, "output", None)
    if output:
        path = save_results(
            {key: value for key, value in result.items() if key != "report"},
            output,
        )
        print(f"\nJSON results written to {path}")
    return result


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in docs
    main()
