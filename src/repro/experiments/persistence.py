"""Persist experiment results to JSON and load them back.

The benchmark harness writes plain-text reports; this module adds a
machine-readable companion so downstream analysis (plots, significance
tests, regression tracking across code changes) can consume the same
results without re-running the experiments.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..metrics.accuracy import OpenWorldAccuracy
from .runner import AggregatedResult, RunResult


def _to_jsonable(value: Any) -> Any:
    """Convert numpy / dataclass values into JSON-serializable structures.

    Non-finite floats (NaN, +/-Inf) become ``null`` wherever they appear —
    including inside numpy arrays and nested lists — so the output is strict
    JSON (``json.dumps`` would otherwise emit invalid ``NaN``/``Infinity``
    tokens).
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return _to_jsonable(float(value))
    if isinstance(value, np.ndarray):
        return _to_jsonable(value.tolist())
    if isinstance(value, OpenWorldAccuracy):
        return _to_jsonable(value.as_dict())
    if isinstance(value, RunResult):
        return _to_jsonable(value.as_dict())
    if isinstance(value, AggregatedResult):
        return {
            "method": value.method,
            "dataset": value.dataset,
            "accuracy": _to_jsonable(value.accuracy.as_dict()),
            "imbalance_rate": _to_jsonable(value.imbalance_rate),
            "separation_rate": _to_jsonable(value.separation_rate),
            "runs": [_to_jsonable(run) for run in value.runs],
        }
    if is_dataclass(value) and not isinstance(value, type):
        return _to_jsonable(asdict(value))
    if isinstance(value, Mapping):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):  # NaN / +/-Inf
        return None
    return value


def save_results(results: Any, path: str | Path) -> Path:
    """Write experiment results (nested dicts / dataclasses) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = _to_jsonable(results)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n")
    return path


def load_results(path: str | Path) -> Any:
    """Load a JSON results file written by :func:`save_results`."""
    return json.loads(Path(path).read_text())


def accuracy_grid(results: Mapping[str, Mapping[str, AggregatedResult]]) -> dict:
    """Flatten a method x dataset grid into ``{method: {dataset: {all, seen, novel}}}``."""
    grid: dict = {}
    for method, per_dataset in results.items():
        grid[method] = {
            dataset: entry.accuracy.as_dict() for dataset, entry in per_dataset.items()
        }
    return grid
