"""Plain-text report formatting for the reproduced tables and figures."""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows, strict=True)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (nan-safe)."""
    if value != value:  # NaN
        return "n/a"
    return f"{value * 100:.{digits}f}"


def format_accuracy_table(
    results: Mapping[str, Mapping[str, object]],
    datasets: Sequence[str],
    title: str = "",
) -> str:
    """Format a Table III/IV style accuracy grid.

    ``results[method][dataset]`` must expose ``accuracy.overall/seen/novel``.
    """
    headers = ["Method"]
    for dataset in datasets:
        headers.extend([f"{dataset}:All", f"{dataset}:Seen", f"{dataset}:Novel"])
    rows = []
    for method, per_dataset in results.items():
        row = [method]
        for dataset in datasets:
            entry = per_dataset.get(dataset)
            if entry is None:
                row.extend(["-", "-", "-"])
            else:
                accuracy = entry.accuracy
                row.extend([percent(accuracy.overall), percent(accuracy.seen),
                            percent(accuracy.novel)])
        rows.append(row)
    return format_table(headers, rows, title=title)
