"""Experiment harness: runners, table builders, figure builders, reporting."""

from .figures import FIGURE1B_METHODS, build_figure1b, build_figure2
from .persistence import accuracy_grid, load_results, save_results
from .reporting import format_accuracy_table, format_table, percent
from .runner import (
    AggregatedResult,
    ExperimentConfig,
    RunResult,
    build_method,
    evaluate_trainer,
    run_method,
    run_methods,
)
from .tables import (
    TABLE3_DATASETS,
    TABLE3_METHODS,
    TABLE4_DATASETS,
    TABLE4_METHODS,
    TABLE5_VARIANTS,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    build_table6,
    build_table7,
)

__all__ = [
    "ExperimentConfig",
    "RunResult",
    "AggregatedResult",
    "run_method",
    "run_methods",
    "build_method",
    "evaluate_trainer",
    "build_table2",
    "build_table3",
    "build_table4",
    "build_table5",
    "build_table6",
    "build_table7",
    "build_figure1b",
    "build_figure2",
    "TABLE3_DATASETS",
    "TABLE3_METHODS",
    "TABLE4_DATASETS",
    "TABLE4_METHODS",
    "TABLE5_VARIANTS",
    "FIGURE1B_METHODS",
    "format_table",
    "format_accuracy_table",
    "percent",
    "save_results",
    "load_results",
    "accuracy_grid",
]
