"""Builders for the paper's figures (Figure 1b and Figure 2).

Figures are produced as structured data plus text reports (no plotting
dependency is available offline); the benchmark suite prints the same series
the paper plots.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .reporting import format_table, percent
from .runner import ExperimentConfig, run_method

#: The four representation-learning settings compared in Figure 1b.
FIGURE1B_METHODS = ("infonce", "infonce+supcon", "infonce+supcon+ce", "openima")


def build_figure1b(experiment: Optional[ExperimentConfig] = None,
                   dataset_name: str = "coauthor-cs",
                   methods: Sequence[str] = FIGURE1B_METHODS) -> dict:
    """Figure 1b: imbalance rate, separation rate, and seen/novel accuracy.

    The paper's motivating table on Coauthor CS: adding supervised losses on
    top of InfoNCE increases the imbalance rate and the separation rate,
    hurting (then recovering) novel-class accuracy; OpenIMA keeps the
    imbalance low while pushing separation and both accuracies up.
    """
    experiment = experiment if experiment is not None else ExperimentConfig()
    rows = []
    results: Dict[str, dict] = {}
    for method in methods:
        aggregated = run_method(method, dataset_name, experiment)
        results[method] = {
            "imbalance_rate": aggregated.imbalance_rate,
            "separation_rate": aggregated.separation_rate,
            "seen": aggregated.accuracy.seen,
            "novel": aggregated.accuracy.novel,
            "all": aggregated.accuracy.overall,
        }
        rows.append([
            method,
            f"{aggregated.imbalance_rate:.3f}",
            f"{aggregated.separation_rate:.3f}",
            percent(aggregated.accuracy.seen),
            percent(aggregated.accuracy.novel),
        ])
    report = format_table(
        ["Method", "Imbalance", "Separation", "Seen Acc", "Novel Acc"],
        rows,
        title=f"Figure 1b: variance imbalance effects on {dataset_name}",
    )
    return {"results": results, "report": report}


def build_figure2(experiment: Optional[ExperimentConfig] = None,
                  datasets: Sequence[str] = ("coauthor-cs", "coauthor-physics"),
                  etas: Sequence[float] = (1.0, 10.0, 20.0),
                  rhos: Sequence[float] = (25.0, 50.0, 75.0, 100.0)) -> dict:
    """Figure 2: effect of the CE scaling factor eta and the selection rate rho.

    Returns seen/novel accuracy series for each dataset as eta and rho vary.
    """
    experiment = experiment if experiment is not None else ExperimentConfig()
    eta_series: Dict[str, list] = {}
    rho_series: Dict[str, list] = {}
    for dataset_name in datasets:
        eta_series[dataset_name] = []
        for eta in etas:
            aggregated = run_method("openima", dataset_name, experiment,
                                    openima_overrides={"eta": eta})
            eta_series[dataset_name].append({
                "eta": eta,
                "seen": aggregated.accuracy.seen,
                "novel": aggregated.accuracy.novel,
            })
        rho_series[dataset_name] = []
        for rho in rhos:
            aggregated = run_method("openima", dataset_name, experiment,
                                    openima_overrides={"rho": rho})
            rho_series[dataset_name].append({
                "rho": rho,
                "seen": aggregated.accuracy.seen,
                "novel": aggregated.accuracy.novel,
            })

    rows = []
    for dataset_name in datasets:
        for point in eta_series[dataset_name]:
            rows.append([dataset_name, f"eta={point['eta']}", percent(point["seen"]),
                         percent(point["novel"])])
        for point in rho_series[dataset_name]:
            rows.append([dataset_name, f"rho={point['rho']}", percent(point["seen"]),
                         percent(point["novel"])])
    report = format_table(
        ["Dataset", "Setting", "Seen Acc", "Novel Acc"],
        rows,
        title="Figure 2: effect of eta and rho on OpenIMA",
    )
    return {"eta_series": eta_series, "rho_series": rho_series, "report": report}
