"""Builders for the paper's tables (II, III, IV, V, VI, VII).

Each builder runs the necessary methods on (scaled-down) synthetic profiles
via :mod:`repro.experiments.runner` and returns a structured result plus a
formatted text report.  The benchmark suite calls these builders with small
``ExperimentConfig`` budgets; EXPERIMENTS.md records the measured outputs
against the paper's published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.config import OpenIMAConfig
from ..core.openima import OpenIMATrainer
from ..datasets.synthetic import dataset_statistics, load_open_world_dataset
from ..metrics.selection import (
    CandidateScore,
    estimate_num_novel_classes,
    select_best_candidate,
)
from .reporting import format_accuracy_table, format_table, percent
from .runner import (
    AggregatedResult,
    ExperimentConfig,
    build_method,
    evaluate_trainer,
    run_method,
)

#: Datasets of Table III (mid-size) and Table IV (large-scale profiles).
TABLE3_DATASETS = (
    "citeseer",
    "amazon-photos",
    "amazon-computers",
    "coauthor-cs",
    "coauthor-physics",
)
TABLE4_DATASETS = ("ogbn-arxiv", "ogbn-products")

#: Method lists following the rows of Table III and Table IV.
TABLE3_METHODS = (
    "oodgat",
    "openwgl",
    "orca-zm",
    "orca",
    "simgcd",
    "openldn",
    "opencon",
    "opencon-two-stage",
    "infonce",
    "infonce+supcon",
    "infonce+supcon+ce",
    "openima",
)
TABLE4_METHODS = ("orca-zm", "orca", "opencon", "openima")


# ----------------------------------------------------------------------
# Table II — dataset statistics
# ----------------------------------------------------------------------
def build_table2(datasets: Sequence[str] = TABLE3_DATASETS + TABLE4_DATASETS,
                 seed: int = 0, scale: float = 1.0) -> dict:
    """Dataset statistics (paper values vs. synthetic stand-ins)."""
    rows = []
    stats = {}
    for name in datasets:
        info = dataset_statistics(name, seed=seed, scale=scale)
        stats[name] = info
        rows.append([
            info["name"], info["paper_nodes"], info["paper_edges"],
            info["paper_features"], info["paper_classes"],
            info["synthetic_nodes"], info["synthetic_edges"],
            info["synthetic_features"], info["synthetic_classes"],
        ])
    report = format_table(
        ["Graph", "#Nodes(paper)", "#Edges(paper)", "#Feat(paper)", "#Cls(paper)",
         "#Nodes(synth)", "#Edges(synth)", "#Feat(synth)", "#Cls(synth)"],
        rows,
        title="Table II: dataset statistics (paper vs synthetic stand-in)",
    )
    return {"statistics": stats, "report": report}


# ----------------------------------------------------------------------
# Table III / Table IV — overall evaluation
# ----------------------------------------------------------------------
def build_accuracy_table(
    methods: Sequence[str],
    datasets: Sequence[str],
    experiment: ExperimentConfig,
    title: str,
) -> dict:
    """Generic accuracy-grid builder shared by Tables III, IV, and VI."""
    results: Dict[str, Dict[str, AggregatedResult]] = {}
    for method in methods:
        results[method] = {}
        for dataset in datasets:
            results[method][dataset] = run_method(method, dataset, experiment)
    report = format_accuracy_table(results, datasets, title=title)
    return {"results": results, "report": report}


def build_table3(experiment: Optional[ExperimentConfig] = None,
                 methods: Sequence[str] = TABLE3_METHODS,
                 datasets: Sequence[str] = TABLE3_DATASETS) -> dict:
    """Table III: overall evaluation on the five mid-size benchmarks."""
    experiment = experiment if experiment is not None else ExperimentConfig()
    return build_accuracy_table(methods, datasets, experiment,
                                title="Table III: overall evaluation (test accuracy %)")


def build_table4(experiment: Optional[ExperimentConfig] = None,
                 methods: Sequence[str] = TABLE4_METHODS,
                 datasets: Sequence[str] = TABLE4_DATASETS) -> dict:
    """Table IV: evaluation on the larger (ogbn-style) profiles."""
    experiment = experiment if experiment is not None else ExperimentConfig(scale=0.25)
    return build_accuracy_table(methods, datasets, experiment,
                                title="Table IV: evaluation on larger datasets (test accuracy %)")


# ----------------------------------------------------------------------
# Table V — ablation of the OpenIMA loss components
# ----------------------------------------------------------------------
#: (label, use_emb, use_logit, use_ce, use_pseudo_labels)
TABLE5_VARIANTS = (
    ("CE only", False, False, True, True),
    ("BPCL(emb)+BPCL(logit)", True, True, False, True),
    ("BPCL(logit)", False, True, False, True),
    ("BPCL(logit)+CE", False, True, True, True),
    ("BPCL(emb)", True, False, False, True),
    ("BPCL(emb)+CE", True, False, True, True),
    ("Full OpenIMA", True, True, True, True),
    ("Ours w/o PL", True, True, True, False),
)


def build_table5(experiment: Optional[ExperimentConfig] = None,
                 datasets: Sequence[str] = TABLE3_DATASETS,
                 variants=TABLE5_VARIANTS) -> dict:
    """Table V: ablation of L_BPCL^emb, L_BPCL^logit, L_CE, and pseudo labels."""
    experiment = experiment if experiment is not None else ExperimentConfig()
    results: Dict[str, Dict[str, AggregatedResult]] = {}
    for label, use_emb, use_logit, use_ce, use_pl in variants:
        if not (use_emb or use_logit) and not use_ce:
            continue
        overrides = {
            "use_embedding_bpcl": use_emb,
            "use_logit_bpcl": use_logit,
            "use_cross_entropy": use_ce,
            "use_pseudo_labels": use_pl,
        }
        # "CE only" still needs a contrastive-free objective: disable BPCL by
        # turning both levels off and relying on CE alone.
        if not use_emb and not use_logit:
            overrides["use_embedding_bpcl"] = False
            overrides["use_logit_bpcl"] = False
        results[label] = {}
        for dataset in datasets:
            results[label][dataset] = run_method(
                "openima", dataset, experiment, openima_overrides=overrides
            )
    rows = []
    for label, per_dataset in results.items():
        row = [label]
        for dataset in datasets:
            row.append(percent(per_dataset[dataset].accuracy.overall))
        rows.append(row)
    report = format_table(["Variant", *datasets], rows,
                          title="Table V: ablation (overall test accuracy %)")
    return {"results": results, "report": report}


# ----------------------------------------------------------------------
# Table VI — unknown number of novel classes
# ----------------------------------------------------------------------
def build_table6(experiment: Optional[ExperimentConfig] = None,
                 methods: Sequence[str] = ("orca-zm", "orca", "opencon", "openima"),
                 datasets: Sequence[str] = TABLE3_DATASETS,
                 max_novel: int = 6) -> dict:
    """Table VI: evaluation without knowing the true number of novel classes.

    The number of novel classes is estimated before training by clustering
    InfoNCE-style embeddings (here: raw features reduced by the estimator's
    K-Means sweep) with the silhouette criterion, exactly as Section V-E
    describes, then passed to every method.
    """
    experiment = experiment if experiment is not None else ExperimentConfig()
    results: Dict[str, Dict[str, AggregatedResult]] = {m: {} for m in methods}
    estimates: Dict[str, int] = {}
    for dataset_name in datasets:
        probe = load_open_world_dataset(dataset_name, seed=experiment.seeds[0],
                                        scale=experiment.scale,
                                        labels_per_class=experiment.labels_per_class)
        estimate = estimate_num_novel_classes(
            probe.graph.features,
            num_seen_classes=probe.split.num_seen,
            max_novel=max_novel,
            seed=experiment.seeds[0],
        )
        estimates[dataset_name] = estimate
        for method in methods:
            results[method][dataset_name] = run_method(
                method, dataset_name, experiment, num_novel_classes=estimate
            )
    report = format_accuracy_table(
        results, datasets,
        title="Table VI: evaluation with estimated number of novel classes (test accuracy %)",
    )
    return {"results": results, "estimates": estimates, "report": report}


# ----------------------------------------------------------------------
# Table VII — hyper-parameter search metric comparison
# ----------------------------------------------------------------------
@dataclass
class SelectionOutcome:
    """Test accuracy obtained when selecting a candidate with a given metric."""

    method: str
    metric: str
    overall: float
    seen: float
    novel: float

    @property
    def gap(self) -> float:
        return abs(self.seen - self.novel)


def build_table7(experiment: Optional[ExperimentConfig] = None,
                 dataset_name: str = "amazon-photos",
                 methods: Sequence[str] = ("orca", "opencon", "infonce", "openima"),
                 learning_rates: Sequence[float] = (1e-3, 5e-3, 1e-2)) -> dict:
    """Table VII: SC vs ACC vs SC&ACC for hyper-parameter selection.

    For each method, several candidate configurations (learning-rate sweep)
    are trained; each selection metric picks one candidate and the table
    reports the test accuracy of the picked candidate plus the seen/novel
    accuracy gap.
    """
    experiment = experiment if experiment is not None else ExperimentConfig()
    seed = experiment.seeds[0]
    outcomes: Dict[str, Dict[str, SelectionOutcome]] = {}
    for method in methods:
        candidates: list[CandidateScore] = []
        evaluations = {}
        for lr in learning_rates:
            dataset = load_open_world_dataset(dataset_name, seed=seed, scale=experiment.scale,
                                              labels_per_class=experiment.labels_per_class)
            trainer_config = experiment.trainer_config(seed).with_updates(
                optimizer=experiment.trainer_config(seed).optimizer.__class__(
                    learning_rate=lr, weight_decay=1e-4
                )
            )
            trainer = build_method(method, dataset, trainer_config)
            trainer.fit()
            run = evaluate_trainer(trainer, dataset, method, seed)
            name = f"lr={lr}"
            candidates.append(CandidateScore(
                name=name,
                silhouette=run.silhouette,
                validation_accuracy=run.validation_accuracy,
            ))
            evaluations[name] = run
        outcomes[method] = {}
        for metric in ("sc", "acc", "sc&acc"):
            chosen = select_best_candidate(candidates, metric=metric)
            run = evaluations[chosen.name]
            outcomes[method][metric] = SelectionOutcome(
                method=method,
                metric=metric,
                overall=run.accuracy.overall,
                seen=run.accuracy.seen,
                novel=run.accuracy.novel,
            )
    rows = []
    for method, per_metric in outcomes.items():
        for metric, outcome in per_metric.items():
            rows.append([
                method, metric.upper(), percent(outcome.overall), percent(outcome.seen),
                percent(outcome.novel), percent(outcome.gap),
            ])
    report = format_table(
        ["Method", "Metric", "All", "Seen", "Novel", "Gap"],
        rows,
        title=f"Table VII: hyper-parameter search metrics on {dataset_name} (test accuracy %)",
    )
    return {"results": outcomes, "report": report}


# ----------------------------------------------------------------------
# Figure 1b companion — see figures.build_figure1b
# ----------------------------------------------------------------------
def openima_overall_accuracy(dataset_name: str, experiment: ExperimentConfig,
                             **openima_overrides) -> float:
    """Convenience: overall OpenIMA accuracy for quick ablation sweeps."""
    result = run_method("openima", dataset_name, experiment,
                        openima_overrides=openima_overrides or None)
    return result.accuracy.overall


def mean_or_nan(values: Sequence[float]) -> float:
    """Mean of a sequence, NaN when empty (helper for report assembly)."""
    return float(np.mean(values)) if len(values) else float("nan")
