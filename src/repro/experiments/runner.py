"""Experiment runner: train a method on a dataset profile and collect metrics.

The runner is the glue between the method implementations and the table /
figure builders.  It handles seed repetition, method construction (OpenIMA or
any baseline), accuracy evaluation, and the auxiliary statistics (imbalance
rate, separation rate, validation accuracy, silhouette) used by Figure 1b
and the SC&ACC analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import (
    PARALLEL_BACKENDS,
    ParallelConfig,
    SamplingConfig,
    SerializableConfig,
    TrainerConfig,
    fast_config,
)
from ..core.registry import METHODS
from ..core.trainer import GraphTrainer
from ..datasets.synthetic import load_open_world_dataset
from ..datasets.splits import OpenWorldDataset
from ..metrics.accuracy import OpenWorldAccuracy, open_world_accuracy
from ..metrics.selection import score_candidate
from ..metrics.variance import variance_imbalance_report


@dataclass
class RunResult:
    """Metrics from a single (method, dataset, seed) run."""

    method: str
    dataset: str
    seed: int
    accuracy: OpenWorldAccuracy
    validation_accuracy: float
    imbalance_rate: float
    separation_rate: float
    silhouette: float

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "seed": self.seed,
            "all": self.accuracy.overall,
            "seen": self.accuracy.seen,
            "novel": self.accuracy.novel,
            "val_acc": self.validation_accuracy,
            "imbalance_rate": self.imbalance_rate,
            "separation_rate": self.separation_rate,
            "silhouette": self.silhouette,
        }


@dataclass
class AggregatedResult:
    """Mean metrics over multiple seeds for one (method, dataset) pair."""

    method: str
    dataset: str
    runs: List[RunResult] = field(default_factory=list)

    def _mean(self, attribute: str) -> float:
        values = [getattr(run, attribute) for run in self.runs]
        return float(np.mean(values)) if values else float("nan")

    @property
    def accuracy(self) -> OpenWorldAccuracy:
        overall = float(np.mean([r.accuracy.overall for r in self.runs]))
        seen = float(np.mean([r.accuracy.seen for r in self.runs]))
        novel = float(np.mean([r.accuracy.novel for r in self.runs]))
        return OpenWorldAccuracy(overall=overall, seen=seen, novel=novel)

    @property
    def imbalance_rate(self) -> float:
        return self._mean("imbalance_rate")

    @property
    def separation_rate(self) -> float:
        return self._mean("separation_rate")

    @property
    def validation_accuracy(self) -> float:
        return self._mean("validation_accuracy")

    @property
    def silhouette(self) -> float:
        return self._mean("silhouette")


def __getattr__(name: str):
    # Backwards-compatible lazy attribute (PEP 562): the end-to-end method
    # set is derived from the per-method registry metadata — no hardcoded
    # name list, and no eager import of every baseline at module load.
    if name == "END_TO_END_METHODS":
        return frozenset(METHODS.end_to_end_names())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ExperimentConfig(SerializableConfig):
    """Controls the scale of an experiment sweep.

    ``scale`` shrinks the dataset profiles, ``max_epochs``/``batch_size``
    control the training budget, and ``encoder_kind`` selects GAT (the
    paper's default) or GCN (a faster encoder used by the benchmark suite).
    End-to-end methods get ``end_to_end_epochs`` (paper: a larger budget than
    the two-stage methods); it defaults to three times ``max_epochs``.
    ``sampling_mode`` selects the trainer's mini-batch neighborhood sampling
    (``full`` / ``khop`` / ``sampled``, see
    :class:`repro.core.config.SamplingConfig`).

    ``n_jobs`` > 1 runs the method x dataset x seed grid cells through a
    :class:`repro.parallel.ParallelExecutor` on ``parallel_backend``
    (default ``processes``).  Each cell is seeded entirely by its own
    ``(method, dataset, seed)``, so cells are independent and the grid
    result is bit-identical to the serial loop in any backend.
    """

    scale: float = 0.35
    max_epochs: int = 8
    batch_size: int = 512
    encoder_kind: str = "gcn"
    seeds: Sequence[int] = (0,)
    labels_per_class: Optional[int] = None
    end_to_end_epochs: Optional[int] = None
    backend: str = "sparse"
    eval_every: int = 0
    sampling_mode: str = "full"
    n_jobs: int = 1
    parallel_backend: str = "processes"

    def __post_init__(self) -> None:
        # JSON round-trips turn the seeds tuple into a list; normalise so
        # from_json(to_json(cfg)) == cfg holds in the serialization matrix.
        self.seeds = tuple(int(seed) for seed in self.seeds)
        if self.parallel_backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"unknown parallel_backend {self.parallel_backend!r}; "
                f"expected one of {PARALLEL_BACKENDS}")
        if int(self.n_jobs) < 0:
            raise ValueError(
                f"n_jobs must be >= 0 (0 = all cores), got {self.n_jobs}")

    def epochs_for(self, method: str) -> int:
        key = method.lower()
        is_end_to_end = key in METHODS and METHODS.get(key).end_to_end
        if is_end_to_end:
            if self.end_to_end_epochs is not None:
                return self.end_to_end_epochs
            return 3 * self.max_epochs
        return self.max_epochs

    def trainer_config(self, seed: int, method: Optional[str] = None) -> TrainerConfig:
        epochs = self.max_epochs if method is None else self.epochs_for(method)
        return fast_config(
            max_epochs=epochs,
            seed=seed,
            encoder_kind=self.encoder_kind,
            batch_size=self.batch_size,
            backend=self.backend,
            eval_every=self.eval_every,
            sampling=SamplingConfig(mode=self.sampling_mode),
        )


def build_method(
    name: str,
    dataset: OpenWorldDataset,
    trainer_config: TrainerConfig,
    num_novel_classes: Optional[int] = None,
    openima_overrides: Optional[dict] = None,
    **overrides,
) -> GraphTrainer:
    """Construct any registered method (OpenIMA included) by name.

    Thin wrapper over :meth:`repro.core.registry.MethodRegistry.build`; the
    ``openima_overrides`` name is kept for backwards compatibility and is
    merged into the generic per-method ``overrides``.
    """
    merged = {**(openima_overrides or {}), **overrides}
    return METHODS.build(
        name, dataset, config=trainer_config,
        num_novel_classes=num_novel_classes, **merged,
    )


def evaluate_trainer(trainer: GraphTrainer, dataset: OpenWorldDataset,
                     method_name: str, seed: int) -> RunResult:
    """Collect the full metric set from a trained model."""
    # One embedding pass feeds prediction and the embedding-space metrics
    # (also guaranteed by the trainer's version-keyed cache; the explicit
    # pass-through keeps this true even with caching disabled).
    embeddings = trainer.node_embeddings()
    result = trainer.predict(embeddings=embeddings)
    accuracy = trainer.accuracy_of(result)
    test_nodes = dataset.split.test_nodes

    val_nodes = dataset.split.val_nodes
    val_accuracy = open_world_accuracy(
        result.predictions[val_nodes],
        dataset.labels[val_nodes],
        dataset.split.seen_classes,
    ).overall

    imbalance, separation = variance_imbalance_report(
        embeddings[test_nodes],
        dataset.labels[test_nodes],
        dataset.split.seen_classes,
        dataset.split.novel_classes,
    )
    eval_nodes = np.concatenate([val_nodes, test_nodes])
    candidate = score_candidate(
        method_name,
        embeddings,
        result.cluster_result.labels,
        val_accuracy,
        eval_indices=eval_nodes,
        seed=seed,
    )
    return RunResult(
        method=method_name,
        dataset=dataset.name,
        seed=seed,
        accuracy=accuracy,
        validation_accuracy=val_accuracy,
        imbalance_rate=imbalance,
        separation_rate=separation,
        silhouette=candidate.silhouette,
    )


def run_grid_cell(
    method: str,
    dataset_name: str,
    seed: int,
    experiment: ExperimentConfig,
    num_novel_classes: Optional[int] = None,
    openima_overrides: Optional[dict] = None,
) -> RunResult:
    """Train and evaluate one (method, dataset, seed) grid cell.

    The unit of work for both the serial loop and the parallel grid
    (:func:`repro.parallel.workers.run_experiment_cell`); keeping it
    module-level means the process-pool path and the in-process path run
    the same code, cell for cell.
    """
    dataset = load_open_world_dataset(
        dataset_name,
        seed=seed,
        scale=experiment.scale,
        labels_per_class=experiment.labels_per_class,
    )
    trainer_config = experiment.trainer_config(seed, method=method)
    trainer = build_method(
        method, dataset, trainer_config,
        num_novel_classes=num_novel_classes,
        openima_overrides=openima_overrides,
    )
    trainer.fit()
    return evaluate_trainer(trainer, dataset, method, seed)


def _run_cells(
    cells: List[tuple],
    experiment: ExperimentConfig,
) -> List[RunResult]:
    """Ordered cell results, dispatched in parallel when ``n_jobs`` > 1.

    ``cells`` are ``(method, dataset_name, seed)`` triples.  Every random
    draw in a cell flows from generators keyed on its own seed, so the
    ordered parallel reduction returns exactly what the serial loop would.
    """
    if int(experiment.n_jobs) == 1 or len(cells) <= 1:
        return [
            run_grid_cell(method, dataset_name, seed, experiment)
            for method, dataset_name, seed in cells
        ]
    from ..parallel import ParallelExecutor
    from ..parallel.workers import run_experiment_cell

    executor = ParallelExecutor(ParallelConfig(
        backend=experiment.parallel_backend, n_jobs=experiment.n_jobs,
        chunk_size=1))
    experiment_dict = experiment.to_dict()
    items = [(method, dataset_name, seed, experiment_dict, None, None)
             for method, dataset_name, seed in cells]
    return executor.map(run_experiment_cell, items, label="experiments.grid")


def run_method(
    method: str,
    dataset_name: str,
    experiment: ExperimentConfig,
    num_novel_classes: Optional[int] = None,
    openima_overrides: Optional[dict] = None,
) -> AggregatedResult:
    """Train ``method`` on ``dataset_name`` for every configured seed."""
    aggregated = AggregatedResult(method=method, dataset=dataset_name)
    if (num_novel_classes is None and openima_overrides is None
            and int(experiment.n_jobs) != 1):
        cells = [(method, dataset_name, seed) for seed in experiment.seeds]
        aggregated.runs.extend(_run_cells(cells, experiment))
        return aggregated
    for seed in experiment.seeds:
        aggregated.runs.append(run_grid_cell(
            method, dataset_name, seed, experiment,
            num_novel_classes=num_novel_classes,
            openima_overrides=openima_overrides,
        ))
    return aggregated


def run_methods(
    methods: Sequence[str],
    dataset_name: str,
    experiment: ExperimentConfig,
    num_novel_classes: Optional[int] = None,
) -> Dict[str, AggregatedResult]:
    """Run several methods on the same dataset profile.

    With ``experiment.n_jobs`` != 1 the whole method x seed grid is
    flattened into one parallel dispatch, so long and short methods
    interleave across workers instead of serializing per method.
    """
    if num_novel_classes is None and int(experiment.n_jobs) != 1:
        cells = [(method, dataset_name, seed)
                 for method in methods for seed in experiment.seeds]
        results = _run_cells(cells, experiment)
        grouped: Dict[str, AggregatedResult] = {
            method: AggregatedResult(method=method, dataset=dataset_name)
            for method in methods
        }
        for (method, _, _), run in zip(cells, results):
            grouped[method].runs.append(run)
        return grouped
    return {
        method: run_method(method, dataset_name, experiment,
                           num_novel_classes=num_novel_classes)
        for method in methods
    }
